"""Databank catalogue generation: sizes and replication across sites.

Each databank gets a size drawn uniformly from the GriPPS range and is
replicated on each site independently with probability ``availability``
(paper, Section 5.1, feature 5).  Every databank is guaranteed to be hosted
by at least one site -- a databank hosted nowhere would make its jobs
unschedulable -- by assigning it one uniformly-chosen site when the Bernoulli
draws leave it orphaned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.utils.seeding import spawn_rng
from repro.workload.gripps import MAX_DATABANK_MB, MIN_DATABANK_MB

__all__ = ["DatabankCatalog", "generate_databanks"]


@dataclass(frozen=True)
class DatabankCatalog:
    """The databanks of one simulated system.

    Attributes
    ----------
    sizes:
        ``databank name -> size`` in megabytes (= job work for a request
        targeting that databank).
    hosting:
        ``databank name -> tuple of cluster ids`` hosting a replica.
    """

    sizes: dict[str, float]
    hosting: dict[str, tuple[int, ...]]

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self.sizes))

    def size_of(self, name: str) -> float:
        return self.sizes[name]

    def clusters_hosting(self, name: str) -> tuple[int, ...]:
        return self.hosting[name]

    def databanks_of_cluster(self, cluster_id: int) -> frozenset[str]:
        """The databank names replicated on one cluster."""
        return frozenset(
            name for name, clusters in self.hosting.items() if cluster_id in clusters
        )

    def replication_factor(self, name: str) -> int:
        return len(self.hosting[name])

    def __len__(self) -> int:
        return len(self.sizes)


def generate_databanks(
    n_databanks: int,
    n_clusters: int,
    availability: float,
    *,
    rng: np.random.Generator | int | None = None,
    min_size: float = MIN_DATABANK_MB,
    max_size: float = MAX_DATABANK_MB,
) -> DatabankCatalog:
    """Generate a random databank catalogue.

    Parameters
    ----------
    n_databanks:
        Number of distinct reference databanks.
    n_clusters:
        Number of sites in the platform.
    availability:
        Probability, for each (databank, site) pair, that the site hosts a
        replica of the databank (paper values: 0.3, 0.6, 0.9).
    rng:
        Random source (seed, generator or ``None``).
    min_size, max_size:
        Databank size range in megabytes.
    """
    if n_databanks <= 0:
        raise ModelError("n_databanks must be positive")
    if n_clusters <= 0:
        raise ModelError("n_clusters must be positive")
    if not (0.0 < availability <= 1.0):
        raise ModelError(f"availability must lie in (0, 1], got {availability}")
    if not (0 < min_size <= max_size):
        raise ModelError("databank size range must satisfy 0 < min_size <= max_size")

    rng = spawn_rng(rng)
    sizes: dict[str, float] = {}
    hosting: dict[str, tuple[int, ...]] = {}
    for d in range(n_databanks):
        name = f"db{d:02d}"
        sizes[name] = float(rng.uniform(min_size, max_size))
        replicas = [c for c in range(n_clusters) if rng.random() < availability]
        if not replicas:
            replicas = [int(rng.integers(0, n_clusters))]
        hosting[name] = tuple(replicas)
    return DatabankCatalog(sizes=sizes, hosting=hosting)
