"""Empirical constants calibrated on the GriPPS system.

The paper derives two quantities from the GriPPS application logs and the
benchmark study of [11]:

* the processing speeds of six reference machines, and
* the range of databank sizes (roughly 10 megabytes to 1 gigabyte).

Neither the logs nor the original benchmark numbers are publicly available,
so this module provides a *calibrated substitute*: cycle times (seconds per
megabyte of databank scanned by one motif) chosen so that a request against a
10 MB - 1 GB databank takes on the order of 3-60 seconds on a single
processor, which is the job-length range the paper explores in Section 5.2,
with a roughly 4x spread between the fastest and slowest reference machines
(heterogeneity comparable to the clusters of the original study).
"""

from __future__ import annotations

__all__ = [
    "REFERENCE_CYCLE_TIMES",
    "MIN_DATABANK_MB",
    "MAX_DATABANK_MB",
    "DEFAULT_PROCESSORS_PER_CLUSTER",
    "SUBMISSION_WINDOW_SECONDS",
    "WORK_UNIT",
]

#: Cycle times (seconds per megabyte scanned) of the six reference machines.
#: The spread (fastest to slowest ~3.75x) mirrors the heterogeneity of the
#: six reference platforms benchmarked in the original GriPPS study.
REFERENCE_CYCLE_TIMES: tuple[float, ...] = (0.012, 0.016, 0.021, 0.027, 0.036, 0.045)

#: Databank size range, in megabytes (paper, Section 5.3: "database sizes vary
#: continuously over a range of 10 megabytes to 1 gigabyte").
MIN_DATABANK_MB: float = 10.0
MAX_DATABANK_MB: float = 1024.0

#: Number of processors per site (paper, Section 5.1: "we arbitrarily define
#: each site to contain 10 processors").
DEFAULT_PROCESSORS_PER_CLUSTER: int = 10

#: Length of the job submission window, in seconds (paper, Section 5.1:
#: "jobs may arrive between the time at which the simulation starts and 15
#: minutes thereafter").
SUBMISSION_WINDOW_SECONDS: float = 15.0 * 60.0

#: Unit of work used throughout the library: one megabyte of databank scanned
#: by one motif.  A job's size is therefore the size (in MB) of the databank
#: it targets.
WORK_UNIT: str = "MB"
