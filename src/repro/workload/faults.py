"""Seeded machine-failure trace generators.

Availability traces follow the classic renewal model used by cluster
simulators: each machine alternates exponentially distributed up-times
(mean ``mtbf``) and down-times (mean ``mttr``), independently of the other
machines, truncated at a horizon.  The generator is deterministic under a
seed so that fault-injection campaigns replay exactly — the trace is part of
the experiment identity, not ambient noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.errors import ModelError
from repro.simulation.faults import LOSS_MODELS, FaultTimeline
from repro.utils.seeding import spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.platform import Platform

__all__ = ["FaultSpec", "generate_fault_timeline"]


@dataclass(frozen=True)
class FaultSpec:
    """Parameters of the renewal availability model.

    ``mtbf`` / ``mttr`` are the mean up- and down-durations of one machine;
    ``horizon`` bounds the trace (transitions beyond it are dropped, an
    outage straddling it stays open).  ``machine_fraction`` selects the share
    of machines subject to failures (1.0 = every machine); the fault-prone
    subset is drawn from the same seeded stream, so it is stable per seed.
    """

    mtbf: float
    mttr: float
    horizon: float
    machine_fraction: float = 1.0
    loss_model: str = "resume"
    checkpoint_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0.0 or self.mttr <= 0.0:
            raise ModelError(f"mtbf and mttr must be positive (got {self.mtbf}, {self.mttr})")
        if self.horizon <= 0.0:
            raise ModelError(f"fault horizon must be positive, got {self.horizon}")
        if not (0.0 < self.machine_fraction <= 1.0):
            raise ModelError(
                f"machine_fraction must lie in (0, 1], got {self.machine_fraction}"
            )
        if self.loss_model not in LOSS_MODELS:
            raise ModelError(
                f"unknown loss model {self.loss_model!r}; expected one of {LOSS_MODELS}"
            )


def _machine_trace(
    rng: np.random.Generator, machine_id: int, spec: FaultSpec
) -> Iterable[tuple[int, float, float | None]]:
    """Alternating up/down intervals of one machine, truncated at the horizon."""
    clock = float(rng.exponential(spec.mtbf))
    while clock < spec.horizon:
        down_at = clock
        outage = float(rng.exponential(spec.mttr))
        up_at = down_at + outage
        if up_at >= spec.horizon:
            yield (machine_id, down_at, None)
            return
        yield (machine_id, down_at, up_at)
        clock = up_at + float(rng.exponential(spec.mtbf))


def generate_fault_timeline(
    platform: "Platform",
    spec: FaultSpec,
    *,
    rng: "int | None | np.random.Generator" = None,
) -> FaultTimeline:
    """Draw a seeded availability trace for ``platform``.

    Every machine consumes a fixed number of draws from its own sub-stream
    (derived by machine id), so adding machines to the platform does not
    perturb the traces of existing ones.
    """
    rng = spawn_rng(rng)
    machine_ids = sorted(platform.ids())
    prone = machine_ids
    if spec.machine_fraction < 1.0:
        count = max(1, int(round(spec.machine_fraction * len(machine_ids))))
        picked = rng.choice(len(machine_ids), size=count, replace=False)
        prone = sorted(machine_ids[i] for i in picked)
    intervals: list[tuple[int, float, float | None]] = []
    for machine_id in prone:
        child = spawn_rng(int(rng.integers(0, 2**63 - 1)))
        intervals.extend(_machine_trace(child, machine_id, spec))
    return FaultTimeline.from_intervals(
        intervals,
        loss_model=spec.loss_model,
        checkpoint_fraction=spec.checkpoint_fraction,
    )
