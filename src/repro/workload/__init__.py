"""Synthetic GriPPS-like platform and workload generation.

The paper's simulation study is parameterized by six features (Section 5.1):
platform size, processor power, number of databanks, databank size, databank
availability and workload density.  This subpackage generates random
platforms and workloads from those parameters, using the empirical ranges the
paper reports (databank sizes between 10 MB and 1 GB, processor speeds drawn
from six reference machines, Poisson job arrivals over a bounded submission
window).

It also provides the adversarial constructions used in the theory sections
(Theorem 1 and Theorem 2).
"""

from repro.workload.gripps import (
    DEFAULT_PROCESSORS_PER_CLUSTER,
    MAX_DATABANK_MB,
    MIN_DATABANK_MB,
    REFERENCE_CYCLE_TIMES,
    SUBMISSION_WINDOW_SECONDS,
)
from repro.workload.databanks import DatabankCatalog, generate_databanks
from repro.workload.arrival import poisson_arrival_times
from repro.workload.generator import (
    PlatformSpec,
    WorkloadSpec,
    generate_instance,
    generate_platform,
    generate_workload,
)
from repro.workload.adversarial import (
    starvation_instance,
    swrpt_lower_bound_instance,
    swrpt_lower_bound_parameters,
)

__all__ = [
    "REFERENCE_CYCLE_TIMES",
    "MIN_DATABANK_MB",
    "MAX_DATABANK_MB",
    "DEFAULT_PROCESSORS_PER_CLUSTER",
    "SUBMISSION_WINDOW_SECONDS",
    "DatabankCatalog",
    "generate_databanks",
    "poisson_arrival_times",
    "PlatformSpec",
    "WorkloadSpec",
    "generate_platform",
    "generate_workload",
    "generate_instance",
    "starvation_instance",
    "swrpt_lower_bound_instance",
    "swrpt_lower_bound_parameters",
]
