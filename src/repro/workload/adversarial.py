"""Adversarial instance constructions used in the theory sections.

Two families of instances are built here:

* :func:`starvation_instance` -- the sequence used in the proof of Theorem 1:
  one large job of size :math:`\\Delta` released at time 0, followed by a
  train of ``k`` unit-size jobs released at times 0, 1, ..., k-1.  Any
  algorithm with a non-trivial competitive ratio for the sum-stretch must
  starve the large job on this instance, making its max-stretch arbitrarily
  worse than optimal.

* :func:`swrpt_lower_bound_instance` -- the two-phase sequence of Theorem 2
  (Appendix A) showing that SWRPT is not :math:`(2-\\varepsilon)`-competitive
  for the sum-stretch: a cascade of jobs whose sizes are iterated square
  roots (:math:`2^{2^{n}}, 2^{2^{n-1}}, \\dots`), followed by a train of
  ``l`` unit jobs.  The release dates of the second and third jobs are chosen
  at "critical" instants so that SWRPT repeatedly postpones the first job by
  a small amount :math:`\\alpha` per subsequent job.

Both constructions target the preemptive uni-processor model; by Lemma 1 the
same behaviour arises on any uniform divisible platform (use
:func:`repro.core.transform.uniprocessor_schedule_to_divisible` or simply run
the heuristics on a single-machine :class:`~repro.core.platform.Platform`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform

__all__ = [
    "starvation_instance",
    "swrpt_lower_bound_parameters",
    "swrpt_lower_bound_instance",
    "SWRPTLowerBoundParameters",
]


def starvation_instance(
    delta: float,
    n_unit_jobs: int,
    *,
    cycle_time: float = 1.0,
    databank: str | None = None,
) -> Instance:
    """The Theorem 1 instance: one job of size ``delta`` plus a train of unit jobs.

    Parameters
    ----------
    delta:
        Size of the large job (the paper's :math:`\\Delta`, the job-size
        ratio of the instance); must be > 1.
    n_unit_jobs:
        Number of unit-size jobs (the paper's ``k``); they are released at
        times 0, 1, ..., k-1.
    cycle_time:
        Cycle time of the single machine (1.0 keeps sizes equal to
        processing times, as in the paper).
    databank:
        Optional databank label carried by all jobs.
    """
    if delta <= 1:
        raise ModelError(f"delta must exceed 1, got {delta}")
    if n_unit_jobs < 1:
        raise ModelError("at least one unit job is required")
    banks = (databank,) if databank else ()
    platform = Platform.single_machine(cycle_time, databanks=[b for b in banks if b])
    jobs = [Job(0, release=0.0, size=float(delta), databank=databank)]
    for t in range(n_unit_jobs):
        jobs.append(Job(1 + t, release=float(t), size=1.0, databank=databank))
    return Instance(jobs, platform)


@dataclass(frozen=True)
class SWRPTLowerBoundParameters:
    """Derived parameters of the Theorem 2 construction."""

    epsilon: float
    alpha: float
    n: int
    k: int

    @property
    def largest_size(self) -> float:
        """Size of the first job, :math:`2^{2^n}`."""
        return 2.0 ** (2.0 ** self.n)


def swrpt_lower_bound_parameters(epsilon: float) -> SWRPTLowerBoundParameters:
    """Compute :math:`\\alpha`, ``n`` and ``k`` for a target :math:`\\varepsilon`.

    Following Appendix A of the paper:

    * :math:`\\alpha = 1 - \\varepsilon/3`,
    * ``n`` is the smallest integer (at least 2) such that
      :math:`1/2^{2^{n-1}} < \\varepsilon / (3(1+\\alpha))` -- the condition the
      proof actually needs; the closed form printed in the paper,
      :math:`\\lceil \\log_2 \\log_2 \\tfrac{3(1+\\alpha)}{\\varepsilon}\\rceil`,
      falls one short of it for most epsilons, so we derive ``n`` directly
      from the inequality,
    * :math:`k = \\lceil -\\log_2(-\\log_2 \\alpha) \\rceil`.

    ``n`` grows doubly-logarithmically in :math:`1/\\varepsilon`, so even very
    small epsilons keep the largest job size (:math:`2^{2^n}`) representable.
    """
    if not (0 < epsilon < 1):
        raise ModelError(f"epsilon must lie in (0, 1), got {epsilon}")
    alpha = 1.0 - epsilon / 3.0
    threshold = 3.0 * (1.0 + alpha) / epsilon
    n = 2
    while 2.0 ** (2.0 ** (n - 1)) <= threshold:
        n += 1
        if n > 12:
            raise ModelError(
                f"epsilon={epsilon} leads to job sizes beyond double precision; "
                f"use a larger epsilon"
            )
    k = math.ceil(-math.log2(-math.log2(alpha)))
    k = max(k, 1)
    largest = 2.0 ** (2.0 ** n)
    if math.isinf(largest):
        raise ModelError(
            f"epsilon={epsilon} leads to job sizes beyond double precision "
            f"(n={n}); use a larger epsilon"
        )
    return SWRPTLowerBoundParameters(epsilon=epsilon, alpha=alpha, n=n, k=k)


def swrpt_lower_bound_instance(
    epsilon: float,
    n_unit_jobs: int,
    *,
    cycle_time: float = 1.0,
    databank: str | None = None,
) -> Instance:
    """Build the Theorem 2 instance for a target :math:`\\varepsilon`.

    Parameters
    ----------
    epsilon:
        Target gap: for ``n_unit_jobs`` large enough, the sum-stretch of
        SWRPT on this instance exceeds :math:`(2-\\varepsilon)` times the
        sum-stretch of SRPT (hence of the optimum).
    n_unit_jobs:
        The paper's ``l``: length of the final train of unit jobs.  The
        achieved ratio approaches its limit as ``l`` grows.
    cycle_time:
        Cycle time of the single machine.
    databank:
        Optional databank label carried by all jobs.
    """
    if n_unit_jobs < 1:
        raise ModelError("at least one unit job is required")
    params = swrpt_lower_bound_parameters(epsilon)
    alpha, n, k = params.alpha, params.n, params.k

    def size(exponent: float) -> float:
        return 2.0 ** (2.0 ** exponent)

    jobs: list[Job] = []
    # 1. J0 at time 0, size 2^(2^n).
    jobs.append(Job(0, release=0.0, size=size(n), databank=databank))
    # 2. J1 at time 2^(2^n) - 2^(2^(n-2)), size 2^(2^(n-1)).
    r1 = size(n) - size(n - 2)
    jobs.append(Job(1, release=r1, size=size(n - 1), databank=databank))
    # 3. J2 at time r1 + 2^(2^(n-1)) - alpha, size 2^(2^(n-2)).
    r2 = r1 + size(n - 1) - alpha
    jobs.append(Job(2, release=r2, size=size(n - 2), databank=databank))
    # 4. J_j for 3 <= j <= n: released when its predecessor finishes.
    release = r2
    prev_size = size(n - 2)
    for j in range(3, n + 1):
        release = release + prev_size
        prev_size = size(n - j)
        jobs.append(Job(j, release=release, size=prev_size, databank=databank))
    # 5. J_{n+j} for 1 <= j <= k: sizes 2^(2^-j).
    for j in range(1, k + 1):
        release = release + prev_size
        prev_size = size(-j)
        jobs.append(Job(n + j, release=release, size=prev_size, databank=databank))
    # 6. J_{n+k+j} for 1 <= j <= l: unit jobs.
    for j in range(1, n_unit_jobs + 1):
        release = release + prev_size
        prev_size = 1.0
        jobs.append(Job(n + k + j, release=release, size=1.0, databank=databank))

    platform = Platform.single_machine(cycle_time, databanks=[databank] if databank else [])
    return Instance(jobs, platform)
