"""Poisson arrival process generation.

Job inter-arrival times are exponential (paper, Section 5.1: "using a Poisson
process for job inter-arrival times, with a mean that is computed to attain
the desired workload density"); arrivals are generated over a bounded
submission window.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ModelError
from repro.utils.seeding import spawn_rng

__all__ = ["poisson_arrival_times"]


def poisson_arrival_times(
    rate: float,
    window: float,
    *,
    rng: np.random.Generator | int | None = None,
    start: float = 0.0,
    max_count: int | None = None,
) -> list[float]:
    """Arrival dates of a Poisson process of intensity ``rate`` over ``[start, start+window]``.

    Parameters
    ----------
    rate:
        Expected number of arrivals per second (must be positive).
    window:
        Length of the submission window in seconds.
    rng:
        Random source.
    start:
        Date of the beginning of the window.
    max_count:
        Optional hard cap on the number of arrivals (used by the experiment
        harness to bound run times on extreme densities).
    """
    if rate <= 0:
        raise ModelError(f"arrival rate must be positive, got {rate}")
    if window < 0:
        raise ModelError(f"window must be non-negative, got {window}")
    rng = spawn_rng(rng)
    times: list[float] = []
    t = start
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t > start + window:
            break
        times.append(t)
        if max_count is not None and len(times) >= max_count:
            break
    return times
