"""Random platform and workload generation (Section 5.1 of the paper).

A *simulation configuration* fixes six features: platform size (number of
sites), processor power (drawn from the reference machines), number of
databanks, databank size range, databank availability and workload density.
:func:`generate_instance` realizes one random instance from such a
configuration:

1. build the platform: ``n_clusters`` sites of ``processors_per_cluster``
   identical machines, each site's cycle time drawn from the reference
   machines, each site hosting a random subset of the databanks;
2. build the workload: for each databank, a Poisson stream of requests whose
   rate is chosen so that the *workload density* -- the ratio of the work
   arriving per second for that databank to the aggregate speed of the
   machines hosting it -- matches the requested value;
3. merge and sort the per-databank streams, renumber the jobs by release
   date.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job, renumber_jobs
from repro.core.platform import Machine, Platform
from repro.utils.seeding import spawn_rng
from repro.workload.arrival import poisson_arrival_times
from repro.workload.databanks import DatabankCatalog, generate_databanks
from repro.workload.gripps import (
    DEFAULT_PROCESSORS_PER_CLUSTER,
    MAX_DATABANK_MB,
    MIN_DATABANK_MB,
    REFERENCE_CYCLE_TIMES,
    SUBMISSION_WINDOW_SECONDS,
)

__all__ = [
    "PlatformSpec",
    "WorkloadSpec",
    "generate_platform",
    "generate_workload",
    "generate_instance",
]


@dataclass(frozen=True)
class PlatformSpec:
    """Parameters of the random platform generator."""

    n_clusters: int = 3
    processors_per_cluster: int = DEFAULT_PROCESSORS_PER_CLUSTER
    n_databanks: int = 3
    availability: float = 0.6
    reference_cycle_times: tuple[float, ...] = REFERENCE_CYCLE_TIMES
    min_databank_mb: float = MIN_DATABANK_MB
    max_databank_mb: float = MAX_DATABANK_MB

    def __post_init__(self) -> None:
        if self.n_clusters <= 0:
            raise ModelError("n_clusters must be positive")
        if self.processors_per_cluster <= 0:
            raise ModelError("processors_per_cluster must be positive")
        if self.n_databanks <= 0:
            raise ModelError("n_databanks must be positive")
        if not (0 < self.availability <= 1):
            raise ModelError("availability must lie in (0, 1]")
        if not self.reference_cycle_times:
            raise ModelError("reference_cycle_times must not be empty")


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the random workload generator."""

    density: float = 1.0
    window: float = SUBMISSION_WINDOW_SECONDS
    max_jobs: int | None = None

    def __post_init__(self) -> None:
        if self.density <= 0:
            raise ModelError("workload density must be positive")
        if self.window <= 0:
            raise ModelError("submission window must be positive")
        if self.max_jobs is not None and self.max_jobs <= 0:
            raise ModelError("max_jobs must be positive when provided")


def generate_platform(
    spec: PlatformSpec,
    *,
    rng: np.random.Generator | int | None = None,
) -> tuple[Platform, DatabankCatalog]:
    """Generate a random platform and its databank catalogue."""
    rng = spawn_rng(rng)
    catalog = generate_databanks(
        spec.n_databanks,
        spec.n_clusters,
        spec.availability,
        rng=rng,
        min_size=spec.min_databank_mb,
        max_size=spec.max_databank_mb,
    )
    machines: list[Machine] = []
    machine_id = 0
    for cluster_id in range(spec.n_clusters):
        cycle_time = float(rng.choice(spec.reference_cycle_times))
        banks = catalog.databanks_of_cluster(cluster_id)
        for _ in range(spec.processors_per_cluster):
            machines.append(
                Machine(
                    machine_id=machine_id,
                    cycle_time=cycle_time,
                    cluster_id=cluster_id,
                    databanks=banks,
                )
            )
            machine_id += 1
    return Platform(machines), catalog


def generate_workload(
    platform: Platform,
    catalog: DatabankCatalog,
    spec: WorkloadSpec,
    *,
    rng: np.random.Generator | int | None = None,
) -> list[Job]:
    """Generate the job stream for one instance.

    For each databank ``d`` of size :math:`W_d` hosted on machines of
    aggregate speed :math:`P_d`, the arrival rate is
    :math:`\\lambda_d = \\rho\\,P_d / W_d` where :math:`\\rho` is the workload
    density: the expected work arriving per second for ``d``
    (:math:`\\lambda_d W_d`) is then :math:`\\rho P_d`, i.e. a fraction
    :math:`\\rho` of the capacity available to serve it, which is the paper's
    definition of density.
    """
    rng = spawn_rng(rng)
    jobs: list[Job] = []
    job_counter = 0
    for name in catalog.names():
        size = catalog.size_of(name)
        aggregate_speed = platform.aggregate_speed(name)
        if aggregate_speed <= 0:
            raise ModelError(f"databank {name} is hosted on no machine of the platform")
        rate = spec.density * aggregate_speed / size
        arrivals = poisson_arrival_times(
            rate, spec.window, rng=rng, max_count=spec.max_jobs
        )
        for t in arrivals:
            jobs.append(
                Job(job_id=job_counter, release=float(t), size=size, databank=name)
            )
            job_counter += 1
    # Renumber jobs in release-date order (the paper's convention) and
    # optionally truncate to the global job cap.
    ordered = list(renumber_jobs(jobs))
    if spec.max_jobs is not None and len(ordered) > spec.max_jobs:
        ordered = ordered[: spec.max_jobs]
    return ordered


def generate_instance(
    platform_spec: PlatformSpec,
    workload_spec: WorkloadSpec,
    *,
    rng: np.random.Generator | int | None = None,
    ensure_nonempty: bool = True,
) -> Instance:
    """Generate one full random instance (platform + workload).

    ``ensure_nonempty`` retries the workload generation (with the same
    platform) until at least one job is produced, which can otherwise happen
    at very low densities on short windows.
    """
    rng = spawn_rng(rng)
    platform, catalog = generate_platform(platform_spec, rng=rng)
    jobs = generate_workload(platform, catalog, workload_spec, rng=rng)
    attempts = 0
    while ensure_nonempty and not jobs:
        attempts += 1
        if attempts > 100:
            raise ModelError(
                "could not generate a non-empty workload after 100 attempts; "
                "increase the density or the submission window"
            )
        jobs = generate_workload(platform, catalog, workload_spec, rng=rng)
    return Instance(jobs, platform)
