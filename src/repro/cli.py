"""Command-line interface: ``repro-stretch``.

Sub-commands
------------

``simulate``
    Generate one random GriPPS-like instance and run one or more schedulers
    on it, printing per-scheduler metrics (and optionally the event trace or
    an ASCII Gantt chart).
``campaign``
    Run a (scaled-down) version of the paper's factorial campaign and print
    Table 1 plus, optionally, the per-parameter breakdowns; raw records can
    be saved to CSV.  The campaign execution engine streams (configuration,
    replicate, scheduler) tasks over ``--workers`` long-lived processes,
    journals completed records to ``--checkpoint FILE`` (JSONL) and resumes
    a killed run with ``--resume``; ``--ab-backends`` runs the campaign once
    per solver backend and prints the equivalence report instead::

        repro-stretch campaign --workers 4 --checkpoint campaign.jsonl
        repro-stretch campaign --workers 4 --checkpoint campaign.jsonl --resume
        repro-stretch campaign --workers 4 --ab-backends

    ``--shard i/N`` restricts the run to one deterministic slice of the
    design (whole instances, dealt round-robin), so N independent jobs --
    the legs of a CI matrix -- can carry one campaign in parallel, each
    with its own journal.
``merge``
    Union N shard journals into one validated record set: exactly-once
    triple coverage, duplicate/conflict detection (same triple with a
    different record is a hard error) and gap reporting for resumable
    re-runs; optionally writes the merged journal::

        repro-stretch merge shard-*.jsonl --output merged.jsonl
``report``
    Regenerate Tables 1-16 and a machine-readable ``CAMPAIGN_summary.json``
    from a (merged or serial) campaign journal::

        repro-stretch report merged.jsonl --output-dir campaign-report
``serve``
    Boot the streaming-arrival scheduler daemon (service mode): an HTTP
    surface accepting submissions while the engine runs, live telemetry
    (current ``S*``, per-databank queue depths, replan-latency
    percentiles) and a replayable submission journal::

        repro-stretch serve --scheduler online --port 8080 --journal run.jsonl
``figure3``
    Run the density sweep of Figure 3 and print both series.
``overhead``
    Run the scheduling-overhead comparison of Section 5.3.
``theorem1`` / ``theorem2``
    Demonstrate the adversarial constructions of the theory sections.

Every sub-command accepts ``--seed`` for reproducibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.config import (
    ONLINE_LP_SCHEDULERS,
    ExperimentConfig,
    figure3_configurations,
    paper_configurations,
)
from repro import api
from repro.core.errors import ReproError
from repro.experiments.ab import run_backend_ab
from repro.experiments.figures import run_figure3_sweep
from repro.experiments.io import save_records_csv
from repro.experiments.overhead import (
    DEFAULT_OVERHEAD_SCHEDULERS,
    OVERHEAD_TABLE_HEADERS,
    scheduling_overhead,
)
from repro.experiments.sharding import parse_shard_spec
from repro.experiments.tables import breakdown_tables, table1
from repro.lp.backends import (
    available_backends,
    highs_unavailable_reason,
    resolve_backend_name,
)
from repro.options import OnOff, SolverBackendChoice, enum_option
from repro.schedulers.policies import parse_policy
from repro.schedulers.registry import (
    LP_SOLVER_SCHEDULERS,
    SERVICE_SCHEDULERS,
    available_schedulers,
    paper_schedulers,
)
from repro.simulation.faults import FaultTimeline, load_fault_timeline
from repro.theory.bounds import swrpt_competitive_gap
from repro.theory.starvation import starvation_analysis
from repro.utils.seeding import derive_seed
from repro.utils.textable import TextTable
from repro.workload.faults import FaultSpec, generate_fault_timeline
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance, generate_platform

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-stretch",
        description="Stretch-minimizing schedulers for flows of divisible biological requests",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run schedulers on one random instance")
    sim.add_argument("--clusters", type=int, default=3)
    sim.add_argument("--databanks", type=int, default=3)
    sim.add_argument("--availability", type=float, default=0.6)
    sim.add_argument("--density", type=float, default=1.0)
    sim.add_argument("--processors", type=int, default=10, help="processors per cluster")
    sim.add_argument("--window", type=float, default=60.0, help="submission window (s)")
    sim.add_argument("--max-jobs", type=int, default=40)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--schedulers",
        nargs="+",
        default=["offline", "online", "swrpt", "srpt", "mct"],
        choices=available_schedulers(),
        metavar="KEY",
    )
    sim.add_argument("--trace", action="store_true", help="print the event trace")
    sim.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    sim.add_argument(
        "--fault-trace",
        type=str,
        default=None,
        metavar="FILE",
        help="inject machine outages from a JSONL fault trace "
        "(see README 'Fault tolerance'); mutually exclusive with "
        "--fault-mtbf/--fault-mttr",
    )
    sim.add_argument(
        "--fault-mtbf",
        type=float,
        default=None,
        help="generate a seeded outage trace: mean seconds between failures "
        "per machine (requires --fault-mttr)",
    )
    sim.add_argument(
        "--fault-mttr",
        type=float,
        default=None,
        help="mean outage duration in seconds (requires --fault-mtbf)",
    )
    sim.add_argument(
        "--fault-loss-model",
        choices=["resume", "restart"],
        default="resume",
        help="what a downed machine's in-flight work does: 'resume' keeps "
        "remaining work, 'restart' loses the un-checkpointed fraction",
    )
    sim.add_argument(
        "--fault-checkpoint-fraction",
        type=float,
        default=0.0,
        help="fraction of processed work preserved under the restart loss "
        "model (0 = restart from scratch)",
    )
    _add_replanning_arguments(sim)

    camp = sub.add_parser("campaign", help="run a scaled-down version of the paper campaign")
    camp.add_argument("--replicates", type=int, default=1)
    camp.add_argument("--window", type=float, default=20.0)
    camp.add_argument(
        "--max-jobs",
        type=_job_cap,
        default=15,
        help="cap on jobs per instance used to scale the campaign down; "
        "0 removes the cap (the paper's actual workload; combine with "
        "--window 900 for the full Section 5.3 design)",
    )
    camp.add_argument("--seed", type=int, default=2006)
    camp.add_argument("--workers", type=int, default=1)
    camp.add_argument(
        "--state-bank",
        **enum_option(OnOff, OnOff.ON, param="--state-bank"),
        help="cross-run solver-state bank: share warm solver state across "
        "the on-line LP schedulers of each (config, replicate) group "
        "(content-addressed, so records stay bit-identical at any worker "
        "count); 'off' re-pays every cold solve and is the escape hatch "
        "mirroring --solver-backend scipy (default: on)",
    )
    camp.add_argument("--sites", type=int, nargs="+", default=[3, 10, 20])
    camp.add_argument("--databanks", type=int, nargs="+", default=[3, 10, 20])
    camp.add_argument("--availabilities", type=float, nargs="+", default=[0.3, 0.6, 0.9])
    camp.add_argument(
        "--densities", type=float, nargs="+", default=[0.75, 1.0, 1.25, 1.5, 2.0, 3.0]
    )
    camp.add_argument("--schedulers", nargs="+", default=None, metavar="KEY")
    camp.add_argument(
        "--fault-mtbf",
        type=float,
        default=None,
        help="availability axis: mean seconds between machine failures "
        "(requires --fault-mttr; traces derive from the replicate seed, so "
        "records stay bit-identical at any worker count)",
    )
    camp.add_argument(
        "--fault-mttr", type=float, default=None, help="mean outage duration (s)"
    )
    camp.add_argument(
        "--fault-loss-model", choices=["resume", "restart"], default="resume"
    )
    camp.add_argument("--fault-checkpoint-fraction", type=float, default=0.0)
    camp.add_argument("--save-csv", type=str, default=None)
    camp.add_argument("--breakdowns", action="store_true", help="also print Tables 2-16")
    camp.add_argument(
        "--profile",
        action="store_true",
        help="print the campaign's per-stage wall-clock breakdown "
        "(dispatch / compute / serialize / journal) after the run",
    )
    camp.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        metavar="FILE",
        help="append completed records to this JSONL journal as they stream "
        "in, so a killed campaign can be continued with --resume",
    )
    camp.add_argument(
        "--resume",
        action="store_true",
        help="load the --checkpoint journal and skip every (config, "
        "replicate, scheduler) triple it already contains",
    )
    camp.add_argument(
        "--shard",
        type=_shard_spec,
        default=None,
        metavar="i/N",
        help="run only this deterministic slice of the design (whole "
        "(config, replicate) instances, dealt round-robin over the N "
        "shards); combine with --checkpoint so the N legs' journals can "
        "be reunited with the 'merge' subcommand",
    )
    camp.add_argument(
        "--ab-backends",
        action="store_true",
        help="run the campaign once with the scipy backend and once with "
        "the persistent HiGHS backend, and print the record-set "
        "equivalence report (exit code 1 on mismatch) instead of Table 1",
    )
    camp.add_argument(
        "--ab-tolerance",
        type=float,
        default=1e-6,
        help="relative tolerance on the tie-free optimized metric "
        "(max_stretch) in the --ab-backends comparison",
    )
    camp.add_argument(
        "--ab-tie-tolerance",
        type=float,
        default=0.10,
        help="relative tolerance on the per-scheduler means of the "
        "tie-broken metrics (sum_stretch, sum_flow, max_flow, makespan), "
        "which degenerate-vertex tie-breaking legitimately perturbs "
        "across solver backends",
    )
    _add_replanning_arguments(camp)

    mrg = sub.add_parser(
        "merge",
        help="union N campaign shard journals into one validated record set",
    )
    mrg.add_argument(
        "journals",
        nargs="+",
        metavar="JOURNAL",
        help="checkpoint journals written by 'campaign --shard i/N --checkpoint'",
    )
    mrg.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="write the merged record set as one unsharded journal "
        "(consumable by the 'report' subcommand and by --resume)",
    )
    mrg.add_argument(
        "--allow-gaps",
        action="store_true",
        help="exit 0 even when some design triples are missing (the gap "
        "report names the shards to re-run); without this flag an "
        "incomplete merge exits 1",
    )

    rep = sub.add_parser(
        "report",
        help="regenerate Tables 1-16 + CAMPAIGN_summary.json from a journal",
    )
    rep.add_argument(
        "journal",
        metavar="JOURNAL",
        help="a complete campaign journal (merged or serial)",
    )
    rep.add_argument(
        "--output-dir",
        type=str,
        default="campaign-report",
        metavar="DIR",
        help="directory receiving TABLE_01.txt, TABLES_02_16.txt, "
        "records.json and CAMPAIGN_summary.json (default: campaign-report)",
    )
    rep.add_argument(
        "--allow-gaps",
        action="store_true",
        help="report on a partial record set instead of requiring "
        "exactly-once coverage of the full design",
    )
    rep.add_argument("--breakdowns", action="store_true", help="also print Tables 2-16")

    srv = sub.add_parser(
        "serve",
        help="boot the streaming-arrival scheduler daemon (service mode)",
    )
    srv.add_argument(
        "--scheduler",
        default="online",
        choices=sorted(SERVICE_SCHEDULERS),
        metavar="KEY",
        help="a service-safe scheduler (no whole-instance knowledge at "
        "reset); default: the paper's on-line LP heuristic",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port for the HTTP surface; 0 (default) picks a free port "
        "and prints it",
    )
    srv.add_argument(
        "--journal",
        type=str,
        default=None,
        metavar="FILE",
        help="journal every accepted submission to this replayable JSONL "
        "trace (replaying it is bit-identical to batch simulation)",
    )
    srv.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="virtual seconds per wall-clock second for the admission "
        "clock; 0 free-runs (as fast as the engine can step)",
    )
    srv.add_argument("--clusters", type=int, default=3)
    srv.add_argument("--processors", type=int, default=10, help="processors per cluster")
    srv.add_argument("--databanks", type=int, default=3)
    srv.add_argument("--availability", type=float, default=0.6)
    srv.add_argument("--seed", type=int, default=0, help="platform generation seed")
    srv.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help="admission valve: shed submissions (503 + Retry-After) once N "
        "admitted jobs are still waiting for delivery (default: unbounded)",
    )
    srv.add_argument(
        "--shed-replan-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="admission valve: shed submissions while the live replan-latency "
        "p99 exceeds this target (default: off)",
    )
    srv.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="back-off advertised on shed submissions (default: 1.0)",
    )
    _add_replanning_arguments(srv)

    fig = sub.add_parser("figure3", help="run the Figure 3 density sweep")
    fig.add_argument("--replicates", type=int, default=3)
    fig.add_argument("--window", type=float, default=20.0)
    fig.add_argument("--max-jobs", type=int, default=15)
    fig.add_argument("--seed", type=int, default=1998)

    over = sub.add_parser("overhead", help="scheduling-overhead comparison (Section 5.3)")
    over.add_argument("--replicates", type=int, default=2)
    over.add_argument("--window", type=float, default=30.0)
    over.add_argument("--max-jobs", type=int, default=25)
    _add_replanning_arguments(over)
    over.add_argument(
        "--compare-incremental",
        action="store_true",
        help="run the on-line LP heuristics twice (incremental and from-scratch) "
        "and print both, reproducing the replanning-pipeline ablation",
    )

    th1 = sub.add_parser("theorem1", help="starvation instance of Theorem 1")
    th1.add_argument("--delta", type=float, default=16.0)
    th1.add_argument("--unit-jobs", type=int, default=64)
    th1.add_argument(
        "--schedulers", nargs="+", default=["srpt", "swrpt", "fcfs", "offline", "online"]
    )

    th2 = sub.add_parser("theorem2", help="SWRPT lower-bound instance of Theorem 2")
    th2.add_argument("--epsilon", type=float, default=0.3)
    th2.add_argument("--unit-jobs", type=int, default=300)

    return parser


def _policy_spec(text: str) -> str:
    """argparse type: validate a replan-policy spec early, keep it textual."""
    try:
        parse_policy(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _job_cap(text: str) -> int:
    """argparse type: a per-instance job cap; 0 means uncapped, negatives error."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (0 removes the cap; the paper's uncapped workload)"
        )
    return value


def _shard_spec(text: str) -> str:
    """argparse type: validate an 'i/N' shard spec early, keep it textual."""
    try:
        parse_shard_spec(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _add_replanning_arguments(sub: argparse.ArgumentParser) -> None:
    """Replanning-pipeline knobs shared by simulate/campaign/overhead."""
    sub.add_argument(
        "--replan-policy",
        type=_policy_spec,
        default="on-arrival",
        metavar="SPEC",
        help="replan cadence of the on-line LP heuristics: "
        "'on-arrival' (paper default), 'batched:<seconds>' or "
        "'threshold[:<factor>]'",
    )
    sub.add_argument(
        "--from-scratch",
        action="store_true",
        help="disable the incremental ReplanContext (rebuild every LP from "
        "scratch at each release date, as the paper's heuristics do)",
    )
    sub.add_argument(
        "--solver-backend",
        **enum_option(SolverBackendChoice, SolverBackendChoice.AUTO,
                      param="--solver-backend"),
        help="LP solver backend for the LP-based schedulers: 'auto' "
        "(default: the persistent HiGHS backend -- live models with basis "
        "warm starts across milestone probes and replans -- when highspy "
        "or scipy >= 1.15 provides bindings, one-shot scipy otherwise), "
        "'highs' (require the persistent backend), or 'scipy' (force the "
        "one-shot linprog path: the bit-stable escape hatch reproducing "
        "the historical campaign numbers exactly)",
    )
    sub.add_argument(
        "--speculate",
        **enum_option(OnOff, OnOff.OFF, param="--speculate"),
        help="speculative replan pre-solves: during each inter-arrival gap "
        "the on-line LP heuristics pre-solve the predicted next replan so "
        "the arrival's LP work becomes a memo re-bind on correct "
        "predictions; results are bit-identical either way (hits are "
        "exact optima of the same LP, misses are discarded), only the "
        "arrival-to-plan latency moves (default: off)",
    )


def _online_options(args: argparse.Namespace) -> dict[str, dict[str, object]]:
    """Per-scheduler-key options implied by the replanning CLI flags.

    Delegates to :meth:`ExperimentConfig.scheduler_options_for` so the CLI
    and campaign layers cannot disagree about which schedulers take which
    knobs.
    """
    config = ExperimentConfig(
        name="cli",
        n_clusters=1,
        n_databanks=1,
        availability=1.0,
        density=1.0,
        replan_policy=args.replan_policy,
        incremental_lp=not args.from_scratch,
        solver_backend=args.solver_backend,
        speculation=getattr(args, "speculate", OnOff.OFF),
    )
    return {
        key: options
        for key in LP_SOLVER_SCHEDULERS
        if (options := config.scheduler_options_for(key))
    }


def _check_backend(args: argparse.Namespace) -> str | None:
    """An error message when the requested solver backend is unusable.

    Reports *why* the bindings are unavailable when the probe can tell
    (highspy missing vs importable-but-incompatible vs scipy too old), so
    the operator knows which of the two install routes to take.
    """
    backend = getattr(args, "solver_backend", "scipy")
    if backend == "highs" and "highs" not in available_backends():
        reason = highs_unavailable_reason()
        detail = f": {reason}" if reason else ""
        return (
            "error: --solver-backend highs requires HiGHS bindings "
            f"(pip install highspy, or scipy >= 1.15){detail}; "
            "use --solver-backend auto to fall back to scipy"
        )
    return None


def _simulate_faults(args: argparse.Namespace, instance) -> "FaultTimeline | None":
    """The fault timeline the ``simulate`` flags describe (``None`` = off)."""
    if args.fault_trace is not None:
        if args.fault_mtbf is not None or args.fault_mttr is not None:
            raise ReproError(
                "--fault-trace is mutually exclusive with --fault-mtbf/--fault-mttr"
            )
        return load_fault_timeline(args.fault_trace)
    if (args.fault_mtbf is None) != (args.fault_mttr is None):
        raise ReproError("--fault-mtbf and --fault-mttr must be given together")
    if args.fault_mtbf is None:
        return None
    spec = FaultSpec(
        mtbf=args.fault_mtbf,
        mttr=args.fault_mttr,
        horizon=args.window,
        loss_model=args.fault_loss_model,
        checkpoint_fraction=args.fault_checkpoint_fraction,
    )
    return generate_fault_timeline(
        instance.platform, spec, rng=derive_seed(args.seed, "faults")
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec_p = PlatformSpec(
        n_clusters=args.clusters,
        processors_per_cluster=args.processors,
        n_databanks=args.databanks,
        availability=args.availability,
    )
    spec_w = WorkloadSpec(density=args.density, window=args.window, max_jobs=args.max_jobs)
    instance = generate_instance(spec_p, spec_w, rng=args.seed)
    try:
        faults = _simulate_faults(args, instance)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(instance.platform.describe())
    print(f"{instance.n_jobs} jobs, size ratio Delta = {instance.delta():.2f}")
    if faults:
        n_outages = len(faults.intervals())
        print(
            f"fault timeline: {n_outages} outage(s) over "
            f"{len(faults.machine_ids())} machine(s), "
            f"loss model {faults.loss_model}"
        )
    print()
    table = TextTable(
        headers=["Scheduler", "max-stretch", "sum-stretch", "max-flow", "makespan",
                 "sched time (s)"]
    )
    online_options = _online_options(args)
    for key in args.schedulers:
        result = api.simulate(
            instance,
            key,
            scheduler_options=online_options.get(key),
            record_events=args.trace,
            faults=faults,
        )
        if result.parked:
            print(
                f"note: {result.scheduler_name} parked job(s) "
                f"{sorted(result.parked)} (no eligible machine left up); "
                "their stretch is reported as inf"
            )
        report = result.report()
        table.add_row(
            [
                result.scheduler_name,
                report.max_stretch,
                report.sum_stretch,
                report.max_flow,
                report.makespan,
                result.scheduler_time,
            ]
        )
        if args.trace:
            print(f"--- trace of {result.scheduler_name} ---")
            for line in result.trace_lines():
                print(line)
            print()
        if args.gantt:
            print(f"--- Gantt chart of {result.scheduler_name} ---")
            print(result.schedule.gantt(instance))
            print()
    print(table.render())
    return 0


_STAGE_ORDER = ("dispatch", "compute", "serialize", "journal")


def _profile_table(stage_seconds: dict[str, float]) -> TextTable:
    """The ``--profile`` per-stage wall-clock breakdown of a campaign run."""
    table = TextTable(
        headers=["Stage", "seconds", "share (%)"],
        title="Campaign stage profile",
    )
    known = [s for s in _STAGE_ORDER if s in stage_seconds]
    extra = sorted(s for s in stage_seconds if s not in _STAGE_ORDER)
    total = sum(stage_seconds.values())
    for stage in known + extra:
        seconds = stage_seconds[stage]
        share = 100.0 * seconds / total if total > 0 else 0.0
        table.add_row([stage, seconds, share])
    table.add_row(["total", total, 100.0 if total > 0 else 0.0])
    return table


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint FILE", file=sys.stderr)
        return 2
    if args.ab_backends and (args.checkpoint or args.save_csv or args.breakdowns or args.profile):
        # The A/B path runs two campaigns and prints a comparison; wiring a
        # single journal/CSV/table/profile set to it would silently drop one
        # side.
        print(
            "error: --ab-backends is incompatible with --checkpoint, "
            "--save-csv, --breakdowns and --profile",
            file=sys.stderr,
        )
        return 2
    if args.shard and (args.ab_backends or args.breakdowns):
        # A shard leg computes a deliberately partial record set; aggregate
        # tables (and the A/B gate) over it would be silently misleading --
        # they belong after the 'merge' step, in the 'report' stage.
        print(
            "error: --shard is incompatible with --ab-backends and "
            "--breakdowns (merge the shard journals, then use 'report')",
            file=sys.stderr,
        )
        return 2
    if (args.fault_mtbf is None) != (args.fault_mttr is None):
        print(
            "error: --fault-mtbf and --fault-mttr must be given together",
            file=sys.stderr,
        )
        return 2
    configs = paper_configurations(
        sites=args.sites,
        databanks=args.databanks,
        availabilities=args.availabilities,
        densities=args.densities,
        window=args.window,
        max_jobs=args.max_jobs if args.max_jobs > 0 else None,
        replan_policy=args.replan_policy,
        incremental_lp=not args.from_scratch,
        solver_backend=args.solver_backend,
        state_bank=args.state_bank,
        speculation=args.speculate,
        fault_mtbf=args.fault_mtbf,
        fault_mttr=args.fault_mttr,
        fault_loss_model=args.fault_loss_model,
        fault_checkpoint_fraction=args.fault_checkpoint_fraction,
    )
    scheduler_keys = args.schedulers or paper_schedulers(include_bender98=False)
    if args.fault_mtbf is not None:
        clairvoyant = [k for k in scheduler_keys if k in ("offline", "offline-sum")]
        if clairvoyant:
            print(
                f"warning: {', '.join(clairvoyant)} plan(s) the whole run "
                "clairvoyantly and cannot react to outages; with the fault "
                "axis on their runs are recorded as failed",
                file=sys.stderr,
            )
    computed = 0

    def progress(msg) -> None:
        # Counts the *freshly computed* tasks: checkpoint-restored triples
        # never reach the progress callback, so a fully-restored resume is
        # detectable as zero progress events ("nothing to do").
        nonlocal computed
        computed += 1
        print(f"  {msg}", file=sys.stderr)

    if args.ab_backends:
        # The requested backend is side B of the comparison (the 'auto'
        # default compares scipy against whatever auto resolves to here).
        backend_b = resolve_backend_name(args.solver_backend)
        if backend_b == "scipy":
            print(
                "warning: side B resolves to scipy (no HiGHS bindings, or "
                "--solver-backend scipy was passed) -- this compares scipy "
                "against itself and does NOT exercise the persistent backend",
                file=sys.stderr,
            )
        print(
            f"Backend A/B over {len(configs)} configurations x {args.replicates} "
            f"replicates x {len(scheduler_keys)} schedulers "
            f"(scipy vs {backend_b}, {args.workers} workers) ..."
        )
        try:
            report, _, _ = run_backend_ab(
                configs,
                scheduler_keys=scheduler_keys,
                replicates=args.replicates,
                base_seed=args.seed,
                n_workers=args.workers,
                backend_b=args.solver_backend,
                objective_tolerance=args.ab_tolerance,
                tie_tolerance=args.ab_tie_tolerance,
                progress=progress,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print()
        print(report.render())
        return 0 if report.equivalent else 1
    shard_note = f" (shard {args.shard})" if args.shard else ""
    print(
        f"Running {len(configs)} configurations x {args.replicates} replicates "
        f"x {len(scheduler_keys)} schedulers{shard_note} ..."
    )
    try:
        results = api.run_campaign(
            configs,
            scheduler_keys=scheduler_keys,
            replicates=args.replicates,
            base_seed=args.seed,
            n_workers=args.workers,
            progress=progress,
            checkpoint=args.checkpoint,
            resume=args.resume,
            shard=args.shard,
        )
    except ReproError as exc:
        # Expected operator errors (existing journal without --resume,
        # foreign checkpoint): a clean message, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.resume and computed == 0:
        print(
            f"nothing to do: checkpoint {args.checkpoint} already contains "
            f"all {len(results)} records"
        )
    if args.save_csv:
        path = save_records_csv(results, args.save_csv)
        print(f"raw records saved to {path}")
    if args.profile:
        print()
        print(_profile_table(results.stage_seconds).render())
    if args.shard:
        # A shard leg's aggregate tables would cover a partial design;
        # summarize the leg instead and leave the tables to 'report'.
        print(
            f"shard {args.shard}: {len(results)} records"
            + (f", journaled to {args.checkpoint}" if args.checkpoint else "")
        )
        return 0
    print()
    print(table1(results).render())
    if args.breakdowns:
        for table in breakdown_tables(results):
            print()
            print(table.render())
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    try:
        # Integrity violations (foreign journals, mismatched shard plans,
        # conflicting records, unwritable output) are hard errors.
        report = api.merge(args.journals, output=args.output)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if args.output:
        print(f"merged journal written to {args.output}")
    if not report.complete and not args.allow_gaps:
        print(
            "error: coverage is incomplete (pass --allow-gaps to accept a "
            "partial merge)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        merged = api.merge([args.journal])
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not merged.complete and not args.allow_gaps:
        print(merged.render(), file=sys.stderr)
        print(
            "error: the journal does not cover the full design (merge all "
            "shard legs first, or pass --allow-gaps)",
            file=sys.stderr,
        )
        return 1
    outcome = api.report(merged, args.output_dir, allow_gaps=args.allow_gaps)
    print(table1(outcome.merged.results).render())
    if args.breakdowns:
        for table in breakdown_tables(outcome.merged.results):
            print()
            print(table.render())
    print()
    print(
        f"campaign report written to {args.output_dir} "
        f"({outcome.summary['n_records']} records, "
        f"{outcome.summary['n_failed']} failed)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    spec = PlatformSpec(
        n_clusters=args.clusters,
        processors_per_cluster=args.processors,
        n_databanks=args.databanks,
        availability=args.availability,
    )
    platform, catalog = generate_platform(spec, rng=args.seed)
    try:
        server = api.serve(
            platform,
            scheduler=args.scheduler,
            replan_policy=args.replan_policy,
            incremental_lp=not args.from_scratch,
            solver_backend=args.solver_backend,
            speculation=args.speculate,
            time_scale=args.time_scale,
            journal=args.journal,
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            shed_replan_p99=args.shed_replan_p99,
            retry_after=args.retry_after,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(platform.describe())
    print(f"databanks: {', '.join(catalog.names())}")
    print(f"serving on {server.url}")
    print("  POST /submit     one JSON submission")
    print("  POST /stream     a JSONL submission window")
    print("  GET  /telemetry  live S*, queue depths, replan latencies")
    print("  GET  /healthz    accepting / draining / stopped / failed")
    print("  POST /drain      close submissions, finish, report metrics")
    if args.journal:
        print(f"journaling accepted submissions to {args.journal}")
    # The banner must land before the (indefinite) serve loop even when
    # stdout is a block-buffered pipe, or callers scripting the daemon
    # never learn the ephemeral port.
    sys.stdout.flush()
    import signal
    import time as _time

    # SIGTERM (systemd stop, container runtime, kill) means drain-then-exit:
    # stop admitting, let the engine finish what was accepted, seal the
    # journal, leave 0.  The handler only flips a flag -- all real work
    # happens on the main thread, outside async-signal context.
    terminating = False

    def _on_sigterm(signum: int, frame: object) -> None:
        nonlocal terminating
        terminating = True

    previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    drained = False

    def _drain(reason: str) -> int:
        nonlocal drained
        drained = True
        print(f"\n{reason}: draining admitted jobs ...", file=sys.stderr)
        server.daemon.close_submissions()
        try:
            server.daemon.join(timeout=60.0)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    try:
        code = 0
        try:
            while server.daemon.running and not terminating:
                _time.sleep(0.5)
            if terminating:
                code = _drain("SIGTERM received")
        except KeyboardInterrupt:
            code = _drain("interrupted")
        return code
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        server.shutdown()


def _cmd_figure3(args: argparse.Namespace) -> int:
    configs = figure3_configurations(window=args.window, max_jobs=args.max_jobs)
    points = run_figure3_sweep(configs, replicates=args.replicates, base_seed=args.seed)
    table = TextTable(
        headers=[
            "density",
            "non-opt degr. (%)",
            "optimized degr. (%)",
            "sum-stretch gain (%)",
        ]
    )
    for p in points:
        table.add_row(
            [
                p.density,
                p.non_optimized_max_stretch_degradation,
                p.optimized_max_stretch_degradation,
                p.sum_stretch_gain,
            ]
        )
    print(table.render())
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    if args.compare_incremental and args.from_scratch:
        print(
            "error: --from-scratch and --compare-incremental are mutually "
            "exclusive (the comparison runs both LP paths)",
            file=sys.stderr,
        )
        return 2
    # (scheduler subset, incremental toggle, row suffix) per pass.  The
    # incremental toggle only exists on the on-line LP heuristics, so the
    # comparison pass reruns just those -- restricted to the strategies of
    # the base pass so every '(from scratch)' row has a counterpart.
    runs: list[tuple[Sequence[str] | None, bool, str]] = [
        (None, not args.from_scratch, "")
    ]
    if args.compare_incremental:
        comparison_keys = tuple(
            key for key in DEFAULT_OVERHEAD_SCHEDULERS if key in ONLINE_LP_SCHEDULERS
        )
        runs = [
            (None, True, ""),
            (comparison_keys, False, " (from scratch)"),
        ]
    table = TextTable(headers=list(OVERHEAD_TABLE_HEADERS))
    for keys, incremental, suffix in runs:
        kwargs = {} if keys is None else {"scheduler_keys": keys}
        records = scheduling_overhead(
            replicates=args.replicates,
            window=args.window,
            max_jobs=args.max_jobs,
            scheduler_options={"bender98": {"max_jobs_per_resolution": 25}},
            replan_policy=args.replan_policy,
            incremental_lp=incremental,
            solver_backend=args.solver_backend,
            speculation=bool(args.speculate),
            **kwargs,
        )
        for record in records:
            cells = record.cells()
            cells[0] = f"{cells[0]}{suffix}"
            table.add_row(cells)
    print(table.render())
    return 0


def _cmd_theorem1(args: argparse.Namespace) -> int:
    report = starvation_analysis(args.delta, args.unit_jobs, args.schedulers)
    print(f"Theorem 1 instance: Delta = {report.delta}, k = {report.n_unit_jobs} unit jobs")
    print(
        f"  sum-friendly schedule: sum-stretch = {report.sum_friendly_sum_stretch:.3f}, "
        f"max-stretch = {report.sum_friendly_max_stretch:.3f}"
    )
    print(
        f"  max-friendly schedule: sum-stretch = {report.max_friendly_sum_stretch:.3f}, "
        f"max-stretch = {report.max_friendly_max_stretch:.3f}"
    )
    table = TextTable(headers=["Scheduler", "max-stretch", "sum-stretch"])
    for name, (max_s, sum_s) in report.measured.items():
        table.add_row([name, max_s, sum_s])
    print(table.render())
    print(f"max-stretch blow-up exhibited by the proof: {report.max_stretch_blowup:.3f}")
    return 0


def _cmd_theorem2(args: argparse.Namespace) -> int:
    report = swrpt_competitive_gap(args.epsilon, args.unit_jobs)
    print(
        f"Theorem 2 instance: epsilon = {report.epsilon}, alpha = {report.parameters.alpha:.4f}, "
        f"n = {report.parameters.n}, k = {report.parameters.k}, l = {report.n_unit_jobs}"
    )
    print(f"  SRPT  sum-stretch: simulated {report.srpt_sum_stretch:.3f}, "
          f"predicted {report.predicted_srpt:.3f}")
    print(f"  SWRPT sum-stretch: simulated {report.swrpt_sum_stretch:.3f}, "
          f"predicted {report.predicted_swrpt:.3f}")
    print(f"  ratio: {report.ratio:.4f} (target as l grows: {report.target:.4f})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-stretch`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    backend_error = _check_backend(args)
    if backend_error is not None:
        print(backend_error, file=sys.stderr)
        return 2
    handlers = {
        "simulate": _cmd_simulate,
        "campaign": _cmd_campaign,
        "merge": _cmd_merge,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "figure3": _cmd_figure3,
        "overhead": _cmd_overhead,
        "theorem1": _cmd_theorem1,
        "theorem2": _cmd_theorem2,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
