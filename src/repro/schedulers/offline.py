"""The off-line optimal max-stretch algorithm (Section 4.3.1).

This scheduler knows the whole instance (release dates included) in advance.
At initialization it:

1. builds the max weighted flow problem with stretch weights,
2. runs the milestone binary search of :mod:`repro.lp.maxstretch` to obtain
   the optimal max-stretch :math:`S^*` and an interval/resource allocation
   achieving it,
3. materializes the allocation into a per-machine plan (earliest deadline
   first inside each interval, which is always feasible), and then simply
   follows the plan.

The achieved max-stretch is optimal; the sum-stretch is whatever falls out
(Table 1 of the paper reports ~1.67x the best observed sum-stretch).  Passing
``reoptimize_sum=True`` applies the System (2) re-optimization to the
off-line plan as well, which is a natural extension the paper discusses but
does not evaluate under the name "Offline".
"""

from __future__ import annotations

from repro.core.instance import Instance
from repro.lp.aggregation import edf_order, materialize_solution, swrpt_terminal_order
from repro.lp.backends import SolverBackend, make_backend
from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import problem_from_instance
from repro.lp.relaxation import reoptimize_allocation
from repro.schedulers.base import PlanBasedScheduler

__all__ = ["OfflineScheduler"]


class OfflineScheduler(PlanBasedScheduler):
    """Optimal (off-line) max-stretch scheduler.

    Parameters
    ----------
    reoptimize_sum:
        When True, the System (2) relaxation is applied on top of the optimal
        max-stretch before materializing the plan (off-line analogue of the
        on-line heuristic's step 3).
    solver_backend:
        LP solver backend (``"scipy"`` | ``"highs"`` | ``"auto"``, a backend
        instance, or ``None`` for the scipy default).  The off-line solve is
        a single milestone search, so the persistent backend mostly saves the
        per-probe scipy overhead here (no cross-replan reuse to exploit).
    """

    name = "Offline"

    #: The whole-run plan is computed at reset assuming a reliable platform;
    #: pairing it with a fault timeline would silently execute on downed
    #: machines, so the engine refuses the combination.
    fault_aware = False

    def __init__(
        self,
        *,
        reoptimize_sum: bool = False,
        solver_backend: "str | SolverBackend | None" = None,
    ):
        super().__init__()
        self.reoptimize_sum = reoptimize_sum
        self.solver_backend = solver_backend
        if reoptimize_sum:
            self.name = "Offline+Sum"
        #: Optimal max-stretch computed at reset (None before reset).
        self.optimal_max_stretch: float | None = None

    def reset(self, instance: Instance) -> None:
        super().reset(instance)
        if len(instance.jobs) == 0:
            self.optimal_max_stretch = 0.0
            return
        backend = make_backend(self.solver_backend)
        # Caller-supplied instances may carry state from a previous run.
        backend.close()
        problem = problem_from_instance(instance)
        solution = minimize_max_weighted_flow(problem, backend=backend)
        self.optimal_max_stretch = solution.objective
        order_rule = edf_order
        if self.reoptimize_sum:
            solution = reoptimize_allocation(
                problem, solution.objective, backend=backend
            )
            order_rule = swrpt_terminal_order
        schedule = materialize_solution(solution, instance, order_rule=order_rule)
        self.set_plan(self.segments_from_schedule(schedule))
