"""Name-based scheduler registry.

The experiment harness, the CLI and the benchmark files refer to schedulers
by short keys (``"offline"``, ``"swrpt"``, ...).  The registry maps these keys
to factories producing fresh scheduler instances, which matters because most
schedulers keep per-run state.

New strategies can be plugged in with :func:`register_scheduler`, either
directly or through the decorator form::

    @register_scheduler("my-heuristic")
    def _make():
        return MyScheduler()
"""

from __future__ import annotations

from typing import Callable

from repro.schedulers.base import Scheduler
from repro.schedulers.bender02 import Bender02Scheduler
from repro.schedulers.bender98 import Bender98Scheduler
from repro.schedulers.mct import MCTDivScheduler, MCTScheduler
from repro.schedulers.offline import OfflineScheduler
from repro.schedulers.online_lp import OnlineLPScheduler
from repro.schedulers.priority import (
    EDFScheduler,
    FCFSScheduler,
    SPTScheduler,
    SRPTScheduler,
    SWPTScheduler,
    SWRPTScheduler,
)

__all__ = [
    "register_scheduler",
    "make_scheduler",
    "available_schedulers",
    "paper_schedulers",
    "PAPER_TABLE1_ORDER",
    "ONLINE_LP_SCHEDULERS",
    "LP_SOLVER_SCHEDULERS",
    "SERVICE_SCHEDULERS",
]

#: Keys of the on-line LP heuristics -- the schedulers that accept the
#: replanning knobs (``policy=...``, ``incremental=...``).  Kept next to the
#: registrations below so a new variant cannot drift out of sync with the
#: experiment/CLI layers that consult this tuple.
ONLINE_LP_SCHEDULERS: tuple[str, ...] = (
    "online",
    "online-edf",
    "online-egdf",
    "online-nonopt",
)

#: Keys of every scheduler that solves Systems (1)/(2) and therefore accepts
#: the ``solver_backend=...`` knob (the on-line heuristics plus the off-line
#: optimal variants).  The experiment-config and CLI layers consult this
#: tuple so a new LP consumer cannot drift out of sync with them.
LP_SOLVER_SCHEDULERS: tuple[str, ...] = ONLINE_LP_SCHEDULERS + (
    "offline",
    "offline-sum",
)

#: Keys of the schedulers usable in *service mode* (streaming arrivals): any
#: strategy that requires no whole-instance knowledge before the first
#: arrival.  Excluded are the clairvoyant off-line optima and the Bender
#: heuristics, whose reset reads the instance-wide job-size ratio Δ --
#: information a daemon does not have when it boots.
SERVICE_SCHEDULERS: tuple[str, ...] = ONLINE_LP_SCHEDULERS + (
    "fcfs",
    "srpt",
    "spt",
    "swpt",
    "swrpt",
    "edf",
    "mct",
    "mct-div",
)

SchedulerFactory = Callable[[], Scheduler]

_REGISTRY: dict[str, SchedulerFactory] = {}


def register_scheduler(key: str, factory: SchedulerFactory | None = None):
    """Register ``factory`` under ``key`` (usable as a decorator)."""
    key = key.lower()

    def _register(fn: SchedulerFactory) -> SchedulerFactory:
        if key in _REGISTRY:
            raise ValueError(f"scheduler key {key!r} is already registered")
        _REGISTRY[key] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def make_scheduler(key: str, **kwargs) -> Scheduler:
    """Instantiate the scheduler registered under ``key``.

    Keyword arguments are forwarded to the factory (most factories accept
    none; the LP-based and Bender98 factories accept tuning options).
    """
    try:
        factory = _REGISTRY[key.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scheduler {key!r}; known schedulers: {known}") from None
    return factory(**kwargs) if kwargs else factory()


def available_schedulers() -> list[str]:
    """All registered scheduler keys, sorted."""
    return sorted(_REGISTRY)


#: The strategies of Table 1 of the paper, in the paper's row order.
PAPER_TABLE1_ORDER: tuple[str, ...] = (
    "offline",
    "online",
    "online-edf",
    "online-egdf",
    "bender98",
    "swrpt",
    "srpt",
    "spt",
    "bender02",
    "mct-div",
    "mct",
)


def paper_schedulers(*, include_bender98: bool = True) -> list[str]:
    """The scheduler keys evaluated in the paper's Table 1.

    ``include_bender98=False`` drops Bender98, whose prohibitive overhead
    restricted it to 3-cluster platforms in the paper (Section 5.3).
    """
    keys = list(PAPER_TABLE1_ORDER)
    if not include_bender98:
        keys.remove("bender98")
    return keys


# -- built-in registrations --------------------------------------------------------

register_scheduler("offline", lambda **kw: OfflineScheduler(**kw))
register_scheduler("offline-sum", lambda **kw: OfflineScheduler(reoptimize_sum=True, **kw))
register_scheduler("online", lambda **kw: OnlineLPScheduler(variant="online", **kw))
register_scheduler("online-edf", lambda **kw: OnlineLPScheduler(variant="online-edf", **kw))
register_scheduler("online-egdf", lambda **kw: OnlineLPScheduler(variant="online-egdf", **kw))
register_scheduler(
    "online-nonopt", lambda **kw: OnlineLPScheduler(variant="online-nonopt", **kw)
)
register_scheduler("bender98", lambda **kw: Bender98Scheduler(**kw))
register_scheduler("bender02", lambda **kw: Bender02Scheduler(**kw))
register_scheduler("fcfs", lambda **kw: FCFSScheduler(**kw))
register_scheduler("srpt", lambda **kw: SRPTScheduler(**kw))
register_scheduler("spt", lambda **kw: SPTScheduler(**kw))
register_scheduler("swpt", lambda **kw: SWPTScheduler(**kw))
register_scheduler("swrpt", lambda **kw: SWRPTScheduler(**kw))
register_scheduler("edf", lambda **kw: EDFScheduler(**kw))
register_scheduler("mct", lambda **kw: MCTScheduler(**kw))
register_scheduler("mct-div", lambda **kw: MCTDivScheduler(**kw))
