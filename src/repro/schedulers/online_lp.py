"""The LP-based on-line heuristics of Section 4.3.2.

At every release date the scheduler

1. preempts everything (implicit: the plan is recomputed from scratch),
2. computes the best max-stretch :math:`S^*` still achievable *given the
   work already performed* (System (1) restricted to the remaining work of
   the active jobs),
3. re-optimizes a sum-stretch-like relaxation under the constraint that
   :math:`S^*` is preserved (System (2)), unless the non-optimized variant is
   selected, and
4. turns the LP allocation into an executable plan, in one of three ways:

   * **Online** -- inside each (interval, processor) the jobs completing
     their share there ("terminal jobs") run first under the SWRPT order,
     followed by the non-terminal jobs;
   * **Online-EDF** -- per processor, the total shares are list-scheduled in
     the order of the interval in which each share completes (ties broken by
     SWRPT);
   * **Online-EGDF** -- a single global priority list (ordered by the
     interval in which the job's total work completes, ties broken by SWRPT)
     is used with the greedy restricted-availability rule of Section 3.

The *non-optimized* variant (``variant="online-nonopt"``) skips step 3 and
directly materializes the System (1) allocation; Figure 3 of the paper
compares it against the optimized version.

Two orthogonal knobs refine the hot path without changing the defaults:

* ``policy`` -- a :mod:`~repro.schedulers.policies` replan policy deciding
  *when* the LP resolutions run (``"on-arrival"``, the paper's behaviour, by
  default);
* ``incremental`` -- when True (default) a
  :class:`~repro.lp.incremental.ReplanContext` carries caches and an
  :math:`S^*` warm start across replans, which cuts the LP probe count per
  release date by several times while producing bit-identical schedules;
  ``incremental=False`` keeps the from-scratch path for comparison.
"""

from __future__ import annotations

import math
import time as _time
from typing import Literal, Sequence

from repro.core.instance import Instance
from repro.core.job import Job
from repro.lp.aggregation import (
    edf_order,
    materialize_solution,
    swrpt_terminal_order,
)
from repro.lp.backends import SolverBackend, make_backend, note_replan
from repro.lp.bank import SolverStateBank
from repro.lp.incremental import ReplanContext
from repro.lp.maxstretch import MaxStretchSolution, minimize_max_weighted_flow
from repro.lp.problem import Resource, problem_from_instance
from repro.lp.relaxation import reoptimize_allocation
from repro.lp.speculate import predict_replan_remaining
from repro.simulation.state import Assignment, SchedulerState
from repro.schedulers.base import PlanBasedScheduler, PlanSegment
from repro.schedulers.policies import OnArrivalPolicy, ReplanPolicy, parse_policy

__all__ = ["OnlineLPScheduler"]

Variant = Literal["online", "online-edf", "online-egdf", "online-nonopt"]

_VARIANT_NAMES = {
    "online": "Online",
    "online-edf": "Online-EDF",
    "online-egdf": "Online-EGDF",
    "online-nonopt": "Online (non-opt.)",
}


class OnlineLPScheduler(PlanBasedScheduler):
    """On-line max-stretch heuristic built on Systems (1) and (2).

    Parameters
    ----------
    variant:
        One of ``"online"``, ``"online-edf"``, ``"online-egdf"`` or
        ``"online-nonopt"`` (see module docstring).
    policy:
        Replan policy (textual spec or :class:`ReplanPolicy` instance); the
        default ``"on-arrival"`` reproduces the paper exactly.
    incremental:
        Carry a :class:`~repro.lp.incremental.ReplanContext` across replans
        (default).  ``False`` rebuilds everything from scratch at every
        resolution, as the original heuristic does.
    solver_backend:
        LP solver backend (``"scipy"`` | ``"highs"`` | ``"auto"``, a
        :class:`~repro.lp.backends.SolverBackend` instance, or ``None`` for
        the scipy default).  Orthogonal to ``incremental``: the backend
        lives at the solver layer (one instance per run, owned by the
        ReplanContext when ``incremental`` is on), so the from-scratch
        planning path can still be measured against both backends.
    state_bank:
        Optional :class:`~repro.lp.bank.SolverStateBank` shared across runs
        (the campaign workers hold one each).  Only honoured with
        ``incremental=True``; any non-bank value -- including the raw
        booleans of :attr:`ExperimentConfig.state_bank`, which only the
        campaign runner translates into a live bank -- is treated as "no
        bank", so direct ``simulate()`` and CLI paths stay bank-less.
    speculate:
        When True, the engine's once-per-gap :meth:`on_idle` callback
        pre-solves the *predicted* next replan (the event-horizon projection
        of :mod:`repro.lp.speculate`) so an exact prediction turns the
        arrival's LP work into a memo re-bind.  Bit-identical schedules by
        construction -- hits are exact optima of the signed problem, misses
        are discarded -- and a no-op without ``incremental`` or on the
        persistent HiGHS backend (see :meth:`ReplanContext.speculate`).
        Default off (the paper's heuristics have no such look-ahead).
    """

    def __init__(
        self,
        variant: Variant = "online",
        *,
        policy: "str | ReplanPolicy" = "on-arrival",
        incremental: bool = True,
        solver_backend: "str | SolverBackend | None" = None,
        state_bank: "SolverStateBank | object | None" = None,
        speculate: bool = False,
    ):
        super().__init__(policy=parse_policy(policy))
        if variant not in _VARIANT_NAMES:
            raise ValueError(f"unknown variant {variant!r}")
        self.variant: Variant = variant
        self.name = _VARIANT_NAMES[variant]
        if not isinstance(self.policy, OnArrivalPolicy):
            # Non-default cadences are a new scenario axis; make them visible
            # in result tables without renaming the paper-faithful default.
            self.name = f"{self.name} [{self.policy.describe()}]"
        self.incremental = incremental
        self.speculate = bool(speculate)
        self.solver_backend = solver_backend
        self.state_bank: SolverStateBank | None = (
            state_bank if isinstance(state_bank, SolverStateBank) else None
        )
        self._backend: SolverBackend | None = None
        self._context: ReplanContext | None = None
        #: Lazily created backend for degraded (restricted-availability)
        #: replans, kept apart from the full-platform warm-start state.
        self._fault_backend: SolverBackend | None = None
        #: Best achievable max-stretch computed at the last release date.
        self.last_objective: float | None = None
        #: Number of LP re-optimizations performed.
        self.n_resolutions = 0
        self._egdf_rank: dict[int, tuple[float, ...]] = {}

    # -- event handling ------------------------------------------------------------
    def reset(self, instance: Instance) -> None:
        super().reset(instance)
        if self.incremental:
            self._context = ReplanContext(
                instance,
                solver_backend=self.solver_backend,
                state_bank=self.state_bank,
            )
            self._backend = self._context.backend
        else:
            self._context = None
            # Persistent solver state never leaks across runs: freshly named
            # backends start empty, and a caller-supplied instance is
            # emptied here (mirroring the ReplanContext lifetime).
            self._backend = make_backend(self.solver_backend)
            self._backend.close()
        if self._fault_backend is not None:
            self._fault_backend.close()
            self._fault_backend = None
        self.last_objective = None
        self.n_resolutions = 0
        self._egdf_rank = {}

    def on_availability(
        self, state: SchedulerState, downs: Sequence[int], ups: Sequence[int]
    ) -> None:
        if self._context is not None:
            # Carried S*/certificates assume the previous plan was followed
            # on a stable platform; an outage breaks that premise, so the
            # context must restart cold (the speculation memo dies with it
            # -- an UP during an idle gap therefore misses cleanly).
            self._context.invalidate_carry()
        super().on_availability(state, downs, ups)

    def on_arrivals(self, state: SchedulerState, jobs: Sequence[Job]) -> None:
        if self._context is not None:
            # Service mode admits jobs after reset; make sure the replan fast
            # path has a row for each before any policy decision can trigger
            # an LP resolution.  No-op in batch mode (the table is built from
            # the full instance up front), so schedules are unchanged there.
            self._context.ensure_jobs(jobs)
        super().on_arrivals(state, jobs)

    def on_arrival(self, state: SchedulerState, job: Job) -> None:
        # Kept for API compatibility (direct calls in tests/examples); the
        # policy-driven path goes through PlanBasedScheduler.on_arrivals.
        self._do_replan(state)

    def finalize(self, state: SchedulerState) -> None:
        """Publish the run's final solver state into the cross-run bank."""
        if self._context is not None:
            self._context.publish()

    def on_idle(self, state: SchedulerState, until: float) -> None:
        """Speculatively pre-solve the replan predicted at ``until``.

        The engine fires this exactly once per inter-event gap, from the
        step that runs uninterrupted into the next arrival; the event-horizon
        projection of :mod:`repro.lp.speculate` therefore reproduces the
        replan's remaining-work map exactly whenever the arrival does
        trigger a replan (the on-arrival default).  Deferring policies and
        completion-triggered replans make the prediction miss, which
        discards the memo -- never changing results either way.
        """
        if not self.speculate or self._context is None:
            return
        if state.down:
            # Degraded replans bypass the context (and its memo); a
            # speculative full-platform pre-solve could never hit anyway.
            return
        remaining = predict_replan_remaining(
            state, self.plan_assignment(state).mapping, until
        )
        if not remaining:
            return
        problem = self._context.build_problem(until, remaining)
        self._context.speculate(
            problem, with_reoptimize=self.variant != "online-nonopt"
        )

    def replan(self, state: SchedulerState) -> None:
        start = _time.perf_counter()
        try:
            self._replan(state)
        finally:
            note_replan(_time.perf_counter() - start)

    def _replan(self, state: SchedulerState) -> None:
        instance = state.instance
        now = state.time
        remaining = state.remaining_map()
        if state.down:
            self._replan_degraded(state, now, remaining)
            return
        if not remaining:
            self.set_plan([])
            return

        # Step 2: best achievable max-stretch given the decisions already made.
        if self._context is not None:
            problem = self._context.build_problem(now, remaining)
            best = self._context.solve_max_stretch(problem)
        else:
            problem = problem_from_instance(instance, now=now, remaining=remaining)
            best = minimize_max_weighted_flow(problem, backend=self._backend)
        self.last_objective = best.objective
        self.n_resolutions += 1

        if self.variant == "online-nonopt":
            solution = best
        elif self._context is not None:
            # Step 3: System (2) re-optimization at fixed max-stretch.
            solution = self._context.reoptimize(problem, best.objective)
        else:
            solution = reoptimize_allocation(
                problem, best.objective, backend=self._backend
            )

        # Step 4: build the executable plan.
        self._install_plan(solution, instance, now)

    def _install_plan(
        self, solution: MaxStretchSolution, instance: Instance, now: float
    ) -> None:
        """Step 4: turn the LP allocation into an executable plan."""
        if self.variant == "online-egdf":
            self._egdf_rank = self._global_priorities(solution)
            self.set_plan([])  # the EGDF variant does not follow a plan
        elif self.variant == "online-edf":
            self.set_plan(self._per_processor_list_plan(solution, instance, now))
        elif self.variant == "online-nonopt":
            schedule = materialize_solution(solution, instance, order_rule=edf_order)
            self.set_plan(self.segments_from_schedule(schedule))
        else:  # "online"
            schedule = materialize_solution(
                solution, instance, order_rule=swrpt_terminal_order
            )
            self.set_plan(self.segments_from_schedule(schedule))

    # -- degraded replans (machine outages) --------------------------------------------
    def _replan_degraded(
        self, state: SchedulerState, now: float, remaining: "dict[int, float]"
    ) -> None:
        """Replan on the surviving machines only (fault-injection path).

        The LP is rebuilt from scratch over the capability classes of the
        *restricted* platform, bypassing every :class:`ReplanContext` cache
        (whose resources, job table and carried state all describe the full
        platform).  Flow factors still come from the full-platform ideal
        times -- the instance's stretch convention -- so objectives remain
        comparable across availability regimes.  Jobs whose eligible
        machines are all down are left out of the LP; they park until an UP
        transition forces the next replan.
        """
        instance = state.instance
        runnable = {
            job_id: rem
            for job_id, rem in remaining.items()
            if rem > 0 and state.available_eligible(job_id)
        }
        if not runnable:
            self.set_plan([])
            self._egdf_rank = {}
            return
        platform = instance.platform.restrict_to(sorted(state.available_ids()))
        resources = tuple(
            Resource(
                index=i,
                speed=cls.aggregate_speed,
                machine_ids=cls.machine_ids,
                databanks=cls.databanks,
            )
            for i, cls in enumerate(platform.capability_classes())
        )
        eligibility: dict[str | None, tuple[int, ...]] = {}
        for job_id in runnable:
            databank = instance.job(job_id).databank
            if databank not in eligibility:
                eligibility[databank] = tuple(
                    r.index
                    for r in resources
                    if databank is None or databank in r.databanks
                )
        problem = problem_from_instance(
            instance,
            now=now,
            remaining=runnable,
            resources=resources,
            eligibility=eligibility,
        )
        if self._fault_backend is None:
            self._fault_backend = make_backend(self.solver_backend)
            self._fault_backend.close()
        best = minimize_max_weighted_flow(problem, backend=self._fault_backend)
        self.last_objective = best.objective
        self.n_resolutions += 1
        if self.variant == "online-nonopt":
            solution = best
        else:
            solution = reoptimize_allocation(
                problem, best.objective, backend=self._fault_backend
            )
        self._install_plan(solution, instance, now)

    # -- EGDF: global priority list -------------------------------------------------
    @staticmethod
    def _global_priorities(solution: MaxStretchSolution) -> dict[int, tuple[float, ...]]:
        """Rank jobs by the interval in which their total work completes."""
        ranks: dict[int, tuple[float, ...]] = {}
        for lp_job in solution.problem.jobs:
            try:
                completion_interval = float(solution.completion_interval(lp_job.job_id))
            except KeyError:
                completion_interval = float(len(solution.interval_bounds))
            swrpt_key = lp_job.flow_factor * lp_job.remaining_work
            ranks[lp_job.job_id] = (completion_interval, swrpt_key, float(lp_job.job_id))
        return ranks

    # -- Online-EDF: per-processor list scheduling ------------------------------------
    def _per_processor_list_plan(
        self,
        solution: MaxStretchSolution,
        instance: Instance,
        now: float,
    ) -> list[PlanSegment]:
        segments: list[PlanSegment] = []
        for resource in solution.problem.resources:
            jobs_here = solution.jobs_on_resource(resource.index)
            if not jobs_here:
                continue

            def order_key(job_id: int) -> tuple[float, float, int]:
                completion = solution.completion_interval_on_resource(job_id, resource.index)
                lp_job = solution.problem.job_by_id(job_id)
                return (
                    float(completion if completion is not None else math.inf),
                    lp_job.flow_factor * lp_job.remaining_work,
                    job_id,
                )

            cursor = now
            for job_id in sorted(jobs_here, key=order_key):
                work = solution.work_for_job_on_resource(job_id, resource.index)
                if work <= 0:
                    continue
                duration = work / resource.speed
                end = cursor + duration
                for machine_id in resource.machine_ids:
                    segments.append(
                        PlanSegment(
                            machine_id=machine_id, job_id=job_id, start=cursor, end=end
                        )
                    )
                cursor = end
        return segments

    # -- deferred-arrival absorption (threshold policy) ---------------------------------
    def absorb_arrivals(self, state: SchedulerState, jobs: Sequence[Job]) -> None:
        """Append deferred jobs to the plan greedily (no LP resolution).

        Each job goes, in its entirety, to the eligible machine completing it
        earliest behind the already-planned work -- the MCT rule, appended at
        the *tail* of the machine's plan (not its first idle gap, which may be
        shorter than the job and would create overlapping segments).  The EGDF
        variant does not follow a plan; its greedy rule already serves
        unranked jobs last, so nothing is written (writing segments would
        only flip :class:`ThresholdPolicy` onto its plan-based estimate for a
        plan nobody executes).
        """
        if self.variant == "online-egdf":
            return
        now = state.time
        for job in jobs:
            best_machine = None
            best_start = now
            best_completion = math.inf
            for machine in state.available_eligible(job.job_id):
                start = self.plan_tail(machine.machine_id, now)
                completion = start + job.size / machine.speed
                if completion < best_completion - 1e-15:
                    best_machine, best_start, best_completion = machine, start, completion
            if best_machine is None:
                # Every eligible machine is down (fault injection): leave the
                # job unplanned; the next availability transition forces a
                # replan that picks it up.  Unreachable on a reliable
                # platform -- instances are validated upstream.
                continue
            self.extend_plan(
                [
                    PlanSegment(
                        machine_id=best_machine.machine_id,
                        job_id=job.job_id,
                        start=best_start,
                        end=best_completion,
                    )
                ]
            )

    # -- assignment --------------------------------------------------------------------
    def plan_assignment(self, state: SchedulerState) -> Assignment:
        if self.variant != "online-egdf":
            return super().plan_assignment(state)
        # Greedy restricted-availability rule with the stored global priorities.
        instance = state.instance
        order = sorted(
            state.active_jobs(),
            key=lambda rt: self._egdf_rank.get(
                rt.job_id, (math.inf, math.inf, float(rt.job_id))
            ),
        )
        available = state.available_ids()
        mapping: dict[int, int] = {}
        for runtime in order:
            if not available:
                break
            eligible = [
                m for m in instance.eligible_machine_ids(runtime.job_id) if m in available
            ]
            for machine_id in eligible:
                mapping[machine_id] = runtime.job_id
                available.discard(machine_id)
        return Assignment(mapping=mapping)
