"""Classical priority-list heuristics (Section 4.1 and 4.2).

All of these are analysed in the paper on the preemptive uni-processor model
and lifted to the divisible multi-machine setting through the greedy rule of
Section 3 (implemented by :class:`~repro.schedulers.base.PriorityScheduler`).

Priorities follow the paper's definitions, with the stretch convention for
weights (:math:`w_j \\propto 1/W_j`):

=============  =====================================================================
FCFS           first come, first served -- optimal for max-flow [2]
SRPT           shortest remaining processing time -- optimal for sum-flow,
               2-competitive for sum-stretch [13]
SPT            shortest processing time (original size)
SWPT           Smith's ratio rule; for stretch weights the ratio is
               :math:`p_j/w_j \\propto W_j^2`, i.e. the same ordering as SPT
SWRPT          shortest *weighted remaining* processing time: at time t pick the
               job minimizing :math:`W_j\\,\\rho_t(j)`
EDF            earliest deadline first, for externally supplied deadlines
=============  =====================================================================
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.simulation.state import JobRuntime, SchedulerState
from repro.schedulers.base import PriorityScheduler

__all__ = [
    "FCFSScheduler",
    "SRPTScheduler",
    "SPTScheduler",
    "SWPTScheduler",
    "SWRPTScheduler",
    "EDFScheduler",
]


class FCFSScheduler(PriorityScheduler):
    """First come, first served (optimal for max-flow on one processor)."""

    name = "FCFS"

    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        return runtime.job.release

    def priority_keys(
        self, state: SchedulerState, runtimes: Sequence[JobRuntime]
    ) -> np.ndarray:
        return np.fromiter(
            (rt.job.release for rt in runtimes), np.float64, count=len(runtimes)
        )


class SRPTScheduler(PriorityScheduler):
    """Shortest remaining processing time first (optimal for sum-flow)."""

    name = "SRPT"

    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        return runtime.remaining

    def priority_keys(
        self, state: SchedulerState, runtimes: Sequence[JobRuntime]
    ) -> np.ndarray:
        return np.fromiter(
            (rt.remaining for rt in runtimes), np.float64, count=len(runtimes)
        )


class SPTScheduler(PriorityScheduler):
    """Shortest processing time first (priority = original job size)."""

    name = "SPT"

    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        return runtime.job.size

    def priority_keys(
        self, state: SchedulerState, runtimes: Sequence[JobRuntime]
    ) -> np.ndarray:
        return np.fromiter(
            (rt.job.size for rt in runtimes), np.float64, count=len(runtimes)
        )


class SWPTScheduler(PriorityScheduler):
    """Smith's ratio rule (shortest weighted processing time).

    For arbitrary weights the priority is :math:`p_j / w_j`; with the stretch
    weights this reduces to :math:`W_j^2` and the ordering coincides with SPT,
    exactly as noted in Section 4.2 of the paper.
    """

    name = "SWPT"

    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        job = runtime.job
        if job.weight is not None:
            return job.size / job.weight
        return job.size * job.size

    def priority_keys(
        self, state: SchedulerState, runtimes: Sequence[JobRuntime]
    ) -> np.ndarray:
        return np.fromiter(
            (
                rt.job.size / rt.job.weight
                if rt.job.weight is not None
                else rt.job.size * rt.job.size
                for rt in runtimes
            ),
            np.float64,
            count=len(runtimes),
        )


class SWRPTScheduler(PriorityScheduler):
    """Shortest weighted remaining processing time.

    At any time the job minimizing :math:`\\rho_t(j)/w_j` is scheduled; with
    stretch weights this is :math:`W_j\\,\\rho_t(j)` (original size times
    remaining work).
    """

    name = "SWRPT"

    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        job = runtime.job
        if job.weight is not None:
            return runtime.remaining / job.weight
        return job.size * runtime.remaining

    def priority_keys(
        self, state: SchedulerState, runtimes: Sequence[JobRuntime]
    ) -> np.ndarray:
        return np.fromiter(
            (
                rt.remaining / rt.job.weight
                if rt.job.weight is not None
                else rt.job.size * rt.remaining
                for rt in runtimes
            ),
            np.float64,
            count=len(runtimes),
        )


class EDFScheduler(PriorityScheduler):
    """Earliest deadline first with externally supplied deadlines.

    The deadline of a job is obtained from ``deadline_fn`` (a callable or a
    mapping); jobs without a deadline are served last, in FCFS order.  This
    scheduler is the execution layer of Bender98 and can be used directly for
    deadline-driven experiments.
    """

    name = "EDF"

    def __init__(
        self,
        deadline_fn: Callable[[int], float] | Mapping[int, float] | None = None,
    ):
        super().__init__()
        self._deadline_fn = deadline_fn

    def set_deadlines(self, deadlines: Mapping[int, float]) -> None:
        """Replace the deadline table (used by schedulers wrapping EDF)."""
        self._deadline_fn = dict(deadlines)

    def deadline_of(self, job_id: int) -> float:
        if self._deadline_fn is None:
            return float("inf")
        if callable(self._deadline_fn):
            try:
                return float(self._deadline_fn(job_id))
            except KeyError:
                return float("inf")
        return float(self._deadline_fn.get(job_id, float("inf")))

    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        deadline = self.deadline_of(runtime.job_id)
        if deadline == float("inf"):
            # No deadline: serve after deadline-carrying jobs, FCFS among them.
            return 1e18 + runtime.job.release
        return deadline
