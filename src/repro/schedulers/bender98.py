"""The Bender, Chakrabarti & Muthukrishnan 1998 heuristic [2].

Each time a new job arrives:

1. preempt the running job(s),
2. compute the *off-line optimal* max-stretch :math:`S^*` of all jobs that
   have arrived so far (considering their full original sizes and release
   dates -- the algorithm does not account for work already performed),
3. give every job the deadline :math:`\\bar d_j = r_j + \\alpha\\,S^*/w_j`
   with expansion factor :math:`\\alpha = \\sqrt{\\Delta}`,
4. schedule with Earliest Deadline First.

The paper notes two practical problems, both reproduced here: the heuristic
solves a full off-line optimal max-stretch problem at every release date
(which makes it intractable for long workloads -- Section 5.3 only reports it
for 3-cluster platforms), and the :math:`\\sqrt{\\Delta}` expansion makes its
effective max-stretch guarantee very loose.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.instance import Instance
from repro.core.job import Job
from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import problem_from_instance
from repro.simulation.state import JobRuntime, SchedulerState
from repro.schedulers import kernels
from repro.schedulers.base import PriorityScheduler

__all__ = ["Bender98Scheduler"]


class Bender98Scheduler(PriorityScheduler):
    """Off-line optimal recomputation + EDF with sqrt(Delta)-expanded deadlines.

    Parameters
    ----------
    expansion:
        Expansion factor :math:`\\alpha`; ``None`` (default) uses
        :math:`\\sqrt{\\Delta}` with :math:`\\Delta` taken from the whole
        instance, as in the original competitive analysis.
    max_jobs_per_resolution:
        Safety cap on the number of jobs included in each off-line
        resolution.  ``None`` means no cap (faithful to the original
        algorithm); the experiment harness sets a cap when the algorithm
        would otherwise be intractable, mirroring the restriction of the
        paper's simulations to 3-cluster platforms.
    """

    name = "Bender98"

    def __init__(
        self,
        *,
        expansion: float | None = None,
        max_jobs_per_resolution: int | None = None,
    ):
        super().__init__()
        self._expansion_override = expansion
        self.max_jobs_per_resolution = max_jobs_per_resolution
        self._deadlines: dict[int, float] = {}
        self._expansion = 1.0
        #: Number of off-line optimal problems solved (overhead bookkeeping).
        self.n_resolutions = 0

    def reset(self, instance: Instance) -> None:
        super().reset(instance)
        self._deadlines = {}
        self.n_resolutions = 0
        if self._expansion_override is not None:
            self._expansion = self._expansion_override
        elif len(instance.jobs) > 0:
            self._expansion = math.sqrt(instance.delta())
        else:
            self._expansion = 1.0

    def on_arrival(self, state: SchedulerState, job: Job) -> None:
        instance = state.instance
        released = sorted(state.released_ids)
        cap = self.max_jobs_per_resolution
        if cap is not None and len(released) > cap:
            released = released[-self.max_jobs_per_resolution:]
        # Off-line problem over the jobs arrived so far, with their original
        # sizes and release dates (Bender et al. ignore the work already done).
        problem = problem_from_instance(instance, job_ids=released)
        solution = minimize_max_weighted_flow(problem)
        self.n_resolutions += 1
        optimal = solution.objective
        count = len(released)
        releases = np.fromiter(
            (instance.job(job_id).release for job_id in released),
            np.float64,
            count=count,
        )
        flow_factors = np.fromiter(
            (1.0 / instance.weight(job_id) for job_id in released),
            np.float64,
            count=count,
        )
        deadlines = kernels.expand_deadlines(
            releases, flow_factors, self._expansion * optimal
        )
        for job_id, deadline in zip(released, deadlines.tolist()):
            self._deadlines[job_id] = deadline

    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        return self._deadlines.get(runtime.job_id, float("inf"))

    def priority_keys(
        self, state: SchedulerState, runtimes: Sequence[JobRuntime]
    ) -> np.ndarray:
        deadlines = self._deadlines
        return np.fromiter(
            (deadlines.get(rt.job_id, math.inf) for rt in runtimes),
            np.float64,
            count=len(runtimes),
        )
