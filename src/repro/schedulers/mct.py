"""Greedy minimum-completion-time strategies (the production GriPPS policy).

``MCT`` assigns each arriving job, in its entirety, to the machine that would
complete it first given the work already queued there; the decision is never
revisited (non-preemptive, non-divisible).  This models the scheduler
deployed in the GriPPS system at the time of the paper and is the main
"anti-pattern" of Section 5.3: small jobs arriving behind a large one are
stretched enormously.

``MCT-Div`` keeps the greedy, irrevocable spirit but exploits divisibility:
the arriving job is spread over all the machines able to serve it so that it
completes as early as possible (a water-filling over the machines' earliest
availability dates).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.job import Job
from repro.simulation.state import SchedulerState
from repro.schedulers import kernels
from repro.schedulers.base import PlanBasedScheduler, PlanSegment

__all__ = ["MCTScheduler", "MCTDivScheduler"]


class MCTScheduler(PlanBasedScheduler):
    """Minimum completion time, whole job on a single machine."""

    name = "MCT"

    def on_arrival(self, state: SchedulerState, job: Job) -> None:
        self._place(state, job.job_id, job.size, state.time)

    def rebuild_after_availability(
        self, state: SchedulerState, downs: Sequence[int], ups: Sequence[int]
    ) -> None:
        # The greedy choice is re-run for the remaining work of every active
        # job (in release order); a job whose eligible machines are all down
        # stays unplanned and parks until an UP transition re-triggers this.
        for runtime in state.active_jobs():
            self._place(state, runtime.job_id, runtime.remaining, state.time)

    def _place(self, state: SchedulerState, job_id: int, work: float, now: float) -> None:
        machines = list(state.available_eligible(job_id))
        if not machines:
            return
        count = len(machines)
        available = np.fromiter(
            (self.plan_horizon(m.machine_id, now) for m in machines),
            np.float64,
            count=count,
        )
        cycle_times = np.fromiter(
            (m.cycle_time for m in machines), np.float64, count=count
        )
        index, best_completion = kernels.mct_argmin_completion(
            available, cycle_times, now, work
        )
        if index < 0:  # pragma: no cover - count > 0 guarantees a winner
            raise RuntimeError(f"no eligible machine for job {job_id}")
        best_machine = machines[index]
        start = max(float(available[index]), now)
        self.extend_plan(
            [
                PlanSegment(
                    machine_id=best_machine.machine_id,
                    job_id=job_id,
                    start=start,
                    end=best_completion,
                )
            ]
        )


class MCTDivScheduler(PlanBasedScheduler):
    """Minimum completion time exploiting divisibility (still non-preemptive)."""

    name = "MCT-Div"

    def on_arrival(self, state: SchedulerState, job: Job) -> None:
        self._place(state, job.job_id, job.size, state.time)

    def rebuild_after_availability(
        self, state: SchedulerState, downs: Sequence[int], ups: Sequence[int]
    ) -> None:
        for runtime in state.active_jobs():
            self._place(state, runtime.job_id, runtime.remaining, state.time)

    def _place(self, state: SchedulerState, job_id: int, work: float, now: float) -> None:
        machines = list(state.available_eligible(job_id))
        if not machines:
            return
        count = len(machines)
        availability = np.fromiter(
            (max(self.plan_horizon(m.machine_id, now), now) for m in machines),
            np.float64,
            count=count,
        )
        speeds = np.fromiter((m.speed for m in machines), np.float64, count=count)
        completion = kernels.water_filling_completion(work, speeds, availability)
        segments = []
        for i, machine in enumerate(machines):
            available = float(availability[i])
            if completion > available + 1e-15:
                segments.append(
                    PlanSegment(
                        machine_id=machine.machine_id,
                        job_id=job_id,
                        start=available,
                        end=completion,
                    )
                )
        self.extend_plan(segments)


def _water_filling_completion(
    work: float, speeds: Sequence[float], availability: Sequence[float]
) -> float:
    """Earliest common completion date of ``work`` spread over the machines.

    Machine ``i`` becomes available at ``availability[i]`` and then processes
    at ``speeds[i]``; the job completes at the smallest ``T`` such that
    ``sum_i speeds[i] * max(0, T - availability[i]) = work``.  Thin sequence
    front-end over :func:`repro.schedulers.kernels.water_filling_completion`
    (which dispatches the active kernel tier).
    """
    return kernels.water_filling_completion(
        work,
        np.asarray(speeds, dtype=np.float64),
        np.asarray(availability, dtype=np.float64),
    )
