"""Greedy minimum-completion-time strategies (the production GriPPS policy).

``MCT`` assigns each arriving job, in its entirety, to the machine that would
complete it first given the work already queued there; the decision is never
revisited (non-preemptive, non-divisible).  This models the scheduler
deployed in the GriPPS system at the time of the paper and is the main
"anti-pattern" of Section 5.3: small jobs arriving behind a large one are
stretched enormously.

``MCT-Div`` keeps the greedy, irrevocable spirit but exploits divisibility:
the arriving job is spread over all the machines able to serve it so that it
completes as early as possible (a water-filling over the machines' earliest
availability dates).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.job import Job
from repro.simulation.state import SchedulerState
from repro.schedulers.base import PlanBasedScheduler, PlanSegment

__all__ = ["MCTScheduler", "MCTDivScheduler"]


class MCTScheduler(PlanBasedScheduler):
    """Minimum completion time, whole job on a single machine."""

    name = "MCT"

    def on_arrival(self, state: SchedulerState, job: Job) -> None:
        instance = state.instance
        now = state.time
        best_machine = None
        best_completion = math.inf
        for machine in instance.eligible_machines(job.job_id):
            available = self.plan_horizon(machine.machine_id, now)
            completion = max(available, now) + job.size * machine.cycle_time
            if completion < best_completion - 1e-15:
                best_completion = completion
                best_machine = machine
        if best_machine is None:  # pragma: no cover - instances are validated upstream
            raise RuntimeError(f"no eligible machine for job {job.job_id}")
        start = max(self.plan_horizon(best_machine.machine_id, now), now)
        self.extend_plan(
            [
                PlanSegment(
                    machine_id=best_machine.machine_id,
                    job_id=job.job_id,
                    start=start,
                    end=best_completion,
                )
            ]
        )


class MCTDivScheduler(PlanBasedScheduler):
    """Minimum completion time exploiting divisibility (still non-preemptive)."""

    name = "MCT-Div"

    def on_arrival(self, state: SchedulerState, job: Job) -> None:
        instance = state.instance
        now = state.time
        machines = instance.eligible_machines(job.job_id)
        availability = [
            max(self.plan_horizon(m.machine_id, now), now) for m in machines
        ]
        completion = _water_filling_completion(
            job.size, [m.speed for m in machines], availability
        )
        segments = []
        for machine, available in zip(machines, availability):
            if completion > available + 1e-15:
                segments.append(
                    PlanSegment(
                        machine_id=machine.machine_id,
                        job_id=job.job_id,
                        start=available,
                        end=completion,
                    )
                )
        self.extend_plan(segments)


def _water_filling_completion(
    work: float, speeds: Sequence[float], availability: Sequence[float]
) -> float:
    """Earliest common completion date of ``work`` spread over the machines.

    Machine ``i`` becomes available at ``availability[i]`` and then processes
    at ``speeds[i]``; the job completes at the smallest ``T`` such that
    ``sum_i speeds[i] * max(0, T - availability[i]) = work``.
    """
    if not speeds:
        raise ValueError("at least one machine is required")
    order = sorted(range(len(speeds)), key=lambda i: availability[i])
    active_speed = 0.0
    remaining = work
    current = availability[order[0]]
    for rank, idx in enumerate(order):
        # Advance from the previous availability date to this one using the
        # machines already active.
        gap = availability[idx] - current
        if gap > 0 and active_speed > 0:
            doable = active_speed * gap
            if doable >= remaining:
                return current + remaining / active_speed
            remaining -= doable
            current = availability[idx]
        else:
            current = max(current, availability[idx])
        active_speed += speeds[idx]
    return current + remaining / active_speed
