"""Vectorized heuristic-scheduler kernels: the per-event python, as array programs.

PRs 5-7 collapsed the LP/replan path, which leaves the *heuristic*
schedulers (MCT/MCT-Div, the priority queues, the Bender heuristics) as the
dominant per-event python at campaign scale: the eligible-machine argmin of
MCT, the water-filling spread of MCT-Div, the plan-horizon scans behind
both, the (priority, job_id) ranking of every list scheduler and the
deadline/pseudo-stretch key computations.  This module extracts those loops
into kernels with the same tier structure as :mod:`repro.lp.kernels`:

* **numpy** (always available): array-programmed implementations; the
  loop-carried kernels (water filling, plan-horizon scan) share the legacy
  loops, exactly like ``scatter_capacity_sys1`` does on the LP side;
* **numba** (``pip install .[jit]``): the loop-carried kernels compiled with
  ``@njit(fastmath=False)`` -- no arithmetic reassociation, so every tier is
  **bit-identical** by construction (enforced by
  ``tests/test_scheduler_kernels.py``).

The tier is chosen once at import time (numba when importable, numpy
otherwise); the same ``REPRO_KERNELS=numpy|numba|legacy`` switch that drives
:mod:`repro.lp.kernels` overrides the choice, and :func:`set_active_tier`
switches it at runtime (used by the equality tests and benchmarks).  The
**legacy** tier keeps the pre-kernel pure-python loops verbatim: it is the
reference every kernel is equality-tested against.

Every kernel preserves the historical float arithmetic operation-for-
operation (same IEEE ops per output element, no reordering), so replacing
the python loops changes *nothing* about results -- schedules, metrics and
campaign record sets are bit-identical across tiers.
"""

from __future__ import annotations

import math
import os

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "KERNEL_NAMES",
    "active_tier",
    "available_tiers",
    "set_active_tier",
    "mct_argmin_completion",
    "water_filling_completion",
    "plan_horizon_scan",
    "rank_by_priority",
    "pseudo_stretch_priorities",
    "expand_deadlines",
]

try:  # pragma: no cover - exercised only on the CI jit leg
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default dependency-light path
    _njit = None
    HAVE_NUMBA = False

#: Names of the dispatchable kernels (the test suite iterates this list so a
#: new kernel cannot land without its cross-tier equality test).
KERNEL_NAMES = (
    "mct_argmin_completion",
    "water_filling_completion",
    "plan_horizon_scan",
    "rank_by_priority",
    "pseudo_stretch_priorities",
    "expand_deadlines",
)


# -- legacy tier: the pre-kernel python, kept verbatim as the reference --------------


def _mct_argmin_completion_legacy(
    available: np.ndarray, cycle_times: np.ndarray, now: float, size: float
) -> tuple[int, float]:
    """The historical champion scan of ``MCTScheduler.on_arrival``."""
    best_index = -1
    best_completion = math.inf
    for i in range(available.size):
        completion = max(available[i], now) + size * cycle_times[i]
        if completion < best_completion - 1e-15:
            best_completion = completion
            best_index = i
    return best_index, float(best_completion)


def _water_filling_completion_legacy(
    work: float, speeds: np.ndarray, availability: np.ndarray
) -> float:
    """The historical sequential water-filling loop of ``MCT-Div``."""
    order = sorted(range(len(speeds)), key=lambda i: availability[i])
    active_speed = 0.0
    remaining = work
    current = availability[order[0]]
    for idx in order:
        # Advance from the previous availability date to this one using the
        # machines already active.
        gap = availability[idx] - current
        if gap > 0 and active_speed > 0:
            doable = active_speed * gap
            if doable >= remaining:
                return float(current + remaining / active_speed)
            remaining -= doable
            current = availability[idx]
        else:
            current = max(current, availability[idx])
        active_speed += speeds[idx]
    return float(current + remaining / active_speed)


def _plan_horizon_scan_legacy(starts: np.ndarray, ends: np.ndarray, time: float) -> float:
    """The historical chained scan of ``PlanBasedScheduler.plan_horizon``."""
    horizon = time
    for i in range(starts.size):
        if ends[i] <= horizon + 1e-12:
            continue
        if starts[i] > horizon + 1e-12:
            break
        horizon = ends[i]
    return float(horizon)


def _rank_by_priority_legacy(priorities: np.ndarray, job_ids: np.ndarray) -> np.ndarray:
    """The historical ``sorted(..., key=(priority, job_id))`` list ranking."""
    order = sorted(range(priorities.size), key=lambda i: (priorities[i], job_ids[i]))
    return np.array(order, dtype=np.int64)


def _pseudo_stretch_priorities_legacy(
    ages: np.ndarray, relative_sizes: np.ndarray, delta: float
) -> np.ndarray:
    """The historical per-job pseudo-stretch keys of ``Bender02Scheduler``."""
    out = np.empty(ages.size, dtype=np.float64)
    for i in range(ages.size):
        if relative_sizes[i] <= math.sqrt(delta):
            out[i] = -(ages[i] / math.sqrt(delta))
        else:
            out[i] = -(ages[i] / delta)
    return out


def _expand_deadlines_legacy(
    releases: np.ndarray, flow_factors: np.ndarray, scale: float
) -> np.ndarray:
    """The historical per-job deadline expansion of ``Bender98Scheduler``."""
    out = np.empty(releases.size, dtype=np.float64)
    for i in range(releases.size):
        out[i] = releases[i] + scale * flow_factors[i]
    return out


# -- numpy tier: array-programmed fallback (always available) ------------------------


def _mct_argmin_completion_numpy(
    available: np.ndarray, cycle_times: np.ndarray, now: float, size: float
) -> tuple[int, float]:
    # The champion scan accepts a machine only when it beats the incumbent by
    # more than 1e-15, a loop-carried chain that is *not* a plain argmin when
    # several completions fall within the tolerance of each other.  But when
    # the minimum wins by more than 1e-15 over every other completion the
    # chain provably ends on it (any earlier champion is beaten by it, and no
    # later candidate can displace the minimum), so the vectorized argmin is
    # exact; any tolerance-band tie falls back to the sequential loop.
    completions = np.maximum(available, now) + size * cycle_times
    if completions.size == 0:
        return -1, math.inf
    best = int(np.argmin(completions))
    value = completions[best]
    if int(np.count_nonzero(completions <= value + 1e-15)) == 1:
        return best, float(value)
    return _mct_argmin_completion_legacy(available, cycle_times, now, size)


def _rank_by_priority_numpy(priorities: np.ndarray, job_ids: np.ndarray) -> np.ndarray:
    # Job ids are unique, so the (priority, job_id) key is total and the
    # lexicographic sort matches the legacy stable tuple sort exactly.
    return np.lexsort((job_ids, priorities)).astype(np.int64, copy=False)


def _pseudo_stretch_priorities_numpy(
    ages: np.ndarray, relative_sizes: np.ndarray, delta: float
) -> np.ndarray:
    # Both branch quotients are computed elementwise and selected, so each
    # output element is the exact division the legacy branch performed.
    sqrt_delta = math.sqrt(delta)
    return -np.where(relative_sizes <= sqrt_delta, ages / sqrt_delta, ages / delta)


def _expand_deadlines_numpy(
    releases: np.ndarray, flow_factors: np.ndarray, scale: float
) -> np.ndarray:
    return releases + scale * flow_factors


# Water filling consumes the remaining work along a loop-carried subtraction
# chain, and the plan-horizon scan chains through the last absorbed segment
# end; vectorizing either would reassociate the arithmetic/control flow, so
# the numpy tier shares the legacy loops (same pattern as
# ``scatter_capacity_sys1`` in ``repro.lp.kernels``) and the win comes from
# the compiled tier.
_water_filling_completion_numpy = _water_filling_completion_legacy
_plan_horizon_scan_numpy = _plan_horizon_scan_legacy


# -- numba tier: the loop-carried kernels, compiled ----------------------------------

if HAVE_NUMBA:  # pragma: no cover - exercised only on the CI jit leg

    @_njit(cache=True, fastmath=False)
    def _mct_argmin_jit_core(
        available: np.ndarray, cycle_times: np.ndarray, now: float, size: float
    ):
        best_index = -1
        best_completion = np.inf
        for i in range(available.size):
            avail = available[i]
            if avail < now:
                avail = now
            completion = avail + size * cycle_times[i]
            if completion < best_completion - 1e-15:
                best_completion = completion
                best_index = i
        return best_index, best_completion

    def _mct_argmin_completion_numba(
        available: np.ndarray, cycle_times: np.ndarray, now: float, size: float
    ) -> tuple[int, float]:
        index, completion = _mct_argmin_jit_core(
            available, cycle_times, float(now), float(size)
        )
        return int(index), float(completion)

    @_njit(cache=True, fastmath=False)
    def _water_filling_jit_core(
        work: float, speeds: np.ndarray, availability: np.ndarray
    ) -> float:
        order = np.argsort(availability, kind="mergesort")
        active_speed = 0.0
        remaining = work
        current = availability[order[0]]
        for r in range(order.size):
            idx = order[r]
            gap = availability[idx] - current
            if gap > 0.0 and active_speed > 0.0:
                doable = active_speed * gap
                if doable >= remaining:
                    return current + remaining / active_speed
                remaining -= doable
                current = availability[idx]
            else:
                current = max(current, availability[idx])
            active_speed += speeds[idx]
        return current + remaining / active_speed

    def _water_filling_completion_numba(
        work: float, speeds: np.ndarray, availability: np.ndarray
    ) -> float:
        return float(_water_filling_jit_core(float(work), speeds, availability))

    @_njit(cache=True, fastmath=False)
    def _plan_horizon_jit_core(starts: np.ndarray, ends: np.ndarray, time: float) -> float:
        horizon = time
        for i in range(starts.size):
            if ends[i] <= horizon + 1e-12:
                continue
            if starts[i] > horizon + 1e-12:
                break
            horizon = ends[i]
        return horizon

    def _plan_horizon_scan_numba(
        starts: np.ndarray, ends: np.ndarray, time: float
    ) -> float:
        return float(_plan_horizon_jit_core(starts, ends, float(time)))

    @_njit(cache=True, fastmath=False)
    def _pseudo_stretch_jit_core(
        ages: np.ndarray, relative_sizes: np.ndarray, delta: float
    ) -> np.ndarray:
        sqrt_delta = math.sqrt(delta)
        out = np.empty(ages.size, dtype=np.float64)
        for i in range(ages.size):
            if relative_sizes[i] <= sqrt_delta:
                out[i] = -(ages[i] / sqrt_delta)
            else:
                out[i] = -(ages[i] / delta)
        return out

    def _pseudo_stretch_priorities_numba(
        ages: np.ndarray, relative_sizes: np.ndarray, delta: float
    ) -> np.ndarray:
        return _pseudo_stretch_jit_core(ages, relative_sizes, float(delta))

    # Priority ranking pivots on np.lexsort (not supported by numba) and the
    # deadline expansion is a pure elementwise array program; the compiled
    # tier shares the numpy forms.
    _rank_by_priority_numba = _rank_by_priority_numpy
    _expand_deadlines_numba = _expand_deadlines_numpy


_TIERS: dict[str, dict[str, object]] = {
    "legacy": {
        "mct_argmin_completion": _mct_argmin_completion_legacy,
        "water_filling_completion": _water_filling_completion_legacy,
        "plan_horizon_scan": _plan_horizon_scan_legacy,
        "rank_by_priority": _rank_by_priority_legacy,
        "pseudo_stretch_priorities": _pseudo_stretch_priorities_legacy,
        "expand_deadlines": _expand_deadlines_legacy,
    },
    "numpy": {
        "mct_argmin_completion": _mct_argmin_completion_numpy,
        "water_filling_completion": _water_filling_completion_numpy,
        "plan_horizon_scan": _plan_horizon_scan_numpy,
        "rank_by_priority": _rank_by_priority_numpy,
        "pseudo_stretch_priorities": _pseudo_stretch_priorities_numpy,
        "expand_deadlines": _expand_deadlines_numpy,
    },
}
if HAVE_NUMBA:  # pragma: no cover - exercised only on the CI jit leg
    _TIERS["numba"] = {
        "mct_argmin_completion": _mct_argmin_completion_numba,
        "water_filling_completion": _water_filling_completion_numba,
        "plan_horizon_scan": _plan_horizon_scan_numba,
        "rank_by_priority": _rank_by_priority_numba,
        "pseudo_stretch_priorities": _pseudo_stretch_priorities_numba,
        "expand_deadlines": _expand_deadlines_numba,
    }


def available_tiers() -> tuple[str, ...]:
    """The kernel tiers importable in this process, fastest last."""
    return tuple(_TIERS)


def _default_tier() -> str:
    forced = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if forced:
        if forced not in _TIERS:
            known = ", ".join(sorted(_TIERS))
            raise ValueError(
                f"REPRO_KERNELS={forced!r} is not an available kernel tier ({known})"
            )
        return forced
    return "numba" if HAVE_NUMBA else "numpy"


_ACTIVE_TIER = _default_tier()


def active_tier() -> str:
    """The kernel tier currently dispatched (``numba`` | ``numpy`` | ``legacy``)."""
    return _ACTIVE_TIER


def set_active_tier(tier: str) -> str:
    """Switch the dispatched kernel tier; returns the previous one.

    Results are bit-identical across tiers by construction -- switching only
    changes speed.  Used by the equality tests and by
    ``bench_campaign.py::bench_campaign_throughput`` to measure the kernel
    win against the ``legacy`` reference.
    """
    global _ACTIVE_TIER
    if tier not in _TIERS:
        known = ", ".join(sorted(_TIERS))
        raise ValueError(f"unknown kernel tier {tier!r} (available: {known})")
    previous = _ACTIVE_TIER
    _ACTIVE_TIER = tier
    return previous


def kernel(name: str, tier: str | None = None):
    """The implementation of kernel ``name`` in ``tier`` (active tier default)."""
    return _TIERS[tier or _ACTIVE_TIER][name]


# -- dispatching entry points (the call sites bind these) ----------------------------


def mct_argmin_completion(
    available: np.ndarray, cycle_times: np.ndarray, now: float, size: float
) -> tuple[int, float]:
    """MCT's champion scan: earliest-completing eligible machine.

    Returns ``(index, completion)`` where ``completion = max(available[i],
    now) + size * cycle_times[i]`` and a candidate only displaces the
    incumbent when it wins by more than the historical 1e-15 tolerance.
    Returns ``(-1, inf)`` on empty input (the caller rejects that case).
    """
    return _TIERS[_ACTIVE_TIER]["mct_argmin_completion"](
        available, cycle_times, float(now), float(size)
    )


def water_filling_completion(
    work: float, speeds: np.ndarray, availability: np.ndarray
) -> float:
    """Earliest common completion date of ``work`` spread over the machines.

    Machine ``i`` becomes available at ``availability[i]`` and then processes
    at ``speeds[i]``; the job completes at the smallest ``T`` such that
    ``sum_i speeds[i] * max(0, T - availability[i]) = work`` -- MCT-Div's
    water-filling sweep in earliest-availability order.
    """
    if speeds.size == 0:
        raise ValueError("at least one machine is required")
    return _TIERS[_ACTIVE_TIER]["water_filling_completion"](
        float(work), speeds, availability
    )


def plan_horizon_scan(starts: np.ndarray, ends: np.ndarray, time: float) -> float:
    """Earliest date >= ``time`` at which a machine's plan leaves it free.

    ``starts``/``ends`` are the machine's planned segments sorted by start;
    the scan chains through every segment overlapping the running horizon
    (1e-12 tolerance), exactly as ``PlanBasedScheduler.plan_horizon`` always
    did.
    """
    return _TIERS[_ACTIVE_TIER]["plan_horizon_scan"](starts, ends, float(time))


def rank_by_priority(priorities: np.ndarray, job_ids: np.ndarray) -> np.ndarray:
    """Rank jobs by ``(priority, job_id)`` ascending; returns int64 positions.

    The ranking of every list scheduler (Section 3's greedy rule): smaller
    keys are more urgent, ties broken by job id.
    """
    return _TIERS[_ACTIVE_TIER]["rank_by_priority"](priorities, job_ids)


def pseudo_stretch_priorities(
    ages: np.ndarray, relative_sizes: np.ndarray, delta: float
) -> np.ndarray:
    """Bender02 priority keys: the *negated* pseudo-stretches :math:`-\\hat S_j(t)`.

    Jobs whose normalized size is <= sqrt(delta) age at rate 1/sqrt(delta),
    larger jobs at 1/delta; larger pseudo-stretch means more urgent, hence
    the negation into PriorityScheduler's smaller-is-urgent convention.
    """
    return _TIERS[_ACTIVE_TIER]["pseudo_stretch_priorities"](
        ages, relative_sizes, float(delta)
    )


def expand_deadlines(
    releases: np.ndarray, flow_factors: np.ndarray, scale: float
) -> np.ndarray:
    """Bender98 deadline table: ``release + scale * flow_factor`` per job.

    ``scale`` is the caller's ``expansion * S*`` product, so each element
    reproduces the historical ``r_j + alpha * S* / w_j`` arithmetic exactly.
    """
    return _TIERS[_ACTIVE_TIER]["expand_deadlines"](releases, flow_factors, float(scale))
