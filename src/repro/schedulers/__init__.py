"""Scheduling strategies.

All eleven strategies evaluated in Section 5 of the paper are implemented,
plus the classical heuristics used in the theory sections:

======================  ==============================================================
``Offline``             Optimal max-stretch via System (1) (Section 4.3.1).
``Online``              On-line heuristic: System (1) + System (2) at each release,
                        SWRPT ordering of terminal jobs inside each interval.
``Online-EDF``          Same LP machinery, per-processor list scheduling ordered by
                        the interval in which each share completes.
``Online-EGDF``         Same LP machinery, single global priority list and the greedy
                        restricted-availability rule of Section 3.
``Online (non-opt.)``   The on-line heuristic without the System (2) re-optimization
                        (used in Figure 3).
``Bender98``            Offline-optimal recomputation at each arrival + EDF with
                        deadlines expanded by sqrt(Delta) [2].
``Bender02``            Pseudo-stretch priority heuristic [3].
``SWRPT``               Shortest weighted remaining processing time.
``SRPT``                Shortest remaining processing time.
``SPT``                 Shortest processing time.
``SWPT``                Smith's ratio rule (identical ordering to SPT for stretch).
``FCFS``                First come first served (optimal for max-flow).
``MCT``                 Minimum completion time, non-divisible, non-preemptive
                        (the production GriPPS policy).
``MCT-Div``             MCT exploiting divisibility (still non-preemptive).
======================  ==============================================================

The on-line LP heuristics additionally accept a *replan policy*
(:mod:`repro.schedulers.policies`) deciding when the LP resolutions run --
``on-arrival`` (paper-faithful), ``batched:D`` or ``threshold:K`` -- and an
``incremental`` toggle selecting the warm-started
:class:`~repro.lp.incremental.ReplanContext` hot path (default) or the
from-scratch resolution of the original heuristic.
"""

from repro.schedulers.base import (
    PlanBasedScheduler,
    PlanSegment,
    PriorityScheduler,
    Scheduler,
)
from repro.schedulers.priority import (
    EDFScheduler,
    FCFSScheduler,
    SPTScheduler,
    SRPTScheduler,
    SWPTScheduler,
    SWRPTScheduler,
)
from repro.schedulers.bender02 import Bender02Scheduler
from repro.schedulers.bender98 import Bender98Scheduler
from repro.schedulers.mct import MCTDivScheduler, MCTScheduler
from repro.schedulers.offline import OfflineScheduler
from repro.schedulers.online_lp import OnlineLPScheduler
from repro.schedulers.policies import (
    BatchedPolicy,
    OnArrivalPolicy,
    ReplanDecision,
    ReplanPolicy,
    ThresholdPolicy,
    available_policies,
    parse_policy,
)
from repro.schedulers.registry import (
    available_schedulers,
    make_scheduler,
    paper_schedulers,
    register_scheduler,
)

__all__ = [
    "Scheduler",
    "PriorityScheduler",
    "PlanBasedScheduler",
    "PlanSegment",
    "FCFSScheduler",
    "SRPTScheduler",
    "SPTScheduler",
    "SWPTScheduler",
    "SWRPTScheduler",
    "EDFScheduler",
    "Bender02Scheduler",
    "Bender98Scheduler",
    "MCTScheduler",
    "MCTDivScheduler",
    "OfflineScheduler",
    "OnlineLPScheduler",
    "ReplanPolicy",
    "ReplanDecision",
    "OnArrivalPolicy",
    "BatchedPolicy",
    "ThresholdPolicy",
    "parse_policy",
    "available_policies",
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    "paper_schedulers",
]
