"""Scheduler base classes.

Three families of schedulers are supported:

* :class:`PriorityScheduler` -- "list" schedulers that maintain a priority
  among active jobs and apply the greedy rule of Section 3 at every decision
  point: the highest-priority job receives *all* the available machines able
  to process it, the next job receives the remaining ones, and so on.  On a
  single machine this is exactly preemptive priority scheduling, which is the
  setting in which SRPT, SWRPT, ... are analysed in the paper.
* :class:`PlanBasedScheduler` -- schedulers that compute an explicit plan
  (per-machine timelines of job segments) at certain events and then simply
  follow it.  The off-line optimal algorithm, the LP-based on-line heuristics
  and the MCT greedy strategies fall in this family.
* Free-form schedulers deriving directly from :class:`Scheduler`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.schedule import Schedule
from repro.simulation.state import Assignment, JobRuntime, SchedulerState
from repro.schedulers import kernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedulers.policies import ReplanPolicy

__all__ = ["Scheduler", "PriorityScheduler", "PlanBasedScheduler", "PlanSegment"]


class Scheduler(ABC):
    """Interface between the simulation engine and a scheduling strategy."""

    #: Human-readable name used in result tables.
    name: str = "scheduler"

    #: Whether the strategy can run under a fault timeline.  Clairvoyant
    #: strategies whose whole-run plan assumes a reliable platform set this
    #: to ``False``; the engine then refuses to pair them with faults
    #: instead of producing silently wrong schedules.
    fault_aware: bool = True

    def reset(self, instance: Instance) -> None:
        """Called once before the simulation starts.

        Off-line strategies (which know the whole instance in advance) build
        their plan here; on-line strategies typically only record the
        instance for later use.
        """

    def on_arrival(self, state: SchedulerState, job: Job) -> None:
        """Called when ``job`` is released (after it was added to ``state``)."""

    def on_arrivals(self, state: SchedulerState, jobs: Sequence[Job]) -> None:
        """Called once per batch of simultaneous releases.

        The engine delivers arrivals in batches (usually of size one); the
        default forwards to :meth:`on_arrival` job by job.  Schedulers whose
        arrival handling is expensive (LP replans) override this to react
        once per batch.
        """
        for job in jobs:
            self.on_arrival(state, job)

    def on_completion(self, state: SchedulerState, job_id: int) -> None:
        """Called when a job completes."""

    def on_availability(
        self, state: SchedulerState, downs: Sequence[int], ups: Sequence[int]
    ) -> None:
        """Called after machine availability changed (fault injection).

        ``downs``/``ups`` are the machine ids that just left/rejoined the
        platform; ``state.down`` already reflects the new availability and
        in-flight work on the failed machines has been re-queued per the
        timeline's loss model.  Stateless schedulers need not react -- their
        next :meth:`assign` reads the filtered availability from the state
        -- but plan-holding strategies must invalidate anything that
        references the transitioned machines.
        """

    def on_idle(self, state: SchedulerState, until: float) -> None:
        """Called when simulated time is about to jump to ``until``.

        The engine fires this exactly once per inter-event gap, just before
        time advances to the next queued event: either no job is active, or
        the current step runs uninterrupted into that event.  Schedulers may
        use the dead time to precompute work for the upcoming event (e.g.
        the LP heuristics speculatively pre-solving the next replan), but
        must not alter the schedule -- the state is read-only here like in
        every other callback, and the wall-clock spent is counted into the
        scheduler overhead.
        """

    def finalize(self, state: SchedulerState) -> None:
        """Called once after the last job completed (the run is over).

        Strategies holding reusable solver state publish it here (e.g. the
        LP heuristics pushing warm-start state into the cross-run solver
        bank).  Must not alter the schedule -- the engine has already
        stopped executing assignments when this fires.
        """

    @abstractmethod
    def assign(self, state: SchedulerState) -> Assignment:
        """Return the machine->job assignment to apply from ``state.time`` on."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class PriorityScheduler(Scheduler):
    """Greedy list scheduling driven by a per-job priority key.

    Subclasses implement :meth:`priority`; lower keys mean higher priority.
    At every decision point the active jobs are sorted by priority and the
    rule of Section 3 is applied: while some processors are idle, pick the
    highest-priority not-yet-served job and give it every available processor
    able to serve it.
    """

    def __init__(self) -> None:
        self.instance: Instance | None = None

    def reset(self, instance: Instance) -> None:
        self.instance = instance

    @abstractmethod
    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        """Priority key of an active job (smaller = more urgent)."""

    def priority_keys(
        self, state: SchedulerState, runtimes: Sequence[JobRuntime]
    ) -> np.ndarray:
        """Priority keys of ``runtimes`` as a float64 array.

        The default evaluates :meth:`priority` job by job; subclasses whose
        key is arrayable override this to build the whole vector in one pass
        (the values must match :meth:`priority` exactly -- the ranking
        kernel consumes them verbatim).
        """
        return np.fromiter(
            (self.priority(state, rt) for rt in runtimes),
            np.float64,
            count=len(runtimes),
        )

    def assign(self, state: SchedulerState) -> Assignment:
        instance = state.instance
        runtimes = state.active_jobs()
        keys = np.asarray(self.priority_keys(state, runtimes), dtype=np.float64)
        job_ids = np.fromiter(
            (rt.job_id for rt in runtimes), np.int64, count=len(runtimes)
        )
        order = kernels.rank_by_priority(keys, job_ids)
        available = state.available_ids()
        mapping: dict[int, int] = {}
        for position in order.tolist():
            if not available:
                break
            runtime = runtimes[position]
            eligible = [
                m for m in instance.eligible_machine_ids(runtime.job_id) if m in available
            ]
            if not eligible:
                continue
            for machine_id in eligible:
                mapping[machine_id] = runtime.job_id
                available.discard(machine_id)
        return Assignment(mapping=mapping)


@dataclass(frozen=True)
class PlanSegment:
    """A planned dedication of one machine to one job over a time interval."""

    machine_id: int
    job_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"plan segment for job {self.job_id} on machine {self.machine_id} "
                f"has non-positive duration"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class PlanBasedScheduler(Scheduler):
    """A scheduler that follows an explicit per-machine plan.

    Subclasses populate the plan by calling :meth:`set_plan`,
    :meth:`extend_plan` or :meth:`clear_plan_from` (typically from
    :meth:`reset` or :meth:`on_arrival`); :meth:`assign` then simply reads
    the plan.

    On-line subclasses may additionally hand a
    :class:`~repro.schedulers.policies.ReplanPolicy` to the constructor and
    implement :meth:`replan` (and, for absorbing policies,
    :meth:`absorb_arrivals`).  The policy then decides, per arrival batch,
    whether to recompute the plan now, wake up later (deferred arrivals cap
    the assignment's ``valid_until``), or splice the new jobs into the
    existing plan cheaply.  Without a policy the historical behaviour is
    unchanged: every arrival is forwarded to :meth:`on_arrival`.
    """

    def __init__(self, policy: "ReplanPolicy | None" = None) -> None:
        self.instance: Instance | None = None
        self._plan: dict[int, list[PlanSegment]] = {}
        #: Per-machine (starts, ends) float64 views of ``_plan``, built lazily
        #: for the plan-horizon kernel and dropped whenever the machine's
        #: segment list changes (every mutation goes through the methods
        #: below, so the cache cannot go stale).
        self._plan_arrays: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.policy = policy
        self._recheck_at: float | None = None

    def reset(self, instance: Instance) -> None:
        self.instance = instance
        self._plan = {m.machine_id: [] for m in instance.platform}
        self._plan_arrays = {}
        self._recheck_at = None
        if self.policy is not None:
            self.policy.reset(instance)

    # -- plan manipulation ---------------------------------------------------------
    def set_plan(self, segments: Iterable[PlanSegment]) -> None:
        """Replace the whole plan."""
        assert self.instance is not None
        self._plan = {m.machine_id: [] for m in self.instance.platform}
        self._plan_arrays = {}
        self.extend_plan(segments)

    def extend_plan(self, segments: Iterable[PlanSegment]) -> None:
        """Append segments to the plan (kept sorted by start time)."""
        for segment in segments:
            per_machine = self._plan.setdefault(segment.machine_id, [])
            per_machine.append(segment)
            self._plan_arrays.pop(segment.machine_id, None)
        for per_machine in self._plan.values():
            per_machine.sort(key=lambda s: s.start)

    def clear_plan_from(self, time: float) -> None:
        """Drop every planned segment that starts at or after ``time``.

        Segments straddling ``time`` are truncated; used by on-line
        strategies that re-plan at each release date.
        """
        for machine_id, per_machine in self._plan.items():
            kept: list[PlanSegment] = []
            for segment in per_machine:
                if segment.end <= time + 1e-12:
                    kept.append(segment)
                elif segment.start < time - 1e-12:
                    kept.append(
                        PlanSegment(
                            machine_id=segment.machine_id,
                            job_id=segment.job_id,
                            start=segment.start,
                            end=time,
                        )
                    )
                # Segments starting after ``time`` are dropped.
            self._plan[machine_id] = kept
        self._plan_arrays = {}

    def plan_segments(self, machine_id: int | None = None) -> list[PlanSegment]:
        """The current plan (for inspection and testing)."""
        if machine_id is not None:
            return list(self._plan.get(machine_id, []))
        return [s for per_machine in self._plan.values() for s in per_machine]

    def plan_horizon(self, machine_id: int, time: float) -> float:
        """Earliest date >= ``time`` at which the machine becomes free in the plan."""
        arrays = self._plan_arrays.get(machine_id)
        if arrays is None:
            per_machine = self._plan.get(machine_id, ())
            count = len(per_machine)
            arrays = (
                np.fromiter((s.start for s in per_machine), np.float64, count=count),
                np.fromiter((s.end for s in per_machine), np.float64, count=count),
            )
            self._plan_arrays[machine_id] = arrays
        return kernels.plan_horizon_scan(arrays[0], arrays[1], time)

    def plan_tail(self, machine_id: int, time: float) -> float:
        """Date at which the machine's *whole* plan is over (>= ``time``).

        Unlike :meth:`plan_horizon` this skips past internal idle gaps, so a
        segment appended at the tail can never overlap planned work (LP plans
        routinely leave gaps between milestone intervals).
        """
        per_machine = self._plan.get(machine_id, [])
        if not per_machine:
            return time
        return max(time, max(segment.end for segment in per_machine))

    # -- policy-driven replanning --------------------------------------------------------
    def replan(self, state: SchedulerState) -> None:
        """Recompute the plan from the current state (policy hook)."""
        raise NotImplementedError(
            f"{type(self).__name__} uses a replan policy but does not implement replan()"
        )

    def absorb_arrivals(self, state: SchedulerState, jobs: Sequence[Job]) -> None:
        """Cheaply splice deferred arrivals into the current plan (policy hook)."""
        raise NotImplementedError(
            f"{type(self).__name__}'s replan policy absorbs arrivals but "
            f"absorb_arrivals() is not implemented"
        )

    def _do_replan(self, state: SchedulerState) -> None:
        self._recheck_at = None
        self.replan(state)
        if self.policy is not None:
            self.policy.notify_replanned(state)

    def on_arrivals(self, state: SchedulerState, jobs: Sequence[Job]) -> None:
        if self.policy is None:
            super().on_arrivals(state, jobs)
            return
        decision = self.policy.on_arrivals(state, jobs, self)
        if decision.replan:
            self._do_replan(state)
            return
        if decision.absorb:
            self.absorb_arrivals(state, jobs)
        if decision.recheck_at is not None:
            self._recheck_at = (
                decision.recheck_at
                if self._recheck_at is None
                else min(self._recheck_at, decision.recheck_at)
            )

    def on_completion(self, state: SchedulerState, job_id: int) -> None:
        if self.policy is None:
            return
        decision = self.policy.on_completion(state, job_id, self)
        if decision.replan:
            self._do_replan(state)

    def on_availability(
        self, state: SchedulerState, downs: Sequence[int], ups: Sequence[int]
    ) -> None:
        """Every availability transition invalidates the plan: recompute now.

        The default drops everything planned from the current instant and
        forces an immediate replan through :meth:`rebuild_after_availability`
        (policies never get to defer this -- a plan referencing a downed
        machine must not survive even one step).
        """
        self.clear_plan_from(state.time)
        self._recheck_at = None
        self.rebuild_after_availability(state, downs, ups)

    def rebuild_after_availability(
        self, state: SchedulerState, downs: Sequence[int], ups: Sequence[int]
    ) -> None:
        """Recompute the plan after a transition (default: full replan)."""
        self._do_replan(state)

    # -- plan following -----------------------------------------------------------------
    def assign(self, state: SchedulerState) -> Assignment:
        if self._recheck_at is not None and state.time >= self._recheck_at - 1e-9:
            # A deferred-replan wake-up date has been reached.
            self._do_replan(state)
        assignment = self.plan_assignment(state)
        if self._recheck_at is not None and (
            assignment.valid_until is None or assignment.valid_until > self._recheck_at
        ):
            assignment.valid_until = self._recheck_at
        return assignment

    def plan_assignment(self, state: SchedulerState) -> Assignment:
        """Read the current plan at ``state.time`` (overridable)."""
        time = state.time
        mapping: dict[int, int] = {}
        breakpoints: list[float] = []
        down = state.down
        for machine_id, per_machine in self._plan.items():
            if down and machine_id in down:
                # Defensive: a downed machine executes nothing, whatever a
                # stale plan says (replans triggered by on_availability make
                # this unreachable in practice).
                continue
            current: PlanSegment | None = None
            upcoming: PlanSegment | None = None
            for segment in per_machine:
                if segment.end <= time + 1e-12:
                    continue
                if not state.is_active(segment.job_id):
                    # The job finished (slightly) earlier than planned; skip
                    # its leftover segments.
                    continue
                if segment.start <= time + 1e-12:
                    current = segment
                else:
                    upcoming = segment
                break_found = current is not None or upcoming is not None
                if break_found:
                    break
            if current is not None:
                mapping[machine_id] = current.job_id
                breakpoints.append(current.end)
            elif upcoming is not None:
                breakpoints.append(upcoming.start)
        valid_until = min(breakpoints) if breakpoints else None
        return Assignment(mapping=mapping, valid_until=valid_until)

    # -- helpers for subclasses --------------------------------------------------------
    @staticmethod
    def segments_from_schedule(schedule: Schedule) -> list[PlanSegment]:
        """Convert a materialized :class:`Schedule` into plan segments."""
        return [
            PlanSegment(
                machine_id=s.machine_id, job_id=s.job_id, start=s.start, end=s.end
            )
            for s in schedule
        ]
