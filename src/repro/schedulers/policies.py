"""Replan policies: *when* should an on-line scheduler recompute its plan?

The paper's on-line heuristics (Section 4.3.2) replan at **every** release
date, and its Section 5.3 overhead study shows that this is exactly where
their cost concentrates.  The policies below factor the "when" out of the
"how": plan-based schedulers delegate the decision to a
:class:`ReplanPolicy` and keep only the plan computation.

Three policies are provided:

* ``on-arrival`` -- replan at every arrival batch (paper-faithful default);
* ``batched:D`` -- open a window of ``D`` seconds at the first deferred
  arrival and replan once per window (arrivals inside the window wait);
  ``D = 0`` degenerates to ``on-arrival`` exactly;
* ``threshold:K`` -- replan only when some newly arrived job could not reach
  a stretch within ``K`` times the last computed optimum by simply queueing
  behind the current plan; otherwise the job is absorbed greedily (MCT-style
  append) without paying an LP resolution.

A policy answers with a :class:`ReplanDecision`; deferred arrivals must
either be absorbed into the current plan (``absorb=True``) or covered by a
wake-up date (``recheck_at``), otherwise they would starve.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.instance import Instance
from repro.core.job import Job
from repro.simulation.state import SchedulerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedulers.base import PlanBasedScheduler

__all__ = [
    "ReplanDecision",
    "ReplanPolicy",
    "OnArrivalPolicy",
    "BatchedPolicy",
    "ThresholdPolicy",
    "parse_policy",
    "available_policies",
]


@dataclass(frozen=True)
class ReplanDecision:
    """Outcome of a policy consultation.

    Attributes
    ----------
    replan:
        Recompute the plan now.
    recheck_at:
        When not replanning: absolute date at which the scheduler must wake
        up and replan (it caps the assignment's ``valid_until``).
    absorb:
        When not replanning: splice the deferred jobs into the existing plan
        with the scheduler's cheap fallback rule instead of leaving them
        waiting.
    """

    replan: bool
    recheck_at: float | None = None
    absorb: bool = False

    def __post_init__(self) -> None:
        if not self.replan and not self.absorb and self.recheck_at is None:
            raise ValueError(
                "a deferring ReplanDecision must absorb the jobs or set recheck_at"
            )


#: Shorthand for the common "replan right now" answer.
_REPLAN = ReplanDecision(replan=True)
_IGNORE = ReplanDecision(replan=False, absorb=True)


class ReplanPolicy(ABC):
    """Decides at which events a plan-based scheduler recomputes its plan."""

    #: Registry key / display name prefix.
    key: str = "abstract"

    def reset(self, instance: Instance) -> None:
        """Called once per simulation, before any event."""

    @abstractmethod
    def on_arrivals(
        self,
        state: SchedulerState,
        jobs: Sequence[Job],
        scheduler: "PlanBasedScheduler",
    ) -> ReplanDecision:
        """Consulted when a batch of jobs is released."""

    def on_completion(
        self, state: SchedulerState, job_id: int, scheduler: "PlanBasedScheduler"
    ) -> ReplanDecision:
        """Consulted when a job completes (default: keep the current plan)."""
        return _IGNORE

    def notify_replanned(self, state: SchedulerState) -> None:
        """Called after every replan, however it was triggered."""

    def describe(self) -> str:
        """Parseable textual form (inverse of :func:`parse_policy`)."""
        return self.key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()!r}>"


class OnArrivalPolicy(ReplanPolicy):
    """Replan at every release date -- the paper's Section 4.3.2 behaviour."""

    key = "on-arrival"

    def on_arrivals(self, state, jobs, scheduler) -> ReplanDecision:
        return _REPLAN


class BatchedPolicy(ReplanPolicy):
    """Replan at most once per ``delta``-second window.

    The window opens at the first arrival that gets deferred; arrivals inside
    the window wait (they are not planned), and the scheduler wakes up at
    window close to run a single replan covering all of them.  ``delta = 0``
    is exactly :class:`OnArrivalPolicy`.
    """

    key = "batched"

    def __init__(self, delta: float):
        if delta < 0:
            raise ValueError(f"batched policy needs a non-negative window, got {delta}")
        self.delta = float(delta)
        self._window_start: float | None = None

    def reset(self, instance: Instance) -> None:
        self._window_start = None

    def on_arrivals(self, state, jobs, scheduler) -> ReplanDecision:
        if self.delta <= 0.0:
            return _REPLAN
        if self._window_start is None:
            self._window_start = state.time
        due = self._window_start + self.delta
        if state.time >= due - 1e-12:
            return _REPLAN
        return ReplanDecision(replan=False, recheck_at=due)

    def notify_replanned(self, state) -> None:
        self._window_start = None

    def describe(self) -> str:
        return f"batched:{self.delta:g}"


class ThresholdPolicy(ReplanPolicy):
    """Replan only when the plan's quality would degrade past a threshold.

    On an arrival batch, each new job's stretch is estimated under the cheap
    fallback of appending it whole behind the machine completing it earliest
    (``scheduler.absorb_arrivals``'s rule, i.e. at the tail of that machine's
    plan).  If every estimate stays within ``degradation`` times the last
    computed optimal max-stretch, the batch is absorbed without an LP
    resolution; otherwise a full replan runs.  Before the first resolution
    there is no reference optimum and the policy always replans.

    For schedulers that keep no plan (the EGDF variant serves jobs through a
    greedy priority rule instead), the per-machine tail is unavailable and
    the estimate falls back to queueing the job behind the *remaining work*
    of all active jobs sharing its eligible machines.
    """

    key = "threshold"

    def __init__(self, degradation: float = 1.5):
        if degradation < 1.0:
            raise ValueError(
                f"threshold policy needs a degradation factor >= 1, got {degradation}"
            )
        self.degradation = float(degradation)

    def on_arrivals(self, state, jobs, scheduler) -> ReplanDecision:
        reference = getattr(scheduler, "last_objective", None)
        if reference is None or reference <= 0:
            return _REPLAN
        allowed = self.degradation * max(reference, 1.0)
        instance = state.instance
        now = state.time
        new_ids = {job.job_id for job in jobs}
        has_plan = bool(scheduler.plan_segments())
        # The batch is estimated *sequentially*, mirroring the absorb rule:
        # earlier batch members occupy the tail (or backlog) the later ones
        # queue behind, otherwise two simultaneous jobs would each be judged
        # against the same free tail and jointly exceed the bound unnoticed.
        tails: dict[int, float] = {}
        absorbed: list[tuple[frozenset[int], float]] = []
        for job in jobs:
            best_machine_id = None
            best_completion = None
            if has_plan:
                for machine in instance.eligible_machines(job.job_id):
                    start = tails.get(
                        machine.machine_id,
                        scheduler.plan_tail(machine.machine_id, now),
                    )
                    completion = start + job.size / machine.speed
                    if best_completion is None or completion < best_completion:
                        best_machine_id, best_completion = machine.machine_id, completion
            else:
                # Plan-less scheduler (EGDF): the job queues behind the
                # remaining work of the active jobs it shares machines with,
                # including earlier members of this batch.
                eligible = frozenset(instance.eligible_machine_ids(job.job_id))
                if eligible:
                    backlog = sum(
                        runtime.remaining
                        for runtime in state.active_jobs()
                        if runtime.job_id not in new_ids
                        and eligible & set(instance.eligible_machine_ids(runtime.job_id))
                    )
                    backlog += sum(
                        size for banks, size in absorbed if eligible & banks
                    )
                    speed = instance.aggregate_speed(job.job_id)
                    best_completion = now + (backlog + job.size) / speed
                    absorbed.append((eligible, job.size))
            if best_completion is None:
                return _REPLAN
            stretch = (best_completion - job.release) / instance.ideal_time(job.job_id)
            if stretch > allowed:
                return _REPLAN
            if best_machine_id is not None:
                tails[best_machine_id] = best_completion
        return ReplanDecision(replan=False, absorb=True)

    def describe(self) -> str:
        return f"threshold:{self.degradation:g}"


def available_policies() -> list[str]:
    """The recognized policy spec forms."""
    return ["on-arrival", "batched:<seconds>", "threshold[:<factor>]"]


def parse_policy(spec: "str | ReplanPolicy") -> ReplanPolicy:
    """Turn a textual policy spec into a fresh :class:`ReplanPolicy`.

    Accepted forms: ``"on-arrival"``, ``"batched:<seconds>"`` and
    ``"threshold"`` / ``"threshold:<factor>"``.  A :class:`ReplanPolicy`
    instance is passed through unchanged.
    """
    if isinstance(spec, ReplanPolicy):
        return spec
    text = str(spec).strip().lower()
    head, _, arg = text.partition(":")
    try:
        if head == "on-arrival" and not arg:
            return OnArrivalPolicy()
        if head == "batched" and arg:
            return BatchedPolicy(float(arg))
        if head == "threshold":
            return ThresholdPolicy(float(arg)) if arg else ThresholdPolicy()
    except ValueError as exc:
        if "policy" in str(exc):
            raise
        raise ValueError(f"malformed replan policy spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown replan policy {spec!r}; expected one of {available_policies()}"
    )
