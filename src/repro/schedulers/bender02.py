"""The Bender, Muthukrishnan & Rajaraman 2002 pseudo-stretch heuristic [3].

At every decision point the heuristic schedules the jobs by *decreasing*
pseudo-stretch

.. math::

   \\hat S_j(t) = \\begin{cases}
       (t - r_j)/\\sqrt{\\Delta} & \\text{if } 1 \\le p_j \\le \\sqrt{\\Delta},\\\\
       (t - r_j)/\\Delta         & \\text{if } \\sqrt{\\Delta} < p_j \\le \\Delta,
   \\end{cases}

where job sizes are normalized so that the smallest size is 1 and
:math:`\\Delta` is the largest-to-smallest size ratio.  The original
algorithm preempts the running job whenever a new job arrives, which is
exactly when our simulation engine re-evaluates priorities.  The heuristic is
:math:`O(\\sqrt{\\Delta})`-competitive for max-stretch but, as Section 5.3
shows, far from the LP-based heuristics in practice.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.instance import Instance
from repro.simulation.state import JobRuntime, SchedulerState
from repro.schedulers import kernels
from repro.schedulers.base import PriorityScheduler

__all__ = ["Bender02Scheduler"]


class Bender02Scheduler(PriorityScheduler):
    """Pseudo-stretch priority scheduling.

    Parameters
    ----------
    delta_mode:
        ``"instance"`` (default) computes :math:`\\Delta` and the size
        normalization from the whole instance, as if the size range were
        known a priori (the setting of the competitive analysis in [3]);
        ``"observed"`` recomputes them from the jobs released so far, which
        is the only information a truly on-line scheduler has.
    """

    name = "Bender02"

    def __init__(self, *, delta_mode: str = "instance"):
        super().__init__()
        if delta_mode not in ("instance", "observed"):
            raise ValueError(f"unknown delta_mode {delta_mode!r}")
        self.delta_mode = delta_mode
        self._min_size = 1.0
        self._delta = 1.0

    def reset(self, instance: Instance) -> None:
        super().reset(instance)
        if self.delta_mode == "instance" and len(instance.jobs) > 0:
            sizes = [job.size for job in instance.jobs]
            self._min_size = min(sizes)
            self._delta = max(sizes) / min(sizes)
        else:
            self._min_size = 1.0
            self._delta = 1.0

    def on_arrival(self, state: SchedulerState, job) -> None:
        if self.delta_mode == "observed":
            sizes = [state.instance.job(j).size for j in state.released_ids]
            self._min_size = min(sizes)
            self._delta = max(sizes) / min(sizes)

    def pseudo_stretch(self, state: SchedulerState, runtime: JobRuntime) -> float:
        """:math:`\\hat S_j(t)` at the current simulation time."""
        delta = max(self._delta, 1.0)
        relative_size = runtime.job.size / self._min_size
        age = state.time - runtime.job.release
        if relative_size <= math.sqrt(delta):
            return age / math.sqrt(delta)
        return age / delta

    def priority(self, state: SchedulerState, runtime: JobRuntime) -> float:
        # Larger pseudo-stretch = more urgent; PriorityScheduler treats
        # smaller keys as higher priority, hence the negation.
        return -self.pseudo_stretch(state, runtime)

    def priority_keys(
        self, state: SchedulerState, runtimes: Sequence[JobRuntime]
    ) -> np.ndarray:
        delta = max(self._delta, 1.0)
        min_size = self._min_size
        now = state.time
        count = len(runtimes)
        ages = np.fromiter(
            (now - rt.job.release for rt in runtimes), np.float64, count=count
        )
        relative_sizes = np.fromiter(
            (rt.job.size / min_size for rt in runtimes), np.float64, count=count
        )
        return kernels.pseudo_stretch_priorities(ages, relative_sizes, delta)
