"""Typed option enums for the knobs that accumulated as bare strings.

The experiment surface grew a handful of string/bool toggles over time --
``--state-bank on|off``, ``--speculate on|off``, ``dispatch="group"|"task"``,
``--solver-backend scipy|highs|auto`` -- each validated ad hoc at its own
entry point.  This module normalizes them into enums with one shared
coercion rule and one shared ``argparse`` helper:

* every enum subclasses :class:`OptionEnum` (a ``str`` mixin, so members
  compare equal to their spelling, serialize to JSON as plain strings and
  pass through existing ``== "group"``-style checks unchanged);
* :meth:`OptionEnum.coerce` turns user input into a member, accepting the
  canonical spellings silently and the *legacy* spellings (``true``/``yes``
  for ``on``, ...) with a :class:`DeprecationWarning`;
* :func:`enum_option` builds the ``add_argument`` keywords so every CLI
  toggle parses, validates and displays its choices the same way.
"""

from __future__ import annotations

import warnings
from enum import Enum
from typing import Any, Mapping

__all__ = [
    "OptionEnum",
    "OnOff",
    "SolverBackendChoice",
    "DispatchMode",
    "enum_option",
]


class OptionEnum(str, Enum):
    """Base class for the string-valued option enums.

    Members *are* their canonical spelling (``str(OnOff.ON) == "on"``), so
    call sites that historically compared or stored raw strings keep working
    after the migration to typed values.
    """

    # str's __str__/__format__, not Enum's: f"{OnOff.ON}" must be "on" on
    # every supported Python (3.11's StrEnum does this, 3.10 has no StrEnum).
    __str__ = str.__str__
    __format__ = str.__format__

    @classmethod
    def _legacy_aliases(cls) -> "Mapping[str, OptionEnum]":
        """Deprecated spellings still accepted (with a warning)."""
        return {}

    @classmethod
    def coerce(cls, value: Any, *, param: str | None = None) -> "OptionEnum":
        """Normalize ``value`` into a member of this enum.

        Members pass through; canonical spellings (case-insensitively) map
        silently; legacy spellings map with a :class:`DeprecationWarning`;
        anything else raises :class:`ValueError` naming the valid choices.
        """
        if isinstance(value, cls):
            return value
        label = param or cls.__name__
        text = str(value).strip().lower()
        try:
            return cls(text)
        except ValueError:
            pass
        alias = cls._legacy_aliases().get(text)
        if alias is not None:
            warnings.warn(
                f"{label}={value!r} is deprecated; use {alias.value!r}",
                DeprecationWarning,
                stacklevel=3,
            )
            return alias
        valid = ", ".join(repr(m.value) for m in cls)
        raise ValueError(f"{label} must be one of {valid} (got {value!r})")


class OnOff(OptionEnum):
    """A boolean toggle spelled ``on``/``off`` (``--state-bank``, ``--speculate``).

    Truthiness follows the toggle (``bool(OnOff.OFF) is False``), so the
    member can replace a plain bool anywhere.
    """

    ON = "on"
    OFF = "off"

    def __bool__(self) -> bool:
        return self is OnOff.ON

    @classmethod
    def from_bool(cls, value: bool) -> "OnOff":
        return cls.ON if value else cls.OFF

    @classmethod
    def coerce(cls, value: Any, *, param: str | None = None) -> "OnOff":
        if isinstance(value, bool):
            return cls.from_bool(value)
        return super().coerce(value, param=param)  # type: ignore[return-value]

    @classmethod
    def _legacy_aliases(cls) -> "Mapping[str, OnOff]":
        return {
            "true": cls.ON,
            "yes": cls.ON,
            "1": cls.ON,
            "enabled": cls.ON,
            "false": cls.OFF,
            "no": cls.OFF,
            "0": cls.OFF,
            "disabled": cls.OFF,
        }


class SolverBackendChoice(OptionEnum):
    """LP solver backend selector (``scipy`` | ``highs`` | ``auto``).

    Values mirror :data:`repro.lp.backends.BACKEND_CHOICES`; the member is a
    ``str`` and is handed to :func:`repro.lp.backends.make_backend` as-is.
    """

    SCIPY = "scipy"
    HIGHS = "highs"
    AUTO = "auto"

    @classmethod
    def _legacy_aliases(cls) -> "Mapping[str, SolverBackendChoice]":
        return {
            "linprog": cls.SCIPY,  # historical name of the one-shot path
            "highspy": cls.HIGHS,  # the binding, not the backend
            "default": cls.AUTO,
        }


class DispatchMode(OptionEnum):
    """Campaign dispatch granularity (``group`` | ``task``)."""

    GROUP = "group"
    TASK = "task"

    @classmethod
    def _legacy_aliases(cls) -> "Mapping[str, DispatchMode]":
        return {
            "grouped": cls.GROUP,
            "per-task": cls.TASK,
            "tasks": cls.TASK,
        }


def enum_option(
    enum_cls: "type[OptionEnum]",
    default: Any,
    *,
    param: str | None = None,
) -> dict[str, Any]:
    """``argparse.add_argument`` keywords for an enum-valued option.

    One helper, every toggle: input goes through :meth:`OptionEnum.coerce`
    (so legacy spellings keep working, with a deprecation warning), the
    ``choices`` list shows the canonical spellings, and the parsed value is
    always an enum member.
    """

    def parse(text: str) -> OptionEnum:
        try:
            return enum_cls.coerce(text, param=param)
        except ValueError as exc:
            # argparse reports the type error with its own framing; keep ours.
            raise ValueError(str(exc)) from None

    return {
        "type": parse,
        "choices": tuple(enum_cls),
        "default": enum_cls.coerce(default, param=param),
        "metavar": "|".join(m.value for m in enum_cls),
    }
