"""Theorem 1: sum-based and max-based objectives are mutually exclusive.

The proof exhibits the following instance: a job of size :math:`\\Delta`
released at time 0, followed by ``k`` unit jobs released one per time unit.
Two reference schedules matter:

* the *sum-friendly* schedule processes every unit job at its release date
  and the large job last; its sum-stretch is :math:`(1 + k/\\Delta) + k` and
  its max-stretch :math:`1 + k/\\Delta` -- the large job starves as ``k``
  grows;
* the *max-friendly* schedule processes the large job first; every unit job
  is then delayed by at most :math:`\\Delta`, so the max-stretch is at most
  :math:`1 + \\Delta` independently of ``k``, while the sum-stretch grows
  like :math:`k(1 + \\Delta)`.

Any on-line algorithm with a non-trivial competitive ratio for the
sum-stretch must behave like the first schedule (Theorem 1), so its
max-stretch relative to the optimum grows like
:math:`(\\Delta + k)/(\\Delta(\\Delta+1))`, unbounded in ``k``.  The
:func:`starvation_analysis` helper simulates any set of schedulers on the
instance and reports where each one lands between the two reference points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.simulation.engine import simulate
from repro.schedulers.registry import make_scheduler
from repro.workload.adversarial import starvation_instance

__all__ = ["StarvationReport", "starvation_reference_metrics", "starvation_analysis"]


@dataclass(frozen=True)
class StarvationReport:
    """Reference values and per-scheduler measurements on the Theorem 1 instance."""

    delta: float
    n_unit_jobs: int
    #: Sum- and max-stretch of the sum-friendly reference schedule.
    sum_friendly_sum_stretch: float
    sum_friendly_max_stretch: float
    #: Sum- and max-stretch of the max-friendly (large job first) schedule.
    max_friendly_sum_stretch: float
    max_friendly_max_stretch: float
    #: Per-scheduler measured metrics: name -> (max_stretch, sum_stretch).
    measured: dict[str, tuple[float, float]]

    @property
    def max_stretch_blowup(self) -> float:
        """The ratio the proof exhibits: (Delta + k) / (Delta (Delta + 1))."""
        return (self.delta + self.n_unit_jobs) / (self.delta * (self.delta + 1.0))


def starvation_reference_metrics(delta: float, n_unit_jobs: int) -> dict[str, float]:
    """Closed-form metrics of the two reference schedules of the proof."""
    k = float(n_unit_jobs)
    return {
        "sum_friendly_sum_stretch": (1.0 + k / delta) + k,
        "sum_friendly_max_stretch": 1.0 + k / delta,
        # Large job first: unit job released at t completes at Delta + (t+1)
        # (they queue behind each other once the large job is done), so its
        # stretch is Delta + 1; the large job has stretch 1.
        "max_friendly_sum_stretch": 1.0 + k * (1.0 + delta),
        "max_friendly_max_stretch": 1.0 + delta,
    }


def starvation_analysis(
    delta: float,
    n_unit_jobs: int,
    scheduler_keys: Iterable[str] = ("srpt", "swrpt", "fcfs", "offline", "online"),
) -> StarvationReport:
    """Simulate schedulers on the Theorem 1 instance and compare to the references.

    Note that the max-friendly reference above assumes :math:`\\Delta \\ge k`
    (all unit jobs are released before the large job completes); for larger
    ``k`` it remains an upper bound on the optimal max-stretch used by the
    proof's ratio.
    """
    instance = starvation_instance(delta, n_unit_jobs)
    refs = starvation_reference_metrics(delta, n_unit_jobs)
    measured: dict[str, tuple[float, float]] = {}
    for key in scheduler_keys:
        result = simulate(instance, make_scheduler(key))
        measured[key] = (result.max_stretch, result.sum_stretch)
    return StarvationReport(
        delta=delta,
        n_unit_jobs=n_unit_jobs,
        sum_friendly_sum_stretch=refs["sum_friendly_sum_stretch"],
        sum_friendly_max_stretch=refs["sum_friendly_max_stretch"],
        max_friendly_sum_stretch=refs["max_friendly_sum_stretch"],
        max_friendly_max_stretch=refs["max_friendly_max_stretch"],
        measured=measured,
    )
