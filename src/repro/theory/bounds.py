"""Theorem 2: a lower bound on the competitiveness of SWRPT for sum-stretch.

Appendix A of the paper constructs, for every :math:`\\varepsilon > 0`, an
instance on which the sum-stretch achieved by SWRPT is at least
:math:`(2 - \\varepsilon)` times the sum-stretch achieved by SRPT (and hence
at least that multiple of the optimal sum-stretch).  This module provides

* the closed-form sum-stretch values of SRPT and SWRPT on that instance
  (:func:`predicted_srpt_sum_stretch`, :func:`predicted_swrpt_sum_stretch`),
  taken directly from the proof, and
* :func:`swrpt_competitive_gap`, which builds the instance, simulates both
  heuristics with the library's engine, and reports simulated and predicted
  values side by side.  The simulated ratio converges to :math:`2 -
  \\varepsilon` as the length ``l`` of the unit-job train grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.engine import simulate
from repro.schedulers.priority import SRPTScheduler, SWRPTScheduler
from repro.workload.adversarial import (
    SWRPTLowerBoundParameters,
    swrpt_lower_bound_instance,
    swrpt_lower_bound_parameters,
)

__all__ = [
    "SWRPTBoundReport",
    "predicted_srpt_sum_stretch",
    "predicted_swrpt_sum_stretch",
    "swrpt_competitive_gap",
]


def _total_work(params: SWRPTLowerBoundParameters, n_unit_jobs: int) -> float:
    """:math:`t_f`: the sum of all job sizes of the construction."""
    n, k = params.n, params.k
    total = sum(2.0 ** (2.0 ** (n - j)) for j in range(0, n + 1))
    total += sum(2.0 ** (2.0 ** (-j)) for j in range(1, k + 1))
    total += float(n_unit_jobs)
    return total


def predicted_srpt_sum_stretch(epsilon: float, n_unit_jobs: int) -> float:
    """Sum-stretch of SRPT on the Theorem 2 instance (closed form).

    From the proof: every job has stretch 1 except :math:`J_1`, whose
    completion is postponed to the very end of the schedule.  The instance
    contains :math:`(n+1) + k + l` jobs, so

    .. math:: (n + k + l) + \\frac{t_f - (2^{2^n} - 2^{2^{n-2}})}{2^{2^{n-1}}}.

    (The expression printed in Appendix A of the paper reads ``n + k + l - 1``
    for the first term; it omits the unit stretch of one of the jobs of the
    cascade, an off-by-one that is immaterial to the asymptotic ratio.  The
    value returned here matches the constructed instance exactly and is
    verified against simulation in the test suite.)
    """
    params = swrpt_lower_bound_parameters(epsilon)
    n = params.n
    tf = _total_work(params, n_unit_jobs)
    r1 = 2.0 ** (2.0 ** n) - 2.0 ** (2.0 ** (n - 2))
    p1 = 2.0 ** (2.0 ** (n - 1))
    return n + params.k + n_unit_jobs + (tf - r1) / p1


def predicted_swrpt_sum_stretch(epsilon: float, n_unit_jobs: int) -> float:
    """Sum-stretch of SWRPT on the Theorem 2 instance (closed form).

    From the proof: :math:`J_0` is stretched over the whole schedule,
    :math:`J_1` has stretch 1, and every other job is delayed by
    :math:`\\alpha`:

    .. math::

       n + k + l(1+\\alpha) + \\frac{t_f}{2^{2^n}}
       + \\alpha \\sum_{j=2}^{n+k} \\frac{1}{2^{2^{n-j}}}.

    (As for :func:`predicted_srpt_sum_stretch`, the constant term is one unit
    larger than the expression printed in the paper's Appendix A -- the
    per-job accounting there drops one unit stretch -- which does not affect
    the asymptotic ratio.  The value returned here matches simulation.)
    """
    params = swrpt_lower_bound_parameters(epsilon)
    n, k, alpha = params.n, params.k, params.alpha
    tf = _total_work(params, n_unit_jobs)
    tail = sum(1.0 / (2.0 ** (2.0 ** (n - j))) for j in range(2, n + k + 1))
    return n + k + n_unit_jobs * (1.0 + alpha) + tf / (2.0 ** (2.0 ** n)) + alpha * tail


@dataclass(frozen=True)
class SWRPTBoundReport:
    """Simulated and predicted sum-stretch values on the Theorem 2 instance."""

    epsilon: float
    n_unit_jobs: int
    parameters: SWRPTLowerBoundParameters
    srpt_sum_stretch: float
    swrpt_sum_stretch: float
    predicted_srpt: float
    predicted_swrpt: float

    @property
    def ratio(self) -> float:
        """Simulated SWRPT / SRPT sum-stretch ratio (lower bound on SWRPT's gap)."""
        return self.swrpt_sum_stretch / self.srpt_sum_stretch

    @property
    def predicted_ratio(self) -> float:
        """The ratio predicted by the closed forms of the proof."""
        return self.predicted_swrpt / self.predicted_srpt

    @property
    def target(self) -> float:
        """The bound :math:`2 - \\varepsilon` the ratio approaches."""
        return 2.0 - self.epsilon


def swrpt_competitive_gap(epsilon: float, n_unit_jobs: int) -> SWRPTBoundReport:
    """Build the Theorem 2 instance and measure the SWRPT / SRPT sum-stretch gap.

    The instance is simulated on a single unit-speed machine, which is the
    model of the proof; by Lemma 1 the same gap arises on any uniform
    divisible platform.
    """
    params = swrpt_lower_bound_parameters(epsilon)
    instance = swrpt_lower_bound_instance(epsilon, n_unit_jobs)
    srpt = simulate(instance, SRPTScheduler())
    swrpt = simulate(instance, SWRPTScheduler())
    return SWRPTBoundReport(
        epsilon=epsilon,
        n_unit_jobs=n_unit_jobs,
        parameters=params,
        srpt_sum_stretch=srpt.sum_stretch,
        swrpt_sum_stretch=swrpt.sum_stretch,
        predicted_srpt=predicted_srpt_sum_stretch(epsilon, n_unit_jobs),
        predicted_swrpt=predicted_swrpt_sum_stretch(epsilon, n_unit_jobs),
    )
