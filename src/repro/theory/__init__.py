"""Numerical companions to the theoretical results of the paper.

* :mod:`repro.theory.bounds` -- Theorem 2: SWRPT is not
  :math:`(2-\\varepsilon)`-competitive for sum-stretch.  Provides the
  closed-form sum-stretch predictions of Appendix A and a simulation-based
  verification of the bound.
* :mod:`repro.theory.starvation` -- Theorem 1: sum-based and max-based
  objectives cannot be approximated simultaneously.  Provides the reference
  schedules of the proof and a demonstration harness showing the starvation
  of the large job under sum-oriented heuristics.
"""

from repro.theory.bounds import (
    SWRPTBoundReport,
    predicted_srpt_sum_stretch,
    predicted_swrpt_sum_stretch,
    swrpt_competitive_gap,
)
from repro.theory.starvation import (
    StarvationReport,
    starvation_analysis,
    starvation_reference_metrics,
)

__all__ = [
    "SWRPTBoundReport",
    "predicted_srpt_sum_stretch",
    "predicted_swrpt_sum_stretch",
    "swrpt_competitive_gap",
    "StarvationReport",
    "starvation_reference_metrics",
    "starvation_analysis",
]
