"""Data model for the max-stretch linear programs.

The LP layer does not work on :class:`~repro.core.instance.Instance` objects
directly, for two reasons:

1. **Machine aggregation.**  In the divisible model without per-job
   parallelism bounds, machines hosting the same databank set are mutually
   interchangeable; aggregating them into a single *resource* (speeds add)
   keeps the LPs small without changing feasibility.  The aggregation is the
   :meth:`~repro.core.platform.Platform.capability_classes` decomposition.
2. **On-line re-optimization.**  When the on-line heuristic re-solves the
   problem at a release date, the jobs' *remaining* works and earliest start
   dates (the current time) differ from their original sizes and release
   dates, while deadlines are still anchored at the original release dates.
   The :class:`LPJob` record carries both.

The deadline of job :math:`J_j` for objective value :math:`\\mathcal{F}` is

.. math:: \\bar d_j(\\mathcal{F}) = r_j + \\mathcal{F}\\cdot f_j

where ``f_j`` (:attr:`LPJob.flow_factor`) is :math:`1/w_j`; for the stretch,
``f_j`` is the job's ideal time on the platform, so that a max-stretch of 1
gives every job exactly its ideal time after release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.lp import kernels

__all__ = [
    "Affine",
    "Resource",
    "LPJob",
    "JobTable",
    "MaxStretchProblem",
    "problem_from_instance",
    "build_job_table",
    "build_resources",
    "build_eligibility",
]


@dataclass(frozen=True)
class Affine:
    """An affine function of the objective value: ``const + coef * F``."""

    const: float
    coef: float = 0.0

    def at(self, objective: float) -> float:
        """Evaluate the function at objective value ``objective``."""
        return self.const + self.coef * objective

    def __sub__(self, other: "Affine") -> "Affine":
        return Affine(self.const - other.const, self.coef - other.coef)

    def __add__(self, other: "Affine") -> "Affine":
        return Affine(self.const + other.const, self.coef + other.coef)


@dataclass(frozen=True)
class Resource:
    """An aggregated computing resource (capability class).

    Parameters
    ----------
    index:
        Position of the resource in the problem's resource tuple.
    speed:
        Aggregate speed (work units per second) of the member machines.
    machine_ids:
        Physical machines backing this resource (used when materializing the
        LP allocation into per-machine work slices).
    databanks:
        Databanks hosted by the member machines (informational).
    """

    index: int
    speed: float
    machine_ids: tuple[int, ...]
    databanks: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ModelError(f"resource {self.index} has non-positive speed {self.speed}")
        if not self.machine_ids:
            raise ModelError(f"resource {self.index} has no member machine")


@dataclass(frozen=True)
class LPJob:
    """A job as seen by the LP layer.

    Parameters
    ----------
    job_id:
        Identifier in the originating instance.
    earliest_start:
        Earliest date at which (remaining) work may be processed.  Equals the
        release date in the off-line problem and the current time in on-line
        re-optimizations.
    remaining_work:
        Work still to be executed (original size off-line).
    release:
        Original release date :math:`r_j`, anchoring the deadline.
    flow_factor:
        :math:`1/w_j`; the deadline is ``release + F * flow_factor``.
    resources:
        Indices of the resources able to process this job.
    """

    job_id: int
    earliest_start: float
    remaining_work: float
    release: float
    flow_factor: float
    resources: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.remaining_work <= 0:
            raise ModelError(f"job {self.job_id} has non-positive remaining work")
        if self.flow_factor <= 0:
            raise ModelError(f"job {self.job_id} has non-positive flow factor")
        if self.earliest_start < self.release - 1e-12:
            raise ModelError(
                f"job {self.job_id} has earliest_start {self.earliest_start} "
                f"before its release {self.release}"
            )
        if not self.resources:
            raise ModelError(f"job {self.job_id} has no eligible resource")

    def deadline(self, objective: float) -> float:
        """:math:`\\bar d_j(F) = r_j + F\\,f_j`."""
        return self.release + objective * self.flow_factor

    def deadline_affine(self) -> Affine:
        """The deadline as an :class:`Affine` function of the objective."""
        return Affine(self.release, self.flow_factor)

    def start_affine(self) -> Affine:
        """The earliest start as a (constant) :class:`Affine` function."""
        return Affine(self.earliest_start, 0.0)


@dataclass(frozen=True)
class MaxStretchProblem:
    """A complete max weighted flow minimization problem."""

    resources: tuple[Resource, ...]
    jobs: tuple[LPJob, ...]

    def __post_init__(self) -> None:
        for idx, res in enumerate(self.resources):
            if res.index != idx:
                raise ModelError("resource indices must match their position")
        known = set(range(len(self.resources)))
        for job in self.jobs:
            unknown = set(job.resources) - known
            if unknown:
                raise ModelError(f"job {job.job_id} references unknown resources {unknown}")

    # -- lookups --------------------------------------------------------------
    def job_by_id(self, job_id: int) -> LPJob:
        """The job with identifier ``job_id`` (cached id -> job map, O(1))."""
        table = self.__dict__.get("_by_id")
        if table is None:
            table = {job.job_id: job for job in self.jobs}
            # Frozen dataclass: stash derived lookups directly in the
            # instance dict (pure caches, invisible to equality/hashing).
            object.__setattr__(self, "_by_id", table)
        return table[job_id]

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_resources(self) -> int:
        return len(self.resources)

    # -- cached arrays ---------------------------------------------------------
    def resource_speeds(self) -> np.ndarray:
        """Per-resource aggregate speeds as a cached float64 array."""
        speeds = self.__dict__.get("_speeds")
        if speeds is None:
            speeds = np.fromiter(
                (r.speed for r in self.resources), dtype=np.float64, count=len(self.resources)
            )
            object.__setattr__(self, "_speeds", speeds)
        return speeds

    def remaining_works(self) -> np.ndarray:
        """Per-job remaining works (job order) as a cached float64 array."""
        works = self.__dict__.get("_works")
        if works is None:
            works = np.fromiter(
                (j.remaining_work for j in self.jobs), dtype=np.float64, count=len(self.jobs)
            )
            object.__setattr__(self, "_works", works)
        return works

    def _eligible_speeds(self) -> np.ndarray:
        """Per-job total eligible speed (job order), computed once."""
        espeeds = self.__dict__.get("_eligible")
        if espeeds is None:
            espeeds = np.fromiter(
                (self.eligible_speed(job) for job in self.jobs),
                dtype=np.float64,
                count=len(self.jobs),
            )
            object.__setattr__(self, "_eligible", espeeds)
        return espeeds

    # -- bounds ---------------------------------------------------------------
    def eligible_speed(self, job: LPJob) -> float:
        """Total speed of the resources able to process ``job``.

        Eligibility sets repeat heavily (one per databank), so each distinct
        resource tuple is summed once and memoized.
        """
        memo = self.__dict__.get("_espeed_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_espeed_memo", memo)
        total = memo.get(job.resources)
        if total is None:
            total = float(self.resource_speeds()[list(job.resources)].sum())
            memo[job.resources] = total
        return total

    def objective_lower_bound(self) -> float:
        """A valid lower bound on the optimal maximum weighted flow.

        Even alone in the system, job ``j`` cannot complete before
        ``earliest_start + remaining / eligible_speed``; its weighted flow is
        then at least ``(that - release) / flow_factor``.
        """
        if not self.jobs:
            return 0.0
        starts, releases, factors = self._job_vectors()
        completions = starts + self.remaining_works() / self._eligible_speeds()
        return float(((completions - releases) / factors).max())

    def objective_upper_bound(self) -> float:
        """A valid upper bound on the optimal maximum weighted flow.

        Derived from the trivial schedule that waits for the last earliest
        start date and then processes the jobs one after another, each on its
        own eligible resource set.
        """
        if not self.jobs:
            return 0.0
        starts, releases, factors = self._job_vectors()
        horizon = float(starts.max())
        horizon += float((self.remaining_works() / self._eligible_speeds()).sum())
        bound = float(((horizon - releases) / factors).max())
        # Guard against degenerate single-job cases where lower == upper.
        return max(bound, self.objective_lower_bound())

    def job_vectors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached (earliest_start, release, flow_factor) arrays in job order.

        On the replan fast path these are seeded directly by the
        :func:`repro.lp.kernels.active_jobs_delta` kernel instead of being
        rebuilt from the job dataclasses.
        """
        vectors = self.__dict__.get("_job_vectors_cache")
        if vectors is None:
            n = len(self.jobs)
            vectors = (
                np.fromiter((j.earliest_start for j in self.jobs), dtype=np.float64, count=n),
                np.fromiter((j.release for j in self.jobs), dtype=np.float64, count=n),
                np.fromiter((j.flow_factor for j in self.jobs), dtype=np.float64, count=n),
            )
            object.__setattr__(self, "_job_vectors_cache", vectors)
        return vectors

    # Backwards-compatible private alias (pre-kernel name).
    _job_vectors = job_vectors


def build_resources(instance: Instance) -> tuple[Resource, ...]:
    """The LP resource tuple: one aggregated resource per capability class."""
    return tuple(
        Resource(
            index=i,
            speed=cls.aggregate_speed,
            machine_ids=cls.machine_ids,
            databanks=cls.databanks,
        )
        for i, cls in enumerate(instance.platform.capability_classes())
    )


def build_eligibility(
    instance: Instance, resources: Sequence[Resource]
) -> dict[str | None, tuple[int, ...]]:
    """``databank -> eligible resource indices`` for every databank in use."""
    eligibility: dict[str | None, tuple[int, ...]] = {}
    for job in instance.jobs:
        if job.databank not in eligibility:
            eligibility[job.databank] = tuple(
                r.index
                for r in resources
                if job.databank is None or job.databank in r.databanks
            )
    return eligibility


@dataclass(frozen=True)
class JobTable:
    """Array-backed per-job invariants for the on-line replan fast path.

    One row per instance job, in instance order (which pins the LP job and
    column order): ``(job_id, release, size, flow_factor, eligible resource
    indices)``.  Releases, sizes, flow factors (the stretch weights, i.e.
    the jobs' ideal times) and eligibility never change during a simulation,
    so the :class:`~repro.lp.incremental.ReplanContext` builds the table
    once and every replan's :func:`problem_from_instance` call skips the
    weight and eligibility recomputation entirely.
    """

    rows: tuple[tuple[int, float, float, float, tuple[int, ...]], ...]

    def arrays(self) -> tuple[list[int], np.ndarray, np.ndarray, tuple[tuple[int, ...], ...]]:
        """Cached column views of the table for the replan delta kernel.

        Returns ``(job ids, releases, flow factors, eligibility tuples)``;
        the float columns are float64 arrays ready for
        :func:`repro.lp.kernels.active_jobs_delta`.
        """
        cached = self.__dict__.get("_arrays")
        if cached is None:
            n = len(self.rows)
            cached = (
                [row[0] for row in self.rows],
                np.fromiter((row[1] for row in self.rows), dtype=np.float64, count=n),
                np.fromiter((row[3] for row in self.rows), dtype=np.float64, count=n),
                tuple(row[4] for row in self.rows),
            )
            object.__setattr__(self, "_arrays", cached)
        return cached


def build_job_table(
    instance: Instance,
    resources: "tuple[Resource, ...] | None" = None,
    eligibility: "Mapping[str | None, tuple[int, ...]] | None" = None,
) -> JobTable:
    """Precompute the :class:`JobTable` of ``instance`` (see the replan fast path)."""
    if resources is None:
        resources = build_resources(instance)
    if eligibility is None:
        eligibility = build_eligibility(instance, resources)
    rows = []
    for job in instance.jobs:
        eligible = eligibility[job.databank]
        if not eligible:
            raise ModelError(f"job {job.job_id} has no eligible capability class")
        rows.append(
            (
                job.job_id,
                job.release,
                job.size,
                1.0 / instance.weight(job.job_id),
                eligible,
            )
        )
    return JobTable(rows=tuple(rows))


def _problem_from_job_table(
    table: JobTable,
    resources: tuple[Resource, ...],
    now: float | None,
    remaining: Mapping[int, float],
) -> MaxStretchProblem:
    """The replan-shaped fast path: active jobs only, invariants from the table."""
    ids, releases, factors, eligibles = table.arrays()
    rem = np.fromiter(
        ((remaining.get(job_id) or 0.0) for job_id in ids),
        dtype=np.float64,
        count=len(ids),
    )
    idx, earliest, works, rel_active, fac_active = kernels.active_jobs_delta(
        releases, factors, rem, now
    )
    lp_jobs = tuple(
        LPJob(
            job_id=ids[i],
            earliest_start=float(earliest[k]),
            remaining_work=float(works[k]),
            release=float(rel_active[k]),
            flow_factor=float(fac_active[k]),
            resources=eligibles[i],
        )
        for k, i in enumerate(idx.tolist())
    )
    problem = MaxStretchProblem(resources=resources, jobs=lp_jobs)
    # The delta kernel already materialized the per-job float columns; seed
    # the problem's lazy caches so the milestone/bound consumers skip their
    # per-job python loops entirely.
    object.__setattr__(problem, "_works", works)
    object.__setattr__(problem, "_job_vectors_cache", (earliest, rel_active, fac_active))
    return problem


def problem_from_instance(
    instance: Instance,
    *,
    now: float | None = None,
    remaining: Mapping[int, float] | None = None,
    job_ids: Iterable[int] | None = None,
    flow_factors: Mapping[int, float] | None = None,
    resources: tuple[Resource, ...] | None = None,
    eligibility: Mapping[str | None, tuple[int, ...]] | None = None,
    job_table: JobTable | None = None,
) -> MaxStretchProblem:
    """Build a :class:`MaxStretchProblem` from an instance.

    Parameters
    ----------
    instance:
        The scheduling instance.
    now:
        Current time for on-line re-optimizations; job earliest starts become
        ``max(release, now)``.  ``None`` (off-line) keeps the release dates.
    remaining:
        Remaining work per job id.  When provided, the problem is restricted
        to exactly these jobs (unless ``job_ids`` is also given): this is the
        natural on-line usage where the mapping describes the currently
        active jobs.  Jobs mapped to a non-positive value are dropped
        (completed).
    job_ids:
        Restrict the problem to these jobs.  Defaults to the keys of
        ``remaining`` when that mapping is provided, and to all jobs of the
        instance otherwise.  Jobs listed here but absent from ``remaining``
        keep their full size.
    flow_factors:
        Optional per-job override of :math:`1/w_j`.  By default the stretch
        convention is used: the flow factor is the job's ideal time on its
        eligible machines.
    resources, eligibility:
        Precomputed resource tuple and ``databank -> eligible resource
        indices`` mapping, as cached by
        :class:`~repro.lp.incremental.ReplanContext`.  The platform never
        changes during a simulation, so on-line replans can skip the
        capability-class decomposition; the values must describe exactly
        ``instance.platform`` (callers other than the cache should leave the
        defaults).
    job_table:
        Precomputed :class:`JobTable` (see :func:`build_job_table`).  When
        provided together with ``resources`` and a ``remaining`` mapping --
        the replan shape, with no ``job_ids``/``flow_factors`` overrides --
        the array-backed fast path builds the problem straight from the
        table, skipping the per-job weight and eligibility lookups; the
        table must describe exactly ``instance`` (same order, same
        weights).  Any override falls back to the general path.
    """
    if (
        job_table is not None
        and resources is not None
        and remaining is not None
        and job_ids is None
        and flow_factors is None
    ):
        return _problem_from_job_table(job_table, resources, now, remaining)
    if resources is None:
        resources = build_resources(instance)
    if eligibility is None:
        eligibility = build_eligibility(instance, resources)

    if job_ids is not None:
        wanted = set(job_ids)
    elif remaining is not None:
        wanted = set(remaining)
    else:
        wanted = set(instance.jobs.ids())
    lp_jobs: list[LPJob] = []
    for job in instance.jobs:
        if job.job_id not in wanted:
            continue
        rem = job.size if remaining is None else remaining.get(job.job_id, job.size)
        if rem is None or rem <= 0:
            continue
        eligible = eligibility[job.databank]
        if not eligible:
            raise ModelError(f"job {job.job_id} has no eligible capability class")
        if flow_factors is not None and job.job_id in flow_factors:
            factor = flow_factors[job.job_id]
        else:
            factor = 1.0 / instance.weight(job.job_id)
        earliest = job.release if now is None else max(job.release, now)
        lp_jobs.append(
            LPJob(
                job_id=job.job_id,
                earliest_start=earliest,
                remaining_work=float(rem),
                release=job.release,
                flow_factor=float(factor),
                resources=eligible,
            )
        )
    return MaxStretchProblem(resources=resources, jobs=tuple(lp_jobs))
