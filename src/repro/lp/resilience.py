"""Bounded retry/backoff and graceful degradation for LP solves.

This module generalizes the scipy backend's historical status-1 one-shot
retry into an explicit, testable policy, and adds the last line of defence
above it: a backend wrapper that re-runs a probe on the stateless scipy
fallback when the primary (persistent) backend raises.  The layering is

1. :func:`solve_with_retries` -- inside one backend, walk a bounded method
   escalation chain while the solver reports a *retriable* status (scipy
   status 1, iteration limit, by default);
2. :class:`ResilientBackend` -- across backends, a probe whose primary
   backend raised :class:`~repro.core.errors.SolverError` is retried once on
   the scipy fallback (highs -> scipy downgrade);
3. the campaign worker -- a :class:`SolverError` that survives both layers
   aborts only its own run, which the runner converts into a NaN-metrics
   ``failed`` record (see ``experiments/runner.py``); the worker lane and
   the rest of the group keep going.

Every retry path preserves exactness: a retried probe either returns the
optimum of the same LP or fails again -- policies never change which
solution is accepted, only how hard the stack tries before giving up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

from repro.core.errors import ModelError, SolverError
from repro.lp.backends.base import LPResult, LPSpec, SolverBackend, WarmStartHint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Hashable

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "solve_with_retries",
    "annotate_solver_error",
    "ResilientBackend",
    "make_resilient",
]


class _StatusResult(Protocol):  # pragma: no cover - typing only
    status: int


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded method-escalation chain for retriable solver statuses.

    Attributes
    ----------
    escalation:
        Methods to try, in order, after the initially requested one keeps
        reporting a retriable status.  A candidate equal to the method just
        tried is skipped (retrying the identical configuration would only
        reproduce the failure).
    retriable_statuses:
        Solver status codes worth another attempt.  The default is scipy's
        status 1 (iteration limit): a different algorithm routinely clears
        it.  Statuses meaning "the model itself is bad" (infeasible,
        unbounded) must *not* be listed -- retrying cannot fix those.
    max_attempts:
        Hard bound on the total number of solves, initial attempt included.
    backoff_seconds / backoff_factor:
        Sleep inserted before each retry, growing geometrically.  Zero
        (default) disables sleeping -- LP retries are CPU-bound, so backoff
        only matters for tests and future remote solvers.
    """

    escalation: tuple[str, ...] = ("highs-ipm",)
    retriable_statuses: tuple[int, ...] = (1,)
    max_attempts: int = 2
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ModelError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_seconds < 0.0:
            raise ModelError(f"backoff_seconds must be >= 0, got {self.backoff_seconds}")
        if self.backoff_factor < 1.0:
            raise ModelError(f"backoff_factor must be >= 1, got {self.backoff_factor}")


#: The historical scipy behaviour: one extra attempt with ``highs-ipm`` when
#: the first method hits the iteration limit (status 1), no sleeping.
DEFAULT_RETRY_POLICY = RetryPolicy()


def solve_with_retries(
    run: "Callable[[str], _StatusResult]",
    method: str,
    *,
    policy: RetryPolicy | None = None,
    sleep: "Callable[[float], None]" = time.sleep,
):
    """Run ``run(method)`` with the policy's bounded escalation chain.

    Returns ``(result, attempts, method_used)`` where ``result`` is the last
    attempt's outcome (retriable or not -- the caller decides what a
    non-zero terminal status means), ``attempts`` counts the solves
    performed and ``method_used`` is the method of the last attempt.
    ``sleep`` is injectable so tests can assert backoff without waiting.
    """
    active = policy if policy is not None else DEFAULT_RETRY_POLICY
    result = run(method)
    attempts = 1
    used = method
    if result.status not in active.retriable_statuses:
        return result, attempts, used
    delay = active.backoff_seconds
    for candidate in active.escalation:
        if attempts >= active.max_attempts:
            break
        if candidate == used:
            continue
        if delay > 0.0:
            sleep(delay)
            delay *= active.backoff_factor
        result = run(candidate)
        attempts += 1
        used = candidate
        if result.status not in active.retriable_statuses:
            break
    return result, attempts, used


def annotate_solver_error(exc: SolverError, **context: object) -> SolverError:
    """Fill unset structured-context fields of ``exc`` in place.

    Outer layers (the backend wrapper, the replan context) use this to add
    what they know -- backend name, probe signature -- without clobbering
    details the raising layer already recorded.
    """
    for key, value in context.items():
        if value is not None and getattr(exc, key, None) is None:
            setattr(exc, key, value)
    return exc


class ResilientBackend(SolverBackend):
    """Retry a failing probe on the stateless scipy fallback.

    Wraps a primary backend; a :class:`SolverError` from it triggers one
    re-solve of the *same spec* on the fallback (a fresh
    :class:`~repro.lp.backends.scipy_backend.ScipyBackend` unless another
    stateless backend is supplied).  The fallback solves from scratch --
    no key, no warm start -- so a corrupted persistent model cannot poison
    it.  Warm-start bookkeeping (``persistent``, series state) delegates to
    the primary; the wrapper advertises the primary's name so probe
    accounting and bank keying are unchanged.
    """

    def __init__(self, primary: SolverBackend, fallback: SolverBackend | None = None):
        if fallback is None:
            from repro.lp.backends.scipy_backend import ScipyBackend

            fallback = ScipyBackend()
        self._primary = primary
        self._fallback = fallback
        self.name = primary.name
        self.persistent = primary.persistent
        #: Number of probes served by the fallback (degradation telemetry).
        self.n_downgrades = 0

    def _solve(
        self,
        spec: LPSpec,
        *,
        method: str = "auto",
        key: "Hashable | None" = None,
        warm: WarmStartHint | None = None,
    ) -> LPResult:
        try:
            return self._primary._solve(spec, method=method, key=key, warm=warm)
        except SolverError as primary_exc:
            annotate_solver_error(primary_exc, backend=self._primary.name, method=method)
            try:
                result = self._fallback._solve(spec, method="auto", key=None, warm=None)
            except SolverError as fallback_exc:
                annotate_solver_error(fallback_exc, backend=self._fallback.name)
                raise fallback_exc from primary_exc
            self.n_downgrades += 1
            return result

    def close(self) -> None:
        self._primary.close()
        self._fallback.close()

    def export_series_state(self) -> object | None:
        return self._primary.export_series_state()

    def import_series_state(self, payload: object | None) -> None:
        self._primary.import_series_state(payload)


def make_resilient(backend: SolverBackend) -> SolverBackend:
    """Wrap persistent backends with the scipy downgrade; pass others through.

    The stateless scipy backend is already the floor of the degradation
    chain (and carries its own internal retry policy), so wrapping it would
    only re-run the identical failing solve.
    """
    if isinstance(backend, ResilientBackend) or not backend.persistent:
        return backend
    return ResilientBackend(backend)
