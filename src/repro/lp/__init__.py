"""Linear-programming machinery for max-stretch optimization.

This subpackage implements the off-line polynomial algorithm of Section 4.3.1
of the paper and the sum-stretch-like relaxation (System (2)) used by the
on-line heuristics:

* :mod:`repro.lp.problem` -- the data model handed to the LP layer: jobs with
  earliest start dates, remaining works and deadline functions affine in the
  objective, and *resources* (capability classes of machines).
* :mod:`repro.lp.milestones` -- enumeration of the objective values at which
  the relative order of release dates and deadlines changes.
* :mod:`repro.lp.maxstretch` -- System (1): the parametric LP on one
  milestone interval and the binary search producing the optimal maximum
  weighted flow (max-stretch).
* :mod:`repro.lp.relaxation` -- System (2): re-optimization of a
  sum-stretch-like objective under the constraint that the optimal
  max-stretch is preserved.
* :mod:`repro.lp.incremental` -- the :class:`~repro.lp.incremental.
  ReplanContext` carried across on-line replans: cached capability classes
  and eligibility, warm-started milestone search and constraint-skeleton
  reuse.
* :mod:`repro.lp.aggregation` -- materialization of interval/resource work
  allocations into concrete per-machine :class:`~repro.core.schedule.WorkSlice`
  lists.
* :mod:`repro.lp.solver` -- the sparse COO program builder, delegating solves
  to a pluggable backend.
* :mod:`repro.lp.backends` -- the solver backends: one-shot
  :func:`scipy.optimize.linprog` (default) and the persistent HiGHS backend
  that keeps factorized models alive across milestone probes and replans
  (delta updates + dual-simplex basis warm starts), plus the LP probe timing
  hooks used by the overhead benchmarks.
"""

from repro.lp.problem import (
    Affine,
    LPJob,
    MaxStretchProblem,
    Resource,
    problem_from_instance,
)
from repro.lp.milestones import enumerate_milestones
from repro.lp.maxstretch import (
    ConstraintSkeleton,
    MaxStretchSolution,
    minimize_max_weighted_flow,
)
from repro.lp.relaxation import reoptimize_allocation
from repro.lp.incremental import ReplanContext
from repro.lp.aggregation import materialize_solution
from repro.lp.backends import (
    BACKEND_CHOICES,
    HighsPersistentBackend,
    ScipyBackend,
    SolverBackend,
    available_backends,
    highs_available,
    make_backend,
    record_lp_probes,
)
from repro.lp.solver import LinearProgramBuilder, LPResult

__all__ = [
    "Affine",
    "Resource",
    "LPJob",
    "MaxStretchProblem",
    "problem_from_instance",
    "enumerate_milestones",
    "MaxStretchSolution",
    "ConstraintSkeleton",
    "minimize_max_weighted_flow",
    "reoptimize_allocation",
    "ReplanContext",
    "materialize_solution",
    "LinearProgramBuilder",
    "LPResult",
    "SolverBackend",
    "ScipyBackend",
    "HighsPersistentBackend",
    "BACKEND_CHOICES",
    "available_backends",
    "highs_available",
    "make_backend",
    "record_lp_probes",
]
