"""Solver-backend abstraction for the System (1)/(2) linear programs.

A :class:`SolverBackend` turns the arrays accumulated by a
:class:`~repro.lp.solver.LinearProgramBuilder` into an :class:`LPResult`.
Two implementations exist:

* :class:`~repro.lp.backends.scipy_backend.ScipyBackend` -- the historical
  one-shot :func:`scipy.optimize.linprog` path (default);
* :class:`~repro.lp.backends.highs.HighsPersistentBackend` -- keeps HiGHS
  models alive across solves and applies delta updates (changed RHS, bounds
  and objective coefficients only) between milestone probes, warm-starting
  dual simplex from the previous basis.

Persistent backends identify reusable structure through the ``key`` argument
of :meth:`SolverBackend.solve`: two solves submitted under the same key are
guaranteed by the caller to share the exact same constraint-matrix sparsity
pattern *and values* (only costs, variable bounds and row bounds may differ).
The keys are derived from the constraint-skeleton signatures of
:mod:`repro.lp.maxstretch`, with the boundary constants stripped, so that the
System (1) LPs of successive replans on the same milestone pattern -- and the
System (2) re-optimizations that follow them -- hit the same factorized model.

This module also hosts the *probe timing hooks* used by the overhead
benchmarks: :func:`record_lp_probes` measures how much of the scheduler
wall-clock is spent inside the LP solver proper, regardless of backend.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

import numpy as np


__all__ = [
    "LPResult",
    "LPSpec",
    "WarmStartHint",
    "SolverBackend",
    "LPProbeStats",
    "record_lp_probes",
    "note_certificate_skips",
    "note_basis_reuse",
    "note_milestone_search",
    "note_bank_lookup",
    "note_primal_reuse",
    "note_phase_assembly",
    "note_phase_search",
    "note_replan",
    "note_speculation",
]


@dataclass
class LPResult:
    """Outcome of a linear program solve.

    Attributes
    ----------
    dual_ray:
        Optional infeasibility certificate (Farkas / dual ray) reported by
        backends that can produce one (the persistent HiGHS backend); always
        ``None`` on feasible solves and on backends without certificate
        support (the one-shot scipy path), in which case callers degrade
        gracefully.  The array holds one multiplier per constraint row
        (inequality rows first, then equality rows, matching
        :class:`LPSpec`), sign-normalized so that the multipliers of the
        ``<=`` rows are non-negative and the aggregated constraint

        .. math:: \\sum_i y_i (A x)_i \\le \\sum_i y_i b_i

        is violated by *every* point of the variable box: the minimum of the
        left-hand side over the bounds exceeds the right-hand side.  The
        milestone search evaluates this combination as an affine function of
        the objective ``F`` (the RHS is affine in ``F``) to refute whole
        ranges of milestones without solving them
        (:mod:`repro.lp.maxstretch`).
    """

    status: int
    feasible: bool
    objective: float
    values: np.ndarray
    message: str = ""
    dual_ray: "np.ndarray | None" = None

    def value(self, index: int) -> float:
        """Value of variable ``index`` in the optimal solution."""
        return float(self.values[index])


@dataclass(frozen=True)
class LPSpec:
    """The arrays of one ``min c.x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, lb <= x <= ub``.

    A read-only view over the lists accumulated by
    :class:`~repro.lp.solver.LinearProgramBuilder` (no copies are made); the
    inequality/equality matrices are in COO triplet form.
    """

    n_vars: int
    objective: Sequence[float]
    lower: Sequence[float]
    upper: Sequence[float]
    ub_rows: Sequence[int]
    ub_cols: Sequence[int]
    ub_vals: Sequence[float]
    ub_rhs: Sequence[float]
    eq_rows: Sequence[int]
    eq_cols: Sequence[int]
    eq_vals: Sequence[float]
    eq_rhs: Sequence[float]

    @property
    def n_rows(self) -> int:
        return len(self.ub_rhs) + len(self.eq_rhs)

    @property
    def nnz(self) -> int:
        return len(self.ub_vals) + len(self.eq_vals)


@dataclass(frozen=True)
class WarmStartHint:
    """Stable identities letting a persistent backend transplant bases.

    Consecutive milestone probes (and the System (2) re-optimization after
    the winning probe) are built on *different* constraint matrices, so a
    live model cannot always be delta-updated.  Their variables and rows do,
    however, carry stable identities -- ``(interval, resource, job)`` for the
    work variables, ``(interval, resource)``/``job`` for the rows -- and the
    optimal (or infeasibility-proving) basis of one probe is an excellent
    starting basis for the next once mapped through those identities.

    Attributes
    ----------
    series:
        Solves sharing a series feed each other's bases (one series per
        replan context is the natural granularity).
    col_ids / row_ids:
        One integer identity per variable / constraint row (inequality rows
        first, then equality rows, matching the builder's row order), as
        int64 numpy arrays -- integers so the basis mapping stays fully
        vectorized.  Identities present in the previous basis inherit its
        statuses; new ones start non-basic (columns) / basic-slack (rows).
    """

    series: Hashable
    col_ids: "np.ndarray"
    row_ids: "np.ndarray"


class SolverBackend(ABC):
    """Strategy object solving the LPs built by ``LinearProgramBuilder``.

    Subclasses implement :meth:`_solve`; the public :meth:`solve` wraps it
    with the probe timing hooks so that every backend feeds the same
    LP-fraction accounting (see :func:`record_lp_probes`).
    """

    #: Registry/display name of the backend ("scipy", "highs", ...).
    name: str = "abstract"
    #: Whether the backend exploits the ``key``/``warm`` arguments to reuse
    #: models and bases across solves.  Callers skip building keys and warm
    #: hints for non-persistent backends.
    persistent: bool = False

    def solve(
        self,
        spec: LPSpec,
        *,
        method: str = "auto",
        key: Hashable | None = None,
        warm: WarmStartHint | None = None,
    ) -> LPResult:
        """Solve ``spec``; see :meth:`~repro.lp.solver.LinearProgramBuilder.solve`.

        ``key``, when not ``None``, asserts that any other solve submitted
        under the same key shares the constraint matrix exactly (pattern and
        values); persistent backends use it to apply delta updates to a live
        model instead of rebuilding it.  ``warm`` optionally carries the
        stable identities used to transplant the previous basis of the same
        series onto a freshly built model.
        """
        start = time.perf_counter()
        try:
            return self._solve(spec, method=method, key=key, warm=warm)
        finally:
            _note_probe(self.name, time.perf_counter() - start)

    @abstractmethod
    def _solve(
        self,
        spec: LPSpec,
        *,
        method: str = "auto",
        key: Hashable | None = None,
        warm: WarmStartHint | None = None,
    ) -> LPResult:
        """Backend-specific solve (timed and accounted by :meth:`solve`)."""

    def close(self) -> None:
        """Release any persistent solver state (no-op by default)."""

    def export_series_state(self) -> object | None:
        """A process-local snapshot of the warm-start series bases.

        Persistent backends return a serializable payload capturing the
        retained per-series dual-simplex bases, suitable for
        :meth:`import_series_state` on a *fresh* backend of the same class
        (the cross-run solver-state bank of :mod:`repro.lp.bank` stores
        these per instance content key).  Stateless backends return
        ``None`` -- there is nothing to carry.
        """
        return None

    def import_series_state(self, payload: object | None) -> None:
        """Seed the warm-start series bases from an exported snapshot.

        Accepts the payload of :meth:`export_series_state` (``None`` is a
        no-op).  Purely an accelerator: imported bases only change where
        dual simplex *starts*, never which optimum it reports.
        """

    @staticmethod
    def infeasible_result(spec: LPSpec, message: str = "") -> LPResult:
        """The canonical infeasible :class:`LPResult` for ``spec``."""
        return LPResult(
            status=2,
            feasible=False,
            objective=np.inf,
            values=np.zeros(spec.n_vars),
            message=message,
        )


# -- probe timing hooks ---------------------------------------------------------


@dataclass
class LPProbeStats:
    """Accumulated LP solve cost observed inside a :func:`record_lp_probes` block.

    Beyond the historical solve counters, the block also collects the
    *probe-elimination histogram* of the certificate-guided milestone search
    (:mod:`repro.lp.maxstretch`): how many milestone probes were actually
    solved, how many were skipped outright by a dual-ray certificate bound
    or the interior-optimum re-check, and how many solved probes were served
    warm by the persistent backend (delta update on a live model or a
    transplanted basis instead of a cold factorization).
    """

    n_probes: int = 0
    solve_seconds: float = 0.0
    by_backend: dict[str, int] = field(default_factory=dict)
    #: Milestone probes eliminated without an LP solve (certificate jumps
    #: plus downward probes pruned by the interior-optimum re-check).
    n_certificate_skipped: int = 0
    #: Solved probes served from warm persistent-solver state (delta update
    #: or successful basis transplant) instead of a cold build.
    n_basis_reused: int = 0
    #: Milestone searches ended by the interior-optimum short circuit (the
    #: winning probe's own optimum proved global optimality, so the
    #: downward confirmation probe was never solved).
    n_interior_exits: int = 0
    #: Per-search ``(solved, skipped)`` probe counts, one entry per milestone
    #: search, in completion order (feeds the per-replan medians of
    #: ``benchmarks/bench_lp_scaling.py``).
    searches: list[tuple[int, int]] = field(default_factory=list)
    #: Cross-run solver-state bank lookups that found a warm bucket for the
    #: run's instance content key (:mod:`repro.lp.bank`).
    n_bank_hits: int = 0
    #: Bank lookups that started a cold bucket (first run of a content group
    #: on its worker, or the bank disabled upstream never counts here).
    n_bank_misses: int = 0
    #: Whole LP solves skipped by reusing a stored primal solution -- a
    #: banked System (1)/(2) optimum for an exactly-matching problem
    #: signature, or the feasible-side shrink-only carry within a run.
    n_primal_reuses: int = 0
    #: Wall-clock seconds spent assembling LPs before handing them to the
    #: backend (interval structure + skeleton + COO blocks): the python-side
    #: cost the compiled replan kernels of :mod:`repro.lp.kernels` attack.
    assembly_seconds: float = 0.0
    #: Wall-clock seconds inside whole milestone searches (bounds, milestone
    #: enumeration, probe loop -- solves included).
    search_seconds: float = 0.0
    #: Per-replan wall-clock latencies (seconds), one entry per scheduler
    #: replan in completion order; feeds the p50/p95 replan-latency columns
    #: of the overhead tables and ``bench_overhead.py::bench_replan_latency``.
    replan_latencies: list[float] = field(default_factory=list)
    #: Speculative pre-solves consumed by a later replan with an exactly
    #: matching problem signature (the replan became a rebind).
    n_spec_hits: int = 0
    #: Speculative pre-solves discarded because the predicted problem never
    #: materialized (mispredictions -- results are unaffected by design).
    n_spec_misses: int = 0

    @property
    def per_probe_seconds(self) -> float:
        """Mean wall-clock seconds per LP probe (0 when no probe ran)."""
        return self.solve_seconds / self.n_probes if self.n_probes else 0.0

    def fraction_of(self, total_seconds: float) -> float:
        """LP-solve share of ``total_seconds`` (e.g. the scheduler wall-clock)."""
        return self.solve_seconds / total_seconds if total_seconds > 0 else 0.0

    def replan_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the replan latencies, in seconds.

        Returns 0 when no replan was recorded.  Uses the nearest-rank
        definition so the value is always an actually-observed latency.
        """
        if not self.replan_latencies:
            return 0.0
        ordered = sorted(self.replan_latencies)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def speculation_hit_rate(self) -> float:
        """Consumed share of the speculative pre-solves (0 when none ran)."""
        total = self.n_spec_hits + self.n_spec_misses
        return self.n_spec_hits / total if total else 0.0

    def histogram(self) -> dict[str, int]:
        """The probe-count histogram: solved vs certificate-skipped vs basis-reused."""
        return {
            "solved": self.n_probes,
            "certificate_skipped": self.n_certificate_skipped,
            "basis_reused": self.n_basis_reused,
            "interior_exits": self.n_interior_exits,
            "bank_hits": self.n_bank_hits,
            "bank_misses": self.n_bank_misses,
            "primal_reuses": self.n_primal_reuses,
            "spec_hits": self.n_spec_hits,
            "spec_misses": self.n_spec_misses,
        }


#: Stack of active stat collectors (nested ``record_lp_probes`` blocks all see
#: every probe run inside them).
_ACTIVE_STATS: list[LPProbeStats] = []


def _note_probe(backend_name: str, seconds: float) -> None:
    for stats in _ACTIVE_STATS:
        stats.n_probes += 1
        stats.solve_seconds += seconds
        stats.by_backend[backend_name] = stats.by_backend.get(backend_name, 0) + 1


def note_certificate_skips(count: int) -> None:
    """Record ``count`` milestone probes eliminated without an LP solve."""
    if count <= 0:
        return
    for stats in _ACTIVE_STATS:
        stats.n_certificate_skipped += count


def note_basis_reuse() -> None:
    """Record one solved probe served from warm persistent-solver state."""
    for stats in _ACTIVE_STATS:
        stats.n_basis_reused += 1


def note_milestone_search(solved: int, skipped: int, interior_exit: bool) -> None:
    """Record the probe economy of one completed milestone search."""
    for stats in _ACTIVE_STATS:
        stats.searches.append((solved, skipped))
        if interior_exit:
            stats.n_interior_exits += 1


def note_bank_lookup(hit: bool) -> None:
    """Record one solver-state-bank bucket acquisition (warm or cold)."""
    for stats in _ACTIVE_STATS:
        if hit:
            stats.n_bank_hits += 1
        else:
            stats.n_bank_misses += 1


def note_primal_reuse() -> None:
    """Record one whole LP solve replaced by a stored primal solution."""
    for stats in _ACTIVE_STATS:
        stats.n_primal_reuses += 1


def note_phase_assembly(seconds: float) -> None:
    """Record python-side LP assembly time (structure + skeleton + COO blocks)."""
    for stats in _ACTIVE_STATS:
        stats.assembly_seconds += seconds


def note_phase_search(seconds: float) -> None:
    """Record the wall-clock of one whole milestone search (solves included)."""
    for stats in _ACTIVE_STATS:
        stats.search_seconds += seconds


def note_replan(seconds: float) -> None:
    """Record the wall-clock latency of one scheduler replan."""
    for stats in _ACTIVE_STATS:
        stats.replan_latencies.append(seconds)


def note_speculation(hit: bool) -> None:
    """Record the fate of one speculative pre-solve (consumed or discarded)."""
    for stats in _ACTIVE_STATS:
        if hit:
            stats.n_spec_hits += 1
        else:
            stats.n_spec_misses += 1


@contextmanager
def record_lp_probes() -> Iterator[LPProbeStats]:
    """Collect the number and wall-clock cost of LP solves in the block.

    >>> from repro.lp.backends import record_lp_probes
    >>> with record_lp_probes() as stats:
    ...     pass  # run a simulation / milestone search ...
    >>> stats.n_probes
    0

    The hook sits inside :meth:`SolverBackend.solve`, so it measures the pure
    solver time (model build + factorization + simplex/IPM), excluding the
    Python-side constraint assembly -- which is exactly the "LP is the floor"
    quantity tracked by ``benchmarks/bench_overhead.py``.
    """
    stats = LPProbeStats()
    _ACTIVE_STATS.append(stats)
    try:
        yield stats
    finally:
        _ACTIVE_STATS.remove(stats)
