"""Pluggable LP solver backends behind :class:`~repro.lp.solver.LinearProgramBuilder`.

* :class:`ScipyBackend` -- the historical one-shot
  :func:`scipy.optimize.linprog` path (default; always available).
* :class:`HighsPersistentBackend` -- keeps HiGHS models alive across
  milestone probes and replans, applies delta updates (changed RHS, bounds
  and costs only) and warm-starts dual simplex from the retained basis.
  Backed by ``highspy`` when installed, falling back to the bindings vendored
  by scipy >= 1.15.

Backends are selected by name through :func:`make_backend` (``"scipy"``,
``"highs"``, ``"auto"``) -- the same names exposed by the
``--solver-backend`` CLI flag and :attr:`ExperimentConfig.solver_backend`.
"""

from __future__ import annotations

from repro.core.errors import SolverError
from repro.lp.backends.base import (
    LPProbeStats,
    LPResult,
    LPSpec,
    SolverBackend,
    WarmStartHint,
    record_lp_probes,
)
from repro.lp.backends.highs import (
    HighsPersistentBackend,
    highs_available,
    highs_source,
)
from repro.lp.backends.scipy_backend import ScipyBackend

__all__ = [
    "LPResult",
    "LPSpec",
    "SolverBackend",
    "WarmStartHint",
    "LPProbeStats",
    "record_lp_probes",
    "ScipyBackend",
    "HighsPersistentBackend",
    "highs_available",
    "highs_source",
    "BACKEND_CHOICES",
    "available_backends",
    "make_backend",
    "default_backend",
]

#: Names accepted by :func:`make_backend` and the ``--solver-backend`` flag.
BACKEND_CHOICES: tuple[str, ...] = ("scipy", "highs", "auto")

#: Shared stateless scipy backend (safe across contexts and threads-of-use;
#: persistent backends are instantiated per replan context instead).
_SCIPY_SINGLETON = ScipyBackend()


def default_backend() -> SolverBackend:
    """The process-wide default backend (one-shot scipy)."""
    return _SCIPY_SINGLETON


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment."""
    return ("scipy", "highs") if highs_available() else ("scipy",)


def make_backend(spec: "str | SolverBackend | None" = None) -> SolverBackend:
    """Resolve a backend from a name, an instance, or ``None``.

    * ``None`` / ``"scipy"`` -- the shared one-shot scipy backend;
    * ``"highs"`` -- a *fresh* :class:`HighsPersistentBackend` (each caller
      owns its live models; raises :class:`SolverError` when no HiGHS
      bindings are available);
    * ``"auto"`` -- a fresh persistent HiGHS backend when available, the
      scipy backend otherwise;
    * a :class:`SolverBackend` instance -- returned unchanged.
    """
    if spec is None:
        return _SCIPY_SINGLETON
    if isinstance(spec, SolverBackend):
        return spec
    name = str(spec).lower()
    if name == "scipy":
        return _SCIPY_SINGLETON
    if name == "highs":
        return HighsPersistentBackend()
    if name == "auto":
        return HighsPersistentBackend() if highs_available() else _SCIPY_SINGLETON
    raise SolverError(
        f"unknown solver backend {spec!r}; choose from {', '.join(BACKEND_CHOICES)}"
    )
