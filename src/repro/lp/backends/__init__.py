"""Pluggable LP solver backends behind :class:`~repro.lp.solver.LinearProgramBuilder`.

* :class:`ScipyBackend` -- the historical one-shot
  :func:`scipy.optimize.linprog` path (default; always available).
* :class:`HighsPersistentBackend` -- keeps HiGHS models alive across
  milestone probes and replans, applies delta updates (changed RHS, bounds
  and costs only) and warm-starts dual simplex from the retained basis.
  Backed by ``highspy`` when installed, falling back to the bindings vendored
  by scipy >= 1.15.

Backends are selected by name through :func:`make_backend` (``"scipy"``,
``"highs"``, ``"auto"``) -- the same names exposed by the
``--solver-backend`` CLI flag and :attr:`ExperimentConfig.solver_backend`.
"""

from __future__ import annotations

from repro.core.errors import SolverError
from repro.lp.backends.base import (
    LPProbeStats,
    LPResult,
    LPSpec,
    SolverBackend,
    WarmStartHint,
    note_bank_lookup,
    note_basis_reuse,
    note_certificate_skips,
    note_milestone_search,
    note_phase_assembly,
    note_phase_search,
    note_primal_reuse,
    note_replan,
    note_speculation,
    record_lp_probes,
)
from repro.lp.backends.highs import (
    HighsPersistentBackend,
    highs_available,
    highs_source,
    highs_unavailable_reason,
)
from repro.lp.backends.scipy_backend import ScipyBackend

__all__ = [
    "LPResult",
    "LPSpec",
    "SolverBackend",
    "WarmStartHint",
    "LPProbeStats",
    "record_lp_probes",
    "note_bank_lookup",
    "note_basis_reuse",
    "note_certificate_skips",
    "note_milestone_search",
    "note_phase_assembly",
    "note_phase_search",
    "note_primal_reuse",
    "note_replan",
    "note_speculation",
    "ScipyBackend",
    "HighsPersistentBackend",
    "highs_available",
    "highs_source",
    "highs_unavailable_reason",
    "BACKEND_CHOICES",
    "available_backends",
    "make_backend",
    "default_backend",
    "resolve_backend_name",
]

#: Names accepted by :func:`make_backend` and the ``--solver-backend`` flag.
BACKEND_CHOICES: tuple[str, ...] = ("scipy", "highs", "auto")

#: Shared stateless scipy backend (safe across contexts and threads-of-use;
#: persistent backends are instantiated per replan context instead).
_SCIPY_SINGLETON = ScipyBackend()


def default_backend() -> SolverBackend:
    """The process-wide default backend (one-shot scipy)."""
    return _SCIPY_SINGLETON


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment."""
    return ("scipy", "highs") if highs_available() else ("scipy",)


def resolve_backend_name(spec: "str | SolverBackend | None" = None) -> str:
    """The concrete backend name ``spec`` resolves to in this environment.

    ``"auto"`` resolves to ``"highs"`` when bindings are available and
    ``"scipy"`` otherwise; ``None`` means ``"scipy"`` (mirroring
    :func:`make_backend`); concrete names and backend instances report
    themselves.  Used by the backend A/B harness and the CLI to label
    results with the backend that actually ran.
    """
    if isinstance(spec, SolverBackend):
        return spec.name
    name = "scipy" if spec is None else str(spec).lower()
    if name == "auto":
        return "highs" if highs_available() else "scipy"
    if name in ("scipy", "highs"):
        return name
    raise SolverError(
        f"unknown solver backend {spec!r}; choose from {', '.join(BACKEND_CHOICES)}"
    )


def make_backend(spec: "str | SolverBackend | None" = None) -> SolverBackend:
    """Resolve a backend from a name, an instance, or ``None``.

    * ``None`` / ``"scipy"`` -- the shared one-shot scipy backend;
    * ``"highs"`` -- a *fresh* :class:`HighsPersistentBackend` (each caller
      owns its live models; raises :class:`SolverError` when no HiGHS
      bindings are available);
    * ``"auto"`` -- a fresh persistent HiGHS backend when available, the
      scipy backend otherwise;
    * a :class:`SolverBackend` instance -- returned unchanged.
    """
    if isinstance(spec, SolverBackend):
        return spec
    # One name-resolution chain for the whole package: a spec that
    # resolve_backend_name accepts is exactly one make_backend can build.
    # 'highs' resolves to itself even without bindings -- the constructor
    # raises the descriptive SolverError for an explicit request.
    if resolve_backend_name(spec) == "scipy":
        return _SCIPY_SINGLETON
    return HighsPersistentBackend()
