"""One-shot :func:`scipy.optimize.linprog` backend (the historical path).

Every solve converts the builder's COO triplets to CSR and hands the whole
program to scipy, which re-presolves and re-factorizes from scratch.  This is
the default backend: it has no persistent state, is always available, and its
results are the reference the persistent backends are tested against.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.errors import SolverError
from repro.lp.backends.base import LPResult, LPSpec, SolverBackend, WarmStartHint
from repro.lp.resilience import DEFAULT_RETRY_POLICY, RetryPolicy, solve_with_retries

__all__ = ["ScipyBackend"]


class ScipyBackend(SolverBackend):
    """Stateless backend delegating to :func:`scipy.optimize.linprog`.

    ``method="auto"`` picks HiGHS dual simplex for small programs and the
    HiGHS interior-point method for large ones (empirically ~2x faster on the
    transportation-like LPs produced by System (1) on big platforms).

    scipy status 1 (iteration limit) is treated as retriable: per the
    backend's :class:`~repro.lp.resilience.RetryPolicy` (the default policy
    unless one is passed at construction), the solve is retried with
    ``highs-ipm``, whose iteration economy differs enough from dual simplex
    to clear the limit on the rare degenerate programs that hit it.  Only a
    failure that exhausts the chain raises :class:`SolverError`.

    :func:`scipy.optimize.linprog` does not expose Farkas certificates, so
    infeasible results carry ``dual_ray=None`` and the certificate-guided
    milestone search degrades gracefully to its uncertified probe order
    (identical results, more LP solves).
    """

    name = "scipy"
    persistent = False

    def __init__(self, retry_policy: RetryPolicy | None = None):
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )

    def _solve(
        self,
        spec: LPSpec,
        *,
        method: str = "auto",
        key: Hashable | None = None,
        warm: WarmStartHint | None = None,
    ) -> LPResult:
        del key, warm  # one-shot backend: nothing to reuse
        if method == "auto":
            method = "highs-ipm" if spec.n_vars > 8000 else "highs"
        c = np.asarray(spec.objective)
        bounds = list(zip(spec.lower, spec.upper))
        a_ub = b_ub = a_eq = b_eq = None
        # Length checks, not truthiness: the builder may hand the RHS over
        # as numpy arrays (kernel-assembled blocks), where truthiness is
        # ambiguous.
        if len(spec.ub_rhs):
            a_ub = sparse.coo_matrix(
                (spec.ub_vals, (spec.ub_rows, spec.ub_cols)),
                shape=(len(spec.ub_rhs), spec.n_vars),
            ).tocsr()
            b_ub = np.asarray(spec.ub_rhs)
        if len(spec.eq_rhs):
            a_eq = sparse.coo_matrix(
                (spec.eq_vals, (spec.eq_rows, spec.eq_cols)),
                shape=(len(spec.eq_rhs), spec.n_vars),
            ).tocsr()
            b_eq = np.asarray(spec.eq_rhs)

        def run(chosen_method: str):
            return linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method=chosen_method,
            )

        # scipy status codes: 0 success, 1 iteration limit, 2 infeasible,
        # 3 unbounded, 4 numerical difficulties.  Status 1 walks the retry
        # policy's escalation chain; 2 is a certified answer, not a failure.
        result, attempts, used = solve_with_retries(
            run, method, policy=self.retry_policy
        )
        if result.status == 2:
            return self.infeasible_result(spec, result.message)
        if result.status != 0:
            raise SolverError(
                f"LP solver failed (status {result.status}): {result.message}",
                backend=self.name,
                method=used,
                status=int(result.status),
                attempts=attempts,
            )
        return LPResult(
            status=0,
            feasible=True,
            objective=float(result.fun),
            values=np.asarray(result.x),
            message=result.message,
        )
