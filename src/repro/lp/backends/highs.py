"""Persistent HiGHS backend: model reuse, delta updates, basis warm starts.

The milestone search and the System (2) re-optimization submit long runs of
closely-related LPs.  The one-shot scipy path rebuilds COO -> CSR ->
presolve -> factorize for every probe; this backend keeps solver state alive
at two levels instead:

* **Model reuse (delta updates).**  Solves submitted under the same
  persistence ``key`` share the exact constraint matrix, so the live
  ``Highs`` model is updated in place -- only changed objective
  coefficients, variable bounds and row bounds are pushed through the HiGHS
  modification API -- and ``run()`` hot-starts from the basis retained in
  the model.  This fires when a skeleton pattern recurs: System (2)
  inflation retries, and replans whose active set keeps the same epochal
  ordering.

* **Basis transplants.**  Consecutive probes whose matrices differ (the
  milestone gallop walks a lattice of interval structures; arrivals change
  the job set between replans) still describe almost the same scheduling
  problem.  Callers pass a :class:`~repro.lp.backends.base.WarmStartHint`
  carrying stable variable/row identities; the previous basis of the series
  is mapped through those identities onto the freshly built model before
  ``run()``.  A transplanted basis typically proves infeasibility or
  optimality in a handful of dual-simplex iterations instead of hundreds.

Bindings are resolved at import time from, in order of preference:

1. the optional ``highspy`` package (``pip install repro-stretch[highs]``),
2. the HiGHS bindings vendored by scipy >= 1.15
   (``scipy.optimize._highspy``), which expose the same pybind11 API.

When neither is importable, :func:`highs_available` returns False and
constructing :class:`HighsPersistentBackend` raises
:class:`~repro.core.errors.SolverError`; callers requesting backend
``"auto"`` fall back to the scipy backend instead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Hashable

import numpy as np
from scipy import sparse

from repro.core.errors import SolverError
from repro.lp.backends.base import (
    LPResult,
    LPSpec,
    SolverBackend,
    WarmStartHint,
    note_basis_reuse,
)

__all__ = [
    "HighsPersistentBackend",
    "highs_available",
    "highs_source",
    "highs_unavailable_reason",
]

#: Live models kept per backend instance.  One replan touches a handful of
#: milestone patterns; a small multiple of that bounds memory on long
#: campaigns without measurably hurting the hit rate (mirrors the skeleton
#: cache bound of :mod:`repro.lp.incremental`).
_MAX_MODELS = 16

_API: SimpleNamespace | None = None
_API_RESOLVED = False

#: Names the backend needs from the bindings.
_API_NAMES = (
    "HighsLp",
    "MatrixFormat",
    "ObjSense",
    "HighsModelStatus",
    "HighsStatus",
    "HighsBasis",
    "HighsBasisStatus",
)


def _namespace_from(module, highs_cls) -> SimpleNamespace | None:
    values = {}
    for name in _API_NAMES:
        value = getattr(module, name, None)
        if value is None:
            return None
        values[name] = value
    return SimpleNamespace(Highs=highs_cls, **values)


def _load_api() -> SimpleNamespace | None:
    """Resolve the HiGHS bindings once (highspy, then scipy's vendored copy)."""
    global _API, _API_RESOLVED
    if _API_RESOLVED:
        return _API
    _API_RESOLVED = True
    try:
        import highspy  # type: ignore[import-not-found]

        _API = _namespace_from(highspy, highspy.Highs)
        if _API is not None:
            _API.source = "highspy"
            return _API
    except ImportError:
        pass
    try:
        from scipy.optimize._highspy import _core  # type: ignore[import-not-found]

        _API = _namespace_from(_core, _core._Highs)
        if _API is not None:
            _API.source = "scipy-vendored"
    except ImportError:
        _API = None
    return _API


def highs_available() -> bool:
    """True when HiGHS bindings (highspy or scipy-vendored) are importable."""
    return _load_api() is not None


def highs_source() -> str | None:
    """Which bindings back the persistent backend ('highspy'/'scipy-vendored')."""
    api = _load_api()
    return api.source if api is not None else None


def highs_unavailable_reason() -> str | None:
    """Why no HiGHS bindings could be resolved (``None`` when they could).

    Distinguishes the two failure modes an operator can actually act on:
    ``highspy`` missing on an old scipy (install either), versus bindings
    that import but expose an incompatible API (upgrade them).  Mirrors the
    resolution order of :func:`_load_api`.
    """
    if _load_api() is not None:
        return None
    try:
        import highspy  # type: ignore[import-not-found]  # noqa: F401
    except ImportError:
        highspy_reason = "highspy is not installed"
    else:
        highspy_reason = (
            "highspy is installed but exposes an incompatible API"
            " (needs highspy >= 1.5)"
        )
    try:
        from scipy.optimize._highspy import _core  # type: ignore[import-not-found]  # noqa: F401
    except ImportError:
        import scipy

        vendored_reason = (
            f"scipy {scipy.__version__} does not vendor the HiGHS bindings"
            " (needs scipy >= 1.15)"
        )
    else:
        vendored_reason = "scipy's vendored HiGHS bindings expose an incompatible API"
    return f"{highspy_reason}, and {vendored_reason}"


@dataclass
class _ModelEntry:
    """A live HiGHS model plus the arrays it was last solved with."""

    highs: object
    n_vars: int
    n_rows: int
    nnz: int
    costs: np.ndarray
    col_lower: np.ndarray
    col_upper: np.ndarray
    row_lower: np.ndarray
    row_upper: np.ndarray


def _sorted_side(ids: np.ndarray, statuses) -> tuple[np.ndarray, np.ndarray]:
    """``(ids, statuses)`` sorted by id, statuses down-converted to int8."""
    values = np.fromiter(map(int, statuses), dtype=np.int8, count=len(statuses))
    order = np.argsort(ids, kind="stable")
    return ids[order], values[order]


def _map_statuses(
    prev_ids: np.ndarray,
    prev_status: np.ndarray,
    new_ids: np.ndarray,
    default: int,
) -> np.ndarray:
    """Statuses for ``new_ids``, inherited by identity (``default`` when new)."""
    if prev_ids.size == 0 or new_ids.size == 0:
        return np.full(new_ids.size, default, dtype=np.int8)
    pos = np.searchsorted(prev_ids, new_ids).clip(0, prev_ids.size - 1)
    out = prev_status[pos].copy()
    out[prev_ids[pos] != new_ids] = default
    return out


@dataclass
class _SeriesBasis:
    """The latest basis observed in a warm-start series.

    Identities and statuses are stored sorted by identity so that the
    transplant onto the next model is a single ``searchsorted`` per side.
    """

    col_ids: np.ndarray  # int64, sorted
    col_status: np.ndarray  # int8, aligned with col_ids
    row_ids: np.ndarray
    row_status: np.ndarray


class HighsPersistentBackend(SolverBackend):
    """Backend keeping live HiGHS models and bases across related solves.

    Parameters
    ----------
    max_models:
        Bound on the number of live models (least-recently-used eviction).

    Notes
    -----
    Solves submitted without a ``key`` go through a single scratch model that
    is re-passed wholesale each time (no reuse).  Keyed solves hit the
    modification API when their pattern is live, and freshly built models
    inherit the series basis through the caller's
    :class:`~repro.lp.backends.base.WarmStartHint` identities.
    """

    name = "highs"
    persistent = True

    def __init__(self, *, max_models: int = _MAX_MODELS):
        api = _load_api()
        if api is None:
            raise SolverError(
                "HiGHS backend requested but no bindings are available "
                f"({highs_unavailable_reason()}); "
                "install the optional dependency with "
                "`pip install repro-stretch[highs]` (or any highspy >= 1.5), "
                "or use --solver-backend scipy"
            )
        self._api = api
        self._max_models = max(1, int(max_models))
        self._models: OrderedDict[Hashable, _ModelEntry] = OrderedDict()
        self._series: dict[Hashable, _SeriesBasis] = {}
        self._scratch: object | None = None
        # int <-> HighsBasisStatus tables for the vectorized basis mapping.
        self._status_by_int = {
            int(member): member
            for member in api.HighsBasisStatus.__members__.values()
        }
        self._int_basic = int(api.HighsBasisStatus.kBasic)
        self._int_lower = int(api.HighsBasisStatus.kLower)
        #: Counters exposed for tests/benchmarks: how the solves were served.
        self.n_full_builds = 0
        self.n_delta_updates = 0
        self.n_basis_transplants = 0

    # -- SolverBackend interface ---------------------------------------------------
    def _solve(
        self,
        spec: LPSpec,
        *,
        method: str = "auto",
        key: Hashable | None = None,
        warm: WarmStartHint | None = None,
    ) -> LPResult:
        del method  # HiGHS picks simplex/IPM itself; warm starts force simplex
        if key is None:
            if self._scratch is None:
                self._scratch = self._new_solver()
            self._build_model(self._scratch, spec, self._arrays(spec))
            self.n_full_builds += 1
            return self._run(self._scratch, spec, warm=None)

        entry = self._models.get(key)
        if (
            entry is not None
            and entry.n_vars == spec.n_vars
            and entry.n_rows == spec.n_rows
            and entry.nnz == spec.nnz
        ):
            self._models.move_to_end(key)
            self._apply_deltas(entry, spec)
            self.n_delta_updates += 1
            note_basis_reuse()  # the live model keeps its basis across deltas
            return self._run(entry.highs, spec, warm=warm)
        solver = self._new_solver()
        if warm is not None:
            # Keyed solves feed a warm-start series.  Presolve would prove
            # the many infeasible milestone probes without ever running
            # simplex, leaving no basis to transplant into the next probe --
            # and a transplanted basis settles those probes in a handful of
            # iterations anyway, so simplex-only is the faster regime.
            solver.setOptionValue("presolve", "off")
        arrays = self._arrays(spec)
        highs = self._build_model(solver, spec, arrays)
        self._remember(key, highs, spec, arrays)
        self.n_full_builds += 1
        if warm is not None:
            self._transplant_basis(highs, spec, warm)
        return self._run(highs, spec, warm=warm)

    def close(self) -> None:
        """Drop every live model and basis (frees the HiGHS factorizations)."""
        self._models.clear()
        self._series.clear()
        self._scratch = None

    # -- series-state serialization (cross-run solver-state bank) -------------------
    def export_series_state(self) -> "dict | None":
        """Snapshot the retained warm-start series bases (see the bank).

        The payload holds plain numpy arrays only -- no live ``Highs``
        objects -- so it survives in the per-worker
        :class:`~repro.lp.bank.SolverStateBank` long after this backend is
        closed, and seeding a fresh backend from it is just array copies.
        """
        if not self._series:
            return None
        return {
            series: (
                basis.col_ids.copy(),
                basis.col_status.copy(),
                basis.row_ids.copy(),
                basis.row_status.copy(),
            )
            for series, basis in self._series.items()
        }

    def import_series_state(self, payload: "dict | None") -> None:
        """Seed the series bases from an :meth:`export_series_state` payload.

        Imported bases are transplanted exactly like bases captured by this
        backend's own solves: through the caller's stable identities, with
        HiGHS repairing any rank deficiency -- so a stale snapshot can only
        cost simplex iterations, never change an optimum.
        """
        if not payload:
            return
        for series, (col_ids, col_status, row_ids, row_status) in payload.items():
            self._series[series] = _SeriesBasis(
                np.array(col_ids, dtype=np.int64),
                np.array(col_status, dtype=np.int8),
                np.array(row_ids, dtype=np.int64),
                np.array(row_status, dtype=np.int8),
            )

    # -- model lifecycle -----------------------------------------------------------
    def _new_solver(self):
        highs = self._api.Highs()
        highs.setOptionValue("output_flag", False)
        return highs

    def _arrays(self, spec: LPSpec):
        """Cost/bound/RHS vectors of ``spec`` as fresh numpy arrays."""
        costs = np.asarray(spec.objective, dtype=np.float64)
        col_lower = np.asarray(spec.lower, dtype=np.float64)
        col_upper = np.asarray(spec.upper, dtype=np.float64)
        n_ub = len(spec.ub_rhs)
        row_lower = np.empty(spec.n_rows, dtype=np.float64)
        row_upper = np.empty(spec.n_rows, dtype=np.float64)
        row_lower[:n_ub] = -np.inf
        row_upper[:n_ub] = spec.ub_rhs
        row_lower[n_ub:] = spec.eq_rhs
        row_upper[n_ub:] = spec.eq_rhs
        return costs, col_lower, col_upper, row_lower, row_upper

    def _build_model(self, highs, spec: LPSpec, arrays):
        """Pass ``spec`` wholesale into ``highs`` (cold model, no basis)."""
        api = self._api
        costs, col_lower, col_upper, row_lower, row_upper = arrays
        n_ub = len(spec.ub_rhs)
        rows = np.concatenate(
            [
                np.asarray(spec.ub_rows, dtype=np.int64),
                np.asarray(spec.eq_rows, dtype=np.int64) + n_ub,
            ]
        )
        cols = np.concatenate(
            [
                np.asarray(spec.ub_cols, dtype=np.int64),
                np.asarray(spec.eq_cols, dtype=np.int64),
            ]
        )
        vals = np.concatenate(
            [
                np.asarray(spec.ub_vals, dtype=np.float64),
                np.asarray(spec.eq_vals, dtype=np.float64),
            ]
        )
        matrix = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(spec.n_rows, spec.n_vars)
        ).tocsc()

        lp = api.HighsLp()
        lp.num_col_ = spec.n_vars
        lp.num_row_ = spec.n_rows
        lp.col_cost_ = costs
        lp.col_lower_ = col_lower
        lp.col_upper_ = col_upper
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        lp.sense_ = api.ObjSense.kMinimize
        lp.a_matrix_.format_ = api.MatrixFormat.kColwise
        lp.a_matrix_.num_col_ = spec.n_vars
        lp.a_matrix_.num_row_ = spec.n_rows
        lp.a_matrix_.start_ = matrix.indptr.astype(np.int32)
        lp.a_matrix_.index_ = matrix.indices.astype(np.int32)
        lp.a_matrix_.value_ = matrix.data.astype(np.float64)
        status = highs.passModel(lp)
        if status == api.HighsStatus.kError:
            raise SolverError("HiGHS rejected the LP model")
        return highs

    def _remember(self, key: Hashable, highs, spec: LPSpec, arrays) -> None:
        costs, col_lower, col_upper, row_lower, row_upper = arrays
        self._models[key] = _ModelEntry(
            highs=highs,
            n_vars=spec.n_vars,
            n_rows=spec.n_rows,
            nnz=spec.nnz,
            costs=costs,
            col_lower=col_lower,
            col_upper=col_upper,
            row_lower=row_lower,
            row_upper=row_upper,
        )
        self._models.move_to_end(key)
        while len(self._models) > self._max_models:
            self._models.popitem(last=False)

    # -- delta updates ---------------------------------------------------------------
    def _apply_deltas(self, entry: _ModelEntry, spec: LPSpec) -> None:
        """Push only the changed coefficients into the live model.

        The caller's key contract guarantees the constraint matrix (pattern
        and values) is unchanged, so the deltas are confined to objective
        coefficients, variable bounds and row bounds -- none of which
        invalidate the basis held by the model.
        """
        highs = entry.highs
        costs, col_lower, col_upper, row_lower, row_upper = self._arrays(spec)

        changed = np.nonzero(entry.costs != costs)[0]
        if changed.size:
            highs.changeColsCost(
                changed.size, changed.astype(np.int32), costs[changed]
            )
            entry.costs = costs

        changed = np.nonzero(
            (entry.col_lower != col_lower) | (entry.col_upper != col_upper)
        )[0]
        if changed.size:
            highs.changeColsBounds(
                changed.size,
                changed.astype(np.int32),
                col_lower[changed],
                col_upper[changed],
            )
            entry.col_lower = col_lower
            entry.col_upper = col_upper

        changed = np.nonzero(
            (entry.row_lower != row_lower) | (entry.row_upper != row_upper)
        )[0]
        if changed.size:
            change_rows = getattr(highs, "changeRowsBounds", None)
            if change_rows is not None:  # plural form (recent highspy)
                change_rows(
                    changed.size,
                    changed.astype(np.int32),
                    row_lower[changed],
                    row_upper[changed],
                )
            else:  # scipy-vendored bindings only expose the scalar form
                for i in changed:
                    highs.changeRowBounds(
                        int(i), float(row_lower[i]), float(row_upper[i])
                    )
            entry.row_lower = row_lower
            entry.row_upper = row_upper

    # -- basis transplants ---------------------------------------------------------
    def _transplant_basis(self, highs, spec: LPSpec, warm: WarmStartHint) -> None:
        """Seed a freshly built model with the series' previous basis.

        Statuses are mapped through the caller-provided stable identities;
        columns/rows with no precedent start non-basic / basic-slack.  The
        mapped basis need not be exactly valid -- HiGHS repairs rank
        deficiencies -- so a partial overlap (e.g. after an arrival changed
        the job set) still short-circuits most simplex iterations.
        """
        prev = self._series.get(warm.series)
        if prev is None:
            return
        api = self._api
        basic = self._int_basic
        lower = self._int_lower
        col_status = _map_statuses(prev.col_ids, prev.col_status, warm.col_ids, lower)
        row_status = _map_statuses(prev.row_ids, prev.row_status, warm.row_ids, basic)

        # HiGHS rejects bases whose basic count differs from the row count,
        # which happens whenever the identity overlap is partial.  Repair
        # deterministically: demote surplus basic columns (latest first, the
        # columns of the latest intervals are the most speculative), then
        # promote row slacks to cover any deficit.
        excess = int((col_status == basic).sum() + (row_status == basic).sum())
        excess -= spec.n_rows
        if excess > 0:
            idx = np.nonzero(col_status == basic)[0]
            take = min(excess, idx.size)
            if take:
                col_status[idx[idx.size - take:]] = lower
                excess -= take
            if excess > 0:
                idx = np.nonzero(row_status == basic)[0]
                row_status[idx[idx.size - excess:]] = lower
        elif excess < 0:
            idx = np.nonzero(row_status != basic)[0][:-excess]
            row_status[idx] = basic

        lookup = self._status_by_int
        basis = api.HighsBasis()
        basis.col_status = [lookup[v] for v in col_status.tolist()]
        basis.row_status = [lookup[v] for v in row_status.tolist()]
        basis.valid = True
        if highs.setBasis(basis) != api.HighsStatus.kError:
            self.n_basis_transplants += 1
            note_basis_reuse()

    def _capture_basis(self, highs, warm: WarmStartHint) -> None:
        basis = highs.getBasis()
        if not getattr(basis, "valid", True):
            return
        col_status = basis.col_status
        row_status = basis.row_status
        if len(col_status) != warm.col_ids.size or len(row_status) != warm.row_ids.size:
            return
        self._series[warm.series] = _SeriesBasis(
            *_sorted_side(warm.col_ids, col_status),
            *_sorted_side(warm.row_ids, row_status),
        )

    # -- infeasibility certificates --------------------------------------------------
    def _extract_dual_ray(self, highs, spec: LPSpec) -> "np.ndarray | None":
        """The Farkas certificate of an infeasible solve, sign-normalized.

        HiGHS only has a dual ray when simplex proved the infeasibility (the
        warm-series models run with presolve off, so milestone probes
        qualify); when presolve concluded first -- or the bindings predate
        ``getDualRay`` -- ``None`` is returned and callers degrade to the
        uncertified search.  HiGHS reports the ray with multipliers that are
        non-positive on ``<=`` rows; it is negated here to match the
        :class:`~repro.lp.backends.base.LPResult` contract (non-negative
        multipliers on inequality rows, aggregated constraint violated from
        below).
        """
        get_exist = getattr(highs, "getDualRayExist", None)
        get_ray = getattr(highs, "getDualRay", None)
        if get_ray is None:
            return None
        try:
            if get_exist is not None:
                _status, exists = get_exist()
                if not exists:
                    return None
            _status, has_ray, ray = get_ray()
        except (TypeError, ValueError):  # unexpected binding signature
            return None
        if not has_ray:
            return None
        ray = -np.asarray(ray, dtype=np.float64)
        if ray.size != spec.n_rows or not np.all(np.isfinite(ray)):
            return None
        return ray

    # -- solve + status mapping --------------------------------------------------------
    def _run(self, highs, spec: LPSpec, warm: WarmStartHint | None) -> LPResult:
        api = self._api
        run_status = highs.run()
        model_status = highs.getModelStatus()
        if model_status == api.HighsModelStatus.kUnboundedOrInfeasible:
            # Presolve could not tell the two apart; disambiguate without it,
            # then restore whatever mode this model runs under (warm-series
            # models are deliberately created with presolve off).
            option = highs.getOptionValue("presolve")
            previous = option[1] if isinstance(option, tuple) else option
            highs.setOptionValue("presolve", "off")
            try:
                highs.run()
                model_status = highs.getModelStatus()
            finally:
                highs.setOptionValue("presolve", previous)
        if model_status == api.HighsModelStatus.kOptimal:
            if warm is not None:
                self._capture_basis(highs, warm)
            values = np.asarray(highs.getSolution().col_value, dtype=np.float64)
            return LPResult(
                status=0,
                feasible=True,
                objective=float(highs.getObjectiveValue()),
                values=values,
                message="Optimal (HiGHS persistent)",
            )
        if model_status == api.HighsModelStatus.kInfeasible:
            # The dual-ray basis of an infeasible probe is as good a warm
            # start for the neighbouring probes as an optimal one.
            if warm is not None:
                self._capture_basis(highs, warm)
            result = self.infeasible_result(spec, "Infeasible (HiGHS persistent)")
            result.dual_ray = self._extract_dual_ray(highs, spec)
            return result
        status_text = highs.modelStatusToString(model_status)
        raise SolverError(
            f"HiGHS solve failed (run status {run_status}, model status {status_text})"
        )
