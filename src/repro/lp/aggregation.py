"""Materialization of LP allocations into per-machine work slices.

The LPs of Systems (1) and (2) allocate *work amounts* per (interval,
resource, job); a resource is a capability class, i.e. a group of machines
hosting the same databanks.  This module turns those allocations into a
concrete :class:`~repro.core.schedule.Schedule`:

* inside an interval, the jobs allocated to a resource are serialized in a
  chosen order (any order is feasible because constraint (1c) guarantees that
  every allocated job's deadline is at or after the end of the interval);
* each job's serialized sub-interval is then spread across the physical
  machines of the class proportionally to their speeds, so the per-machine
  slices neither overlap nor exceed capacity.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.schedule import Schedule, WorkSlice
from repro.lp.maxstretch import MaxStretchSolution

__all__ = [
    "materialize_solution",
    "split_work_across_machines",
    "edf_order",
    "swrpt_terminal_order",
]

#: Work amounts smaller than this (absolute) are not materialized.
_WORK_EPS = 1e-9
#: Relative tolerance accepted when an interval's serialized content slightly
#: exceeds the interval length because of LP roundoff.
_OVERFLOW_TOL = 1e-6


OrderRule = Callable[
    [MaxStretchSolution, int, int, Sequence[tuple[int, float]]], list[tuple[int, float]]
]


def edf_order(
    solution: MaxStretchSolution,
    interval: int,
    resource: int,
    allocations: Sequence[tuple[int, float]],
) -> list[tuple[int, float]]:
    """Order jobs inside an interval by earliest deadline first (ties by id)."""
    return sorted(allocations, key=lambda item: (solution.deadline(item[0]), item[0]))


def swrpt_terminal_order(
    solution: MaxStretchSolution,
    interval: int,
    resource: int,
    allocations: Sequence[tuple[int, float]],
) -> list[tuple[int, float]]:
    """The ordering of the plain *Online* variant (Section 4.3.2, step 4).

    Jobs completing their share on this resource during this interval
    ("terminal jobs") come first, ordered by the SWRPT key (flow factor times
    remaining work, i.e. :math:`p_j\\,\\rho_t(j)` for stretch weights);
    non-terminal jobs follow, ordered by the interval in which their share on
    the resource completes.
    """
    terminal: list[tuple[int, float]] = []
    non_terminal: list[tuple[int, float]] = []
    for job_id, work in allocations:
        last = solution.completion_interval_on_resource(job_id, resource)
        if last is not None and last <= interval:
            terminal.append((job_id, work))
        else:
            non_terminal.append((job_id, work))

    def swrpt_key(item: tuple[int, float]) -> tuple[float, int]:
        job = solution.problem.job_by_id(item[0])
        return (job.flow_factor * job.remaining_work, item[0])

    def completion_key(item: tuple[int, float]) -> tuple[int, float, int]:
        job_id, _ = item
        last = solution.completion_interval_on_resource(job_id, resource)
        job = solution.problem.job_by_id(job_id)
        return (
            last if last is not None else len(solution.interval_bounds),
            job.flow_factor * job.remaining_work,
            job_id,
        )

    return sorted(terminal, key=swrpt_key) + sorted(non_terminal, key=completion_key)


def split_work_across_machines(
    instance: Instance,
    machine_ids: Sequence[int],
    job_id: int,
    start: float,
    end: float,
) -> list[WorkSlice]:
    """Dedicate the given machines to one job over ``[start, end]``.

    Every machine of the group is fully busy over the interval and processes
    work proportional to its speed; the total work equals the aggregate
    speed times the duration.
    """
    if end <= start:
        return []
    slices = []
    for machine_id in machine_ids:
        machine = instance.machine(machine_id)
        work = machine.speed * (end - start)
        if work <= _WORK_EPS:
            continue
        slices.append(
            WorkSlice(job_id=job_id, machine_id=machine_id, start=start, end=end, work=work)
        )
    return slices


def materialize_solution(
    solution: MaxStretchSolution,
    instance: Instance,
    *,
    order_rule: OrderRule = edf_order,
) -> Schedule:
    """Turn an LP allocation into a concrete schedule.

    Parameters
    ----------
    solution:
        The allocation to materialize.
    instance:
        The instance providing the physical machines behind each resource.
    order_rule:
        Serialization order of the jobs inside each (interval, resource);
        defaults to earliest deadline first, which is always feasible.
    """
    slices: list[WorkSlice] = []
    for t, (lo, hi) in enumerate(solution.interval_bounds):
        length = hi - lo
        if length <= 0:
            # Zero-length intervals can only carry zero work.
            continue
        per_resource: dict[int, list[tuple[int, float]]] = {}
        for (interval, resource, job_id), work in solution.allocations.items():
            if interval != t or work <= _WORK_EPS:
                continue
            per_resource.setdefault(resource, []).append((job_id, work))

        for resource_idx, allocations in sorted(per_resource.items()):
            resource = solution.problem.resources[resource_idx]
            ordered = order_rule(solution, t, resource_idx, allocations)
            total_duration = sum(work for _, work in ordered) / resource.speed
            scale = 1.0
            if total_duration > length:
                if total_duration > length * (1.0 + _OVERFLOW_TOL) + _OVERFLOW_TOL:
                    raise ScheduleError(
                        f"interval {t} on resource {resource_idx} overflows: "
                        f"needs {total_duration:.9f}s but only {length:.9f}s available"
                    )
                scale = length / total_duration
            cursor = lo
            for job_id, work in ordered:
                duration = (work / resource.speed) * scale
                if duration <= 0:
                    continue
                end = min(cursor + duration, hi)
                slices.extend(
                    split_work_across_machines(
                        instance, resource.machine_ids, job_id, cursor, end
                    )
                )
                cursor = end
    return Schedule(slices)
