"""Compiled replan kernels: the per-replan python, as array programs.

After the certificate search (PR 5) and the solver-state bank (PR 6) the
milestone search solves a median of ~1 LP per replan, so the replan floor
is no longer "how many LPs" but "how much python per probe": milestone
merging, interval-boundary ordering, ``JobTable`` delta application and the
COO scatter behind the builder's block APIs.  This module extracts those
loops into kernels with two executable tiers:

* **numpy** (always available): array-programmed implementations;
* **numba** (``pip install .[jit]``): the loop-carried kernels compiled with
  ``@njit(fastmath=False)`` -- no arithmetic reassociation, so both tiers
  are **bit-identical** by construction (enforced by
  ``tests/test_replan_kernels.py``).

The tier is chosen once at import time (numba when importable, numpy
otherwise); ``REPRO_KERNELS=numpy|numba|legacy`` overrides the choice, and
:func:`set_active_tier` switches it at runtime (used by the benchmarks).
The **legacy** tier keeps the pre-kernel pure-python implementations
verbatim: it is the reference every kernel is equality-tested against and
the baseline ``bench_overhead.py::bench_replan_latency`` measures the
kernel win from.

Every kernel preserves the historical float arithmetic operation-for-
operation (same IEEE ops per output element, no reordering), so replacing
the python loops changes *nothing* about results -- S* trajectories,
allocations and campaign record sets are bit-identical across tiers.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "KERNEL_NAMES",
    "active_tier",
    "available_tiers",
    "set_active_tier",
    "merge_close_milestones",
    "order_affine_boundaries",
    "active_jobs_delta",
    "scatter_capacity_sys1",
]

try:  # pragma: no cover - exercised only on the CI jit leg
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default dependency-light path
    _njit = None
    HAVE_NUMBA = False

#: Names of the dispatchable kernels (the test suite iterates this list so a
#: new kernel cannot land without its cross-tier equality test).
KERNEL_NAMES = (
    "merge_close_milestones",
    "order_affine_boundaries",
    "active_jobs_delta",
    "scatter_capacity_sys1",
)


# -- legacy tier: the pre-kernel python, kept verbatim as the reference --------------


def _merge_close_milestones_legacy(values: np.ndarray, tol: float) -> list[float]:
    """The historical sequential merge loop of ``enumerate_milestones``."""
    merged: list[float] = [float(values[0])]
    for v in values[1:]:
        if abs(v - merged[-1]) > tol * max(1.0, abs(v)):
            merged.append(float(v))
    return merged


def _order_affine_boundaries_legacy(
    consts: np.ndarray, coefs: np.ndarray, probe: float
) -> tuple[np.ndarray, np.ndarray]:
    """The historical dict-dedup + python-sorted boundary ordering."""
    seen: dict[tuple[float, float], int] = {}
    uniq: list[tuple[float, float]] = []
    for const, coef in zip(consts.tolist(), coefs.tolist()):
        key = (const, coef)
        if key not in seen:
            seen[key] = len(uniq)
            uniq.append(key)
    order = sorted(
        range(len(uniq)),
        key=lambda i: (uniq[i][0] + uniq[i][1] * probe, uniq[i][1], uniq[i][0]),
    )
    out_consts = np.array([uniq[i][0] for i in order], dtype=np.float64)
    out_coefs = np.array([uniq[i][1] for i in order], dtype=np.float64)
    return out_consts, out_coefs


def _active_jobs_delta_legacy(
    releases: np.ndarray,
    factors: np.ndarray,
    rem: np.ndarray,
    now: float,
    has_now: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The historical per-row active-job filter of ``_problem_from_job_table``."""
    idx_list: list[int] = []
    earliest: list[float] = []
    works: list[float] = []
    for i in range(releases.size):
        value = rem[i]
        if value <= 0.0:
            continue
        idx_list.append(i)
        release = releases[i]
        earliest.append(release if not has_now else max(release, now))
        works.append(float(value))
    idx = np.array(idx_list, dtype=np.int64)
    return (
        idx,
        np.array(earliest, dtype=np.float64),
        np.array(works, dtype=np.float64),
        releases[idx],
        factors[idx],
    )


def _scatter_capacity_sys1_legacy(
    entry_rows: np.ndarray,
    entry_cols: np.ndarray,
    len_const: np.ndarray,
    len_coef: np.ndarray,
    speeds: np.ndarray,
    offset: int,
    f_var: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The historical System (1) capacity-block scatter of ``_assemble_constraints``."""
    x_vals = np.ones(entry_cols.size, dtype=np.float64)
    f_coefs = -(speeds * len_coef)
    nonzero = np.nonzero(f_coefs)[0]
    rows = np.concatenate([entry_rows, nonzero])
    cols = np.concatenate(
        [entry_cols + offset, np.full(nonzero.size, f_var, dtype=np.int64)]
    )
    vals = np.concatenate([x_vals, f_coefs[nonzero]])
    rhs = speeds * len_const
    return rows, cols, vals, rhs


# -- numpy tier: array-programmed fallback (always available) ------------------------


def _merge_close_milestones_numpy(values: np.ndarray, tol: float) -> list[float]:
    # The merge condition compares each value against the last *kept* one, a
    # loop-carried dependency.  But merges only fire on near-duplicates
    # (relative tol, default 1e-12), so in the overwhelmingly common case the
    # vectorized adjacent-difference test proves that nothing merges -- and
    # then "last kept" == "previous element" and the whole array survives
    # verbatim.  Any failing pair falls back to the exact sequential loop.
    gaps = np.abs(values[1:] - values[:-1]) > tol * np.maximum(1.0, np.abs(values[1:]))
    if bool(gaps.all()):
        return values.tolist()
    return _merge_close_milestones_legacy(values, tol)


def _order_affine_boundaries_numpy(
    consts: np.ndarray, coefs: np.ndarray, probe: float
) -> tuple[np.ndarray, np.ndarray]:
    # Sort by (value at probe, coef, const); exact duplicates -- equal
    # (const, coef) pairs, hence equal full keys -- land adjacent and are
    # dropped.  Distinct pairs always differ in the full key (equal value and
    # equal coef force equal const), so the order is total and matches the
    # legacy first-occurrence-then-sort result exactly.
    values = consts + coefs * probe
    order = np.lexsort((consts, coefs, values))
    c = consts[order]
    k = coefs[order]
    keep = np.empty(order.size, dtype=bool)
    if order.size:
        keep[0] = True
        np.logical_or(c[1:] != c[:-1], k[1:] != k[:-1], out=keep[1:])
    return c[keep], k[keep]


def _active_jobs_delta_numpy(
    releases: np.ndarray,
    factors: np.ndarray,
    rem: np.ndarray,
    now: float,
    has_now: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    idx = np.nonzero(rem > 0.0)[0]
    rel = releases[idx]
    earliest = np.maximum(rel, now) if has_now else rel.copy()
    return idx, earliest, rem[idx], rel, factors[idx]


_scatter_capacity_sys1_numpy = _scatter_capacity_sys1_legacy


# -- numba tier: the loop-carried kernels, compiled ----------------------------------

if HAVE_NUMBA:  # pragma: no cover - exercised only on the CI jit leg

    @_njit(cache=True, fastmath=False)
    def _merge_close_milestones_jit_core(values: np.ndarray, tol: float) -> np.ndarray:
        out = np.empty(values.size, dtype=np.float64)
        out[0] = values[0]
        n = 1
        for i in range(1, values.size):
            v = values[i]
            limit = abs(v)
            if limit < 1.0:
                limit = 1.0
            if abs(v - out[n - 1]) > tol * limit:
                out[n] = v
                n += 1
        return out[:n]

    def _merge_close_milestones_numba(values: np.ndarray, tol: float) -> list[float]:
        return _merge_close_milestones_jit_core(values, float(tol)).tolist()

    @_njit(cache=True, fastmath=False)
    def _active_jobs_delta_numba(
        releases: np.ndarray,
        factors: np.ndarray,
        rem: np.ndarray,
        now: float,
        has_now: bool,
    ):
        n = releases.size
        idx = np.empty(n, dtype=np.int64)
        earliest = np.empty(n, dtype=np.float64)
        works = np.empty(n, dtype=np.float64)
        rel = np.empty(n, dtype=np.float64)
        fac = np.empty(n, dtype=np.float64)
        count = 0
        for i in range(n):
            value = rem[i]
            if value <= 0.0:
                continue
            release = releases[i]
            idx[count] = i
            rel[count] = release
            fac[count] = factors[i]
            works[count] = value
            earliest[count] = max(release, now) if has_now else release
            count += 1
        return idx[:count], earliest[:count], works[:count], rel[:count], fac[:count]

    @_njit(cache=True, fastmath=False)
    def _scatter_capacity_sys1_numba(
        entry_rows: np.ndarray,
        entry_cols: np.ndarray,
        len_const: np.ndarray,
        len_coef: np.ndarray,
        speeds: np.ndarray,
        offset: int,
        f_var: int,
    ):
        n_entries = entry_cols.size
        n_rows = speeds.size
        f_coefs = np.empty(n_rows, dtype=np.float64)
        n_nonzero = 0
        for r in range(n_rows):
            coef = -(speeds[r] * len_coef[r])
            f_coefs[r] = coef
            if coef != 0.0:
                n_nonzero += 1
        total = n_entries + n_nonzero
        rows = np.empty(total, dtype=np.int64)
        cols = np.empty(total, dtype=np.int64)
        vals = np.empty(total, dtype=np.float64)
        rhs = np.empty(n_rows, dtype=np.float64)
        for e in range(n_entries):
            rows[e] = entry_rows[e]
            cols[e] = entry_cols[e] + offset
            vals[e] = 1.0
        pos = n_entries
        for r in range(n_rows):
            rhs[r] = speeds[r] * len_const[r]
            if f_coefs[r] != 0.0:
                rows[pos] = r
                cols[pos] = f_var
                vals[pos] = f_coefs[r]
                pos += 1
        return rows, cols, vals, rhs

    # Boundary ordering pivots on np.lexsort (not supported by numba); the
    # numpy form is already a pure array program, so the compiled tier
    # shares it.
    _order_affine_boundaries_numba = _order_affine_boundaries_numpy


_TIERS: dict[str, dict[str, object]] = {
    "legacy": {
        "merge_close_milestones": _merge_close_milestones_legacy,
        "order_affine_boundaries": _order_affine_boundaries_legacy,
        "active_jobs_delta": _active_jobs_delta_legacy,
        "scatter_capacity_sys1": _scatter_capacity_sys1_legacy,
    },
    "numpy": {
        "merge_close_milestones": _merge_close_milestones_numpy,
        "order_affine_boundaries": _order_affine_boundaries_numpy,
        "active_jobs_delta": _active_jobs_delta_numpy,
        "scatter_capacity_sys1": _scatter_capacity_sys1_numpy,
    },
}
if HAVE_NUMBA:  # pragma: no cover - exercised only on the CI jit leg
    _TIERS["numba"] = {
        "merge_close_milestones": _merge_close_milestones_numba,
        "order_affine_boundaries": _order_affine_boundaries_numba,
        "active_jobs_delta": _active_jobs_delta_numba,
        "scatter_capacity_sys1": _scatter_capacity_sys1_numba,
    }


def available_tiers() -> tuple[str, ...]:
    """The kernel tiers importable in this process, fastest last."""
    return tuple(_TIERS)


def _default_tier() -> str:
    forced = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if forced:
        if forced not in _TIERS:
            known = ", ".join(sorted(_TIERS))
            raise ValueError(
                f"REPRO_KERNELS={forced!r} is not an available kernel tier ({known})"
            )
        return forced
    return "numba" if HAVE_NUMBA else "numpy"


_ACTIVE_TIER = _default_tier()


def active_tier() -> str:
    """The kernel tier currently dispatched (``numba`` | ``numpy`` | ``legacy``)."""
    return _ACTIVE_TIER


def set_active_tier(tier: str) -> str:
    """Switch the dispatched kernel tier; returns the previous one.

    Results are bit-identical across tiers by construction -- switching only
    changes speed.  Used by the equality tests and by
    ``bench_overhead.py::bench_replan_latency`` to measure the kernel win
    against the ``legacy`` reference.
    """
    global _ACTIVE_TIER
    if tier not in _TIERS:
        known = ", ".join(sorted(_TIERS))
        raise ValueError(f"unknown kernel tier {tier!r} (available: {known})")
    previous = _ACTIVE_TIER
    _ACTIVE_TIER = tier
    return previous


def kernel(name: str, tier: str | None = None):
    """The implementation of kernel ``name`` in ``tier`` (active tier default)."""
    return _TIERS[tier or _ACTIVE_TIER][name]


# -- dispatching entry points (the call sites bind these) ----------------------------


def merge_close_milestones(values: np.ndarray, tol: float) -> list[float]:
    """Merge sorted candidate milestones closer than relative ``tol``.

    Keeps the first member of every close cluster, comparing each candidate
    against the last *kept* value -- exactly the historical sequential loop.
    ``values`` must be sorted, non-empty, float64.
    """
    return _TIERS[_ACTIVE_TIER]["merge_close_milestones"](values, tol)


def order_affine_boundaries(
    consts: np.ndarray, coefs: np.ndarray, probe: float
) -> tuple[np.ndarray, np.ndarray]:
    """Dedup affine boundaries ``const + coef*F`` and sort for the structure.

    Returns the distinct ``(const, coef)`` pairs ordered by (value at
    ``probe``, coef, const) -- the deterministic boundary order of
    :func:`repro.lp.intervals.build_interval_structure`.
    """
    return _TIERS[_ACTIVE_TIER]["order_affine_boundaries"](consts, coefs, probe)


def active_jobs_delta(
    releases: np.ndarray,
    factors: np.ndarray,
    rem: np.ndarray,
    now: float | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Apply a remaining-work delta to the :class:`~repro.lp.problem.JobTable`.

    Returns ``(row indices, earliest starts, remaining works, releases,
    flow factors)`` of the active rows (``rem > 0``), with earliest starts
    clamped to ``now`` when given -- the replan fast path of
    ``problem_from_instance``.
    """
    has_now = now is not None
    return _TIERS[_ACTIVE_TIER]["active_jobs_delta"](
        releases, factors, rem, float(now) if has_now else 0.0, has_now
    )


def scatter_capacity_sys1(
    entry_rows: np.ndarray,
    entry_cols: np.ndarray,
    len_const: np.ndarray,
    len_coef: np.ndarray,
    speeds: np.ndarray,
    offset: int,
    f_var: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build the System (1) capacity block ``(rows, cols, vals, rhs)`` in COO form.

    The x entries carry coefficient 1 on their skeleton positions (shifted by
    ``offset``); the objective column ``f_var`` receives ``-speed *
    length.coef`` on rows where that is nonzero; the RHS is ``speed *
    length.const``.
    """
    return _TIERS[_ACTIVE_TIER]["scatter_capacity_sys1"](
        entry_rows, entry_cols, len_const, len_coef, speeds, int(offset), int(f_var)
    )
