"""Epochal times and interval structures (Section 4.3.1).

For a given objective value :math:`\\mathcal{F}`, the *epochal times* are the
release dates (earliest start dates) and the deadlines
:math:`\\bar d_j(\\mathcal{F})`.  Between two consecutive milestones the
relative order of these points does not depend on :math:`\\mathcal{F}`, so the
time axis decomposes into intervals whose bounds are affine functions of the
objective.  The linear programs of Systems (1) and (2) are written on this
fixed interval structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.lp import kernels
from repro.lp.problem import Affine, MaxStretchProblem

__all__ = ["IntervalStructure", "build_interval_structure"]


@dataclass(frozen=True)
class IntervalStructure:
    """The ordered epochal boundaries for one milestone interval.

    Attributes
    ----------
    boundaries:
        Distinct affine epochal times, sorted by their value at :attr:`probe`.
    probe:
        The objective value used to fix the ordering (any value strictly
        inside the milestone interval under consideration).
    job_start_index:
        For each job, the index of the boundary equal to its earliest start.
    job_deadline_index:
        For each job, the index of the boundary equal to its deadline.
    """

    boundaries: tuple[Affine, ...]
    probe: float
    job_start_index: dict[int, int]
    job_deadline_index: dict[int, int]

    @property
    def n_intervals(self) -> int:
        """Number of elementary intervals (= number of boundaries - 1)."""
        return max(0, len(self.boundaries) - 1)

    def interval(self, index: int) -> tuple[Affine, Affine]:
        """The (lower, upper) affine bounds of interval ``index``."""
        return self.boundaries[index], self.boundaries[index + 1]

    def interval_length(self, index: int) -> Affine:
        """The length of interval ``index`` as an affine function of the objective."""
        lower, upper = self.interval(index)
        return upper - lower

    def bounds_at(self, objective: float) -> list[tuple[float, float]]:
        """All interval bounds evaluated at ``objective``."""
        values = [b.at(objective) for b in self.boundaries]
        return [(values[i], values[i + 1]) for i in range(self.n_intervals)]

    def job_intervals(self, job_id: int) -> range:
        """Indices of the intervals in which the job may be processed.

        Interval ``t`` spans boundaries ``t`` and ``t+1``; the job may be
        processed there when the interval starts no earlier than its earliest
        start and ends no later than its deadline (constraints (1b)/(1c)).
        """
        return range(self.job_start_index[job_id], self.job_deadline_index[job_id])


def build_interval_structure(problem: MaxStretchProblem, probe: float) -> IntervalStructure:
    """Build the interval structure valid around objective value ``probe``.

    ``probe`` must lie strictly inside a milestone interval for the resulting
    ordering to be valid on that whole interval; at a milestone itself the
    ordering of coincident points is arbitrary, which only introduces
    zero-length intervals and does not affect feasibility.
    """
    if probe < 0:
        raise ModelError(f"probe objective must be non-negative, got {probe}")

    # The candidate boundaries are the job starts (constant affines) and the
    # deadlines (slope = flow factor); the kernel dedups the distinct
    # (const, coef) pairs and sorts them by value at the probe, ties broken
    # by slope then offset so that the ordering is deterministic.
    n = problem.n_jobs
    starts, releases, factors = problem.job_vectors()
    consts = np.concatenate([starts, releases])
    coefs = np.concatenate([np.zeros(n, dtype=np.float64), factors])
    b_consts, b_coefs = kernels.order_affine_boundaries(consts, coefs, probe)

    sorted_boundaries = tuple(
        Affine(const, coef) for const, coef in zip(b_consts.tolist(), b_coefs.tolist())
    )
    index_of = {
        (fn.const, fn.coef): idx for idx, fn in enumerate(sorted_boundaries)
    }

    job_start_index = {
        job.job_id: index_of[(job.earliest_start, 0.0)] for job in problem.jobs
    }
    job_deadline_index = {
        job.job_id: index_of[(job.release, job.flow_factor)] for job in problem.jobs
    }

    return IntervalStructure(
        boundaries=sorted_boundaries,
        probe=probe,
        job_start_index=job_start_index,
        job_deadline_index=job_deadline_index,
    )
