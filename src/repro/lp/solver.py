"""A sparse-friendly LP builder in front of the pluggable solver backends.

The LPs built by :mod:`repro.lp.maxstretch` and :mod:`repro.lp.relaxation`
are sparse (each variable appears in exactly one capacity constraint and one
completeness constraint), so constraints are accumulated in COO form; the
actual solve is delegated to a :mod:`repro.lp.backends` backend -- the
one-shot scipy path by default, or the persistent HiGHS backend that reuses
factorized models across milestone probes.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.errors import SolverError
from repro.lp.backends import (
    LPResult,
    LPSpec,
    SolverBackend,
    WarmStartHint,
    default_backend,
)

__all__ = ["LinearProgramBuilder", "LPResult"]


class LinearProgramBuilder:
    """Incrementally build ``min c.x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, lb <= x <= ub``.

    Two accumulation modes share the same program: the scalar methods
    (:meth:`add_variable`, :meth:`add_leq`, :meth:`add_eq`) append one
    variable/row at a time, while the vectorized block methods
    (:meth:`add_variables`, :meth:`add_leq_block`, :meth:`add_eq_block`)
    append whole numpy COO blocks at once -- the hot path of the skeleton
    assembly in :mod:`repro.lp.maxstretch`, where per-entry Python loops
    used to dominate the constraint-building cost.  :meth:`spec` splices
    both into one read-only view for the backend.
    """

    def __init__(self) -> None:
        self._n_vars = 0
        self._objective: list[float] = []
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._names: dict[int, str] = {}
        # COO triplets for inequality / equality constraint matrices: scalar
        # appends go to the lists, block appends to the chunk lists; spec()
        # concatenates (block rows are offset at append time, so the two
        # modes interleave correctly).
        self._ub_rows: list[int] = []
        self._ub_cols: list[int] = []
        self._ub_vals: list[float] = []
        self._eq_rows: list[int] = []
        self._eq_cols: list[int] = []
        self._eq_vals: list[float] = []
        # Right-hand sides in row order, as alternating parts: mutable
        # list-of-float tails fed by the scalar methods and float64 block
        # arrays appended as-is (no per-row tolist round trip); spec()
        # splices them.
        self._ub_rhs_parts: list["list[float] | np.ndarray"] = []
        self._eq_rhs_parts: list["list[float] | np.ndarray"] = []
        self._n_ub_rows = 0
        self._n_eq_rows = 0
        self._ub_chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._eq_chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

    # -- variables -----------------------------------------------------------
    def add_variable(
        self,
        *,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: float = np.inf,
        name: str = "",
    ) -> int:
        """Register a variable and return its index."""
        index = self._n_vars
        self._n_vars += 1
        self._objective.append(float(objective))
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        if name:
            self._names[index] = name
        return index

    def add_variables(
        self,
        count: int,
        *,
        objective: "Sequence[float] | np.ndarray | None" = None,
        lower: float = 0.0,
        upper: float = np.inf,
    ) -> int:
        """Register ``count`` variables at once; returns the first index.

        ``objective`` optionally carries per-variable objective coefficients
        (length ``count``); bounds are uniform.  Names are synthesized
        lazily by :meth:`variable_name`.
        """
        if count < 0:
            raise SolverError(f"cannot add {count} variables")
        first = self._n_vars
        self._n_vars += count
        if objective is None:
            self._objective.extend([0.0] * count)
        else:
            if len(objective) != count:
                raise SolverError(
                    f"objective block has {len(objective)} coefficients for {count} variables"
                )
            self._objective.extend(np.asarray(objective, dtype=np.float64).tolist())
        self._lower.extend([float(lower)] * count)
        self._upper.extend([float(upper)] * count)
        return first

    @property
    def n_variables(self) -> int:
        return self._n_vars

    def variable_name(self, index: int) -> str:
        return self._names.get(index, f"x{index}")

    # -- constraints ------------------------------------------------------------
    def add_leq(self, terms: Sequence[tuple[int, float]], rhs: float) -> int:
        """Add ``sum coef * x[idx] <= rhs``; returns the constraint row index."""
        row = self._n_ub_rows
        for idx, coef in terms:
            self._check_var(idx)
            if coef != 0.0:
                self._ub_rows.append(row)
                self._ub_cols.append(idx)
                self._ub_vals.append(float(coef))
        self._append_rhs_scalar(self._ub_rhs_parts, rhs)
        self._n_ub_rows += 1
        return row

    def add_eq(self, terms: Sequence[tuple[int, float]], rhs: float) -> int:
        """Add ``sum coef * x[idx] == rhs``; returns the constraint row index."""
        row = self._n_eq_rows
        for idx, coef in terms:
            self._check_var(idx)
            if coef != 0.0:
                self._eq_rows.append(row)
                self._eq_cols.append(idx)
                self._eq_vals.append(float(coef))
        self._append_rhs_scalar(self._eq_rhs_parts, rhs)
        self._n_eq_rows += 1
        return row

    def add_leq_block(
        self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, rhs: np.ndarray
    ) -> int:
        """Append ``len(rhs)`` inequality rows from COO arrays; returns the first row index.

        ``rows`` is 0-based *within the block* (entries for block row ``i``
        land on program row ``first + i``); zero coefficients must already be
        filtered out by the caller (the skeleton caches do), matching the
        scalar path's sparsity.  Column indices are range-checked as a block.
        """
        first, n_rows = self._append_block(
            self._ub_chunks, self._ub_rhs_parts, self._n_ub_rows, rows, cols, vals, rhs
        )
        self._n_ub_rows += n_rows
        return first

    def add_eq_block(
        self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, rhs: np.ndarray
    ) -> int:
        """Append ``len(rhs)`` equality rows from COO arrays; returns the first row index."""
        first, n_rows = self._append_block(
            self._eq_chunks, self._eq_rhs_parts, self._n_eq_rows, rows, cols, vals, rhs
        )
        self._n_eq_rows += n_rows
        return first

    @staticmethod
    def _append_rhs_scalar(parts: "list[list[float] | np.ndarray]", rhs: float) -> None:
        tail = parts[-1] if parts and isinstance(parts[-1], list) else None
        if tail is None:
            tail = []
            parts.append(tail)
        tail.append(float(rhs))

    def _append_block(self, chunks, rhs_parts, first, rows, cols, vals, rhs) -> tuple[int, int]:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        rhs = np.asarray(rhs, dtype=np.float64)
        if not (rows.size == cols.size == vals.size):
            raise SolverError("COO block arrays must have equal lengths")
        if cols.size and (cols.min() < 0 or cols.max() >= self._n_vars):
            raise SolverError("COO block references unknown variable indices")
        if rows.size and (rows.min() < 0 or rows.max() >= rhs.size):
            raise SolverError("COO block row indices exceed the block's row count")
        chunks.append((rows + first, cols, vals))
        # The RHS array is kept whole, in row order with the scalar tails,
        # so the two modes may interleave freely without a per-row round
        # trip through python floats.
        rhs_parts.append(rhs)
        return first, int(rhs.size)

    def _check_var(self, idx: int) -> None:
        if not (0 <= idx < self._n_vars):
            raise SolverError(f"unknown variable index {idx}")

    # -- solve ---------------------------------------------------------------------
    @staticmethod
    def _merge(scalars: "list", chunks: "list[tuple]", pick: int, dtype) -> "Sequence":
        """Scalar-mode list + block chunks spliced into one COO triplet array."""
        if not chunks:
            return scalars
        parts = [np.asarray(scalars, dtype=dtype)] if scalars else []
        parts.extend(chunk[pick] for chunk in chunks)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    @staticmethod
    def _merge_rhs(parts: "list[list[float] | np.ndarray]") -> "Sequence[float]":
        """Splice the RHS parts (scalar tails + block arrays) in row order."""
        if not parts:
            return []
        if len(parts) == 1:
            return parts[0]
        return np.concatenate([np.asarray(p, dtype=np.float64) for p in parts])

    def spec(self) -> LPSpec:
        """A read-only view of the accumulated program for a solver backend.

        Scalar-mode entries always precede block entries of the same family
        in the COO triplet order, but their *row indices* were assigned at
        append time, so the program is identical no matter how the two modes
        interleave (backends canonicalize through CSR/CSC anyway).
        """
        return LPSpec(
            n_vars=self._n_vars,
            objective=self._objective,
            lower=self._lower,
            upper=self._upper,
            ub_rows=self._merge(self._ub_rows, self._ub_chunks, 0, np.int64),
            ub_cols=self._merge(self._ub_cols, self._ub_chunks, 1, np.int64),
            ub_vals=self._merge(self._ub_vals, self._ub_chunks, 2, np.float64),
            ub_rhs=self._merge_rhs(self._ub_rhs_parts),
            eq_rows=self._merge(self._eq_rows, self._eq_chunks, 0, np.int64),
            eq_cols=self._merge(self._eq_cols, self._eq_chunks, 1, np.int64),
            eq_vals=self._merge(self._eq_vals, self._eq_chunks, 2, np.float64),
            eq_rhs=self._merge_rhs(self._eq_rhs_parts),
        )

    def solve(
        self,
        *,
        method: str = "auto",
        backend: SolverBackend | None = None,
        key: Hashable | None = None,
        warm: WarmStartHint | None = None,
    ) -> LPResult:
        """Run the LP; returns an :class:`LPResult` (``feasible`` False when infeasible).

        Parameters
        ----------
        method:
            Solver method hint.  The scipy backend passes it to
            :func:`scipy.optimize.linprog` (``"auto"`` picks HiGHS dual
            simplex for small programs and the interior-point method for
            large ones); the persistent HiGHS backend ignores it.
        backend:
            The :class:`~repro.lp.backends.SolverBackend` to solve with;
            ``None`` uses the process-wide default (one-shot scipy).
        key:
            Persistence key for backends that reuse live models: two solves
            submitted under the same key MUST share the exact constraint
            matrix (sparsity pattern and values) -- only costs, variable
            bounds and row RHS may differ.  Ignored by one-shot backends.
        warm:
            Optional :class:`~repro.lp.backends.WarmStartHint` carrying
            stable variable/row identities so a persistent backend can
            transplant the previous basis of the same series onto a freshly
            built model.  Ignored by one-shot backends.

        Raises :class:`SolverError` for unexpected solver failures (numerical
        breakdown, unboundedness, ...), but *not* for plain infeasibility,
        which is an expected outcome during the milestone binary search.
        """
        if self._n_vars == 0:
            return LPResult(status=0, feasible=True, objective=0.0, values=np.zeros(0))
        if backend is None:
            backend = default_backend()
        return backend.solve(self.spec(), method=method, key=key, warm=warm)
