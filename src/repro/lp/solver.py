"""A sparse-friendly LP builder in front of the pluggable solver backends.

The LPs built by :mod:`repro.lp.maxstretch` and :mod:`repro.lp.relaxation`
are sparse (each variable appears in exactly one capacity constraint and one
completeness constraint), so constraints are accumulated in COO form; the
actual solve is delegated to a :mod:`repro.lp.backends` backend -- the
one-shot scipy path by default, or the persistent HiGHS backend that reuses
factorized models across milestone probes.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.errors import SolverError
from repro.lp.backends import (
    LPResult,
    LPSpec,
    SolverBackend,
    WarmStartHint,
    default_backend,
)

__all__ = ["LinearProgramBuilder", "LPResult"]


class LinearProgramBuilder:
    """Incrementally build ``min c.x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, lb <= x <= ub``."""

    def __init__(self) -> None:
        self._n_vars = 0
        self._objective: list[float] = []
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._names: list[str] = []
        # COO triplets for inequality / equality constraint matrices.
        self._ub_rows: list[int] = []
        self._ub_cols: list[int] = []
        self._ub_vals: list[float] = []
        self._ub_rhs: list[float] = []
        self._eq_rows: list[int] = []
        self._eq_cols: list[int] = []
        self._eq_vals: list[float] = []
        self._eq_rhs: list[float] = []

    # -- variables -----------------------------------------------------------
    def add_variable(
        self,
        *,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: float = np.inf,
        name: str = "",
    ) -> int:
        """Register a variable and return its index."""
        index = self._n_vars
        self._n_vars += 1
        self._objective.append(float(objective))
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._names.append(name or f"x{index}")
        return index

    @property
    def n_variables(self) -> int:
        return self._n_vars

    def variable_name(self, index: int) -> str:
        return self._names[index]

    # -- constraints ------------------------------------------------------------
    def add_leq(self, terms: Sequence[tuple[int, float]], rhs: float) -> int:
        """Add ``sum coef * x[idx] <= rhs``; returns the constraint row index."""
        row = len(self._ub_rhs)
        for idx, coef in terms:
            self._check_var(idx)
            if coef != 0.0:
                self._ub_rows.append(row)
                self._ub_cols.append(idx)
                self._ub_vals.append(float(coef))
        self._ub_rhs.append(float(rhs))
        return row

    def add_eq(self, terms: Sequence[tuple[int, float]], rhs: float) -> int:
        """Add ``sum coef * x[idx] == rhs``; returns the constraint row index."""
        row = len(self._eq_rhs)
        for idx, coef in terms:
            self._check_var(idx)
            if coef != 0.0:
                self._eq_rows.append(row)
                self._eq_cols.append(idx)
                self._eq_vals.append(float(coef))
        self._eq_rhs.append(float(rhs))
        return row

    def _check_var(self, idx: int) -> None:
        if not (0 <= idx < self._n_vars):
            raise SolverError(f"unknown variable index {idx}")

    # -- solve ---------------------------------------------------------------------
    def spec(self) -> LPSpec:
        """A read-only view of the accumulated program for a solver backend."""
        return LPSpec(
            n_vars=self._n_vars,
            objective=self._objective,
            lower=self._lower,
            upper=self._upper,
            ub_rows=self._ub_rows,
            ub_cols=self._ub_cols,
            ub_vals=self._ub_vals,
            ub_rhs=self._ub_rhs,
            eq_rows=self._eq_rows,
            eq_cols=self._eq_cols,
            eq_vals=self._eq_vals,
            eq_rhs=self._eq_rhs,
        )

    def solve(
        self,
        *,
        method: str = "auto",
        backend: SolverBackend | None = None,
        key: Hashable | None = None,
        warm: WarmStartHint | None = None,
    ) -> LPResult:
        """Run the LP; returns an :class:`LPResult` (``feasible`` False when infeasible).

        Parameters
        ----------
        method:
            Solver method hint.  The scipy backend passes it to
            :func:`scipy.optimize.linprog` (``"auto"`` picks HiGHS dual
            simplex for small programs and the interior-point method for
            large ones); the persistent HiGHS backend ignores it.
        backend:
            The :class:`~repro.lp.backends.SolverBackend` to solve with;
            ``None`` uses the process-wide default (one-shot scipy).
        key:
            Persistence key for backends that reuse live models: two solves
            submitted under the same key MUST share the exact constraint
            matrix (sparsity pattern and values) -- only costs, variable
            bounds and row RHS may differ.  Ignored by one-shot backends.
        warm:
            Optional :class:`~repro.lp.backends.WarmStartHint` carrying
            stable variable/row identities so a persistent backend can
            transplant the previous basis of the same series onto a freshly
            built model.  Ignored by one-shot backends.

        Raises :class:`SolverError` for unexpected solver failures (numerical
        breakdown, unboundedness, ...), but *not* for plain infeasibility,
        which is an expected outcome during the milestone binary search.
        """
        if self._n_vars == 0:
            return LPResult(status=0, feasible=True, objective=0.0, values=np.zeros(0))
        if backend is None:
            backend = default_backend()
        return backend.solve(self.spec(), method=method, key=key, warm=warm)
