"""A thin, sparse-friendly wrapper around :func:`scipy.optimize.linprog`.

The LPs built by :mod:`repro.lp.maxstretch` and :mod:`repro.lp.relaxation`
are sparse (each variable appears in exactly one capacity constraint and one
completeness constraint), so constraints are accumulated in COO form and
converted to CSR before the HiGHS call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.errors import SolverError

__all__ = ["LinearProgramBuilder", "LPResult"]


@dataclass
class LPResult:
    """Outcome of a linear program solve."""

    status: int
    feasible: bool
    objective: float
    values: np.ndarray
    message: str = ""

    def value(self, index: int) -> float:
        """Value of variable ``index`` in the optimal solution."""
        return float(self.values[index])


class LinearProgramBuilder:
    """Incrementally build ``min c.x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, lb <= x <= ub``."""

    def __init__(self) -> None:
        self._n_vars = 0
        self._objective: list[float] = []
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._names: list[str] = []
        # COO triplets for inequality / equality constraint matrices.
        self._ub_rows: list[int] = []
        self._ub_cols: list[int] = []
        self._ub_vals: list[float] = []
        self._ub_rhs: list[float] = []
        self._eq_rows: list[int] = []
        self._eq_cols: list[int] = []
        self._eq_vals: list[float] = []
        self._eq_rhs: list[float] = []

    # -- variables -----------------------------------------------------------
    def add_variable(
        self,
        *,
        objective: float = 0.0,
        lower: float = 0.0,
        upper: float = np.inf,
        name: str = "",
    ) -> int:
        """Register a variable and return its index."""
        index = self._n_vars
        self._n_vars += 1
        self._objective.append(float(objective))
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._names.append(name or f"x{index}")
        return index

    @property
    def n_variables(self) -> int:
        return self._n_vars

    def variable_name(self, index: int) -> str:
        return self._names[index]

    # -- constraints ------------------------------------------------------------
    def add_leq(self, terms: Sequence[tuple[int, float]], rhs: float) -> int:
        """Add ``sum coef * x[idx] <= rhs``; returns the constraint row index."""
        row = len(self._ub_rhs)
        for idx, coef in terms:
            self._check_var(idx)
            if coef != 0.0:
                self._ub_rows.append(row)
                self._ub_cols.append(idx)
                self._ub_vals.append(float(coef))
        self._ub_rhs.append(float(rhs))
        return row

    def add_eq(self, terms: Sequence[tuple[int, float]], rhs: float) -> int:
        """Add ``sum coef * x[idx] == rhs``; returns the constraint row index."""
        row = len(self._eq_rhs)
        for idx, coef in terms:
            self._check_var(idx)
            if coef != 0.0:
                self._eq_rows.append(row)
                self._eq_cols.append(idx)
                self._eq_vals.append(float(coef))
        self._eq_rhs.append(float(rhs))
        return row

    def _check_var(self, idx: int) -> None:
        if not (0 <= idx < self._n_vars):
            raise SolverError(f"unknown variable index {idx}")

    # -- solve ---------------------------------------------------------------------
    def solve(self, *, method: str = "auto") -> LPResult:
        """Run the LP; returns an :class:`LPResult` (``feasible`` False when infeasible).

        ``method`` is passed to :func:`scipy.optimize.linprog`; the default
        ``"auto"`` picks HiGHS dual simplex for small programs and the HiGHS
        interior-point method for large ones (empirically ~2x faster on the
        transportation-like LPs produced by System (1) on big platforms).

        Raises :class:`SolverError` for unexpected solver failures (numerical
        breakdown, unboundedness, ...), but *not* for plain infeasibility,
        which is an expected outcome during the milestone binary search.
        """
        if self._n_vars == 0:
            return LPResult(status=0, feasible=True, objective=0.0, values=np.zeros(0))
        if method == "auto":
            method = "highs-ipm" if self._n_vars > 8000 else "highs"
        c = np.asarray(self._objective)
        bounds = list(zip(self._lower, self._upper))
        a_ub = b_ub = a_eq = b_eq = None
        if self._ub_rhs:
            a_ub = sparse.coo_matrix(
                (self._ub_vals, (self._ub_rows, self._ub_cols)),
                shape=(len(self._ub_rhs), self._n_vars),
            ).tocsr()
            b_ub = np.asarray(self._ub_rhs)
        if self._eq_rhs:
            a_eq = sparse.coo_matrix(
                (self._eq_vals, (self._eq_rows, self._eq_cols)),
                shape=(len(self._eq_rhs), self._n_vars),
            ).tocsr()
            b_eq = np.asarray(self._eq_rhs)
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method=method,
        )
        # scipy status codes: 0 success, 1 iteration limit, 2 infeasible,
        # 3 unbounded, 4 numerical difficulties.
        if result.status == 2:
            return LPResult(
                status=2,
                feasible=False,
                objective=np.inf,
                values=np.zeros(self._n_vars),
                message=result.message,
            )
        if result.status != 0:
            raise SolverError(f"LP solver failed (status {result.status}): {result.message}")
        return LPResult(
            status=0,
            feasible=True,
            objective=float(result.fun),
            values=np.asarray(result.x),
            message=result.message,
        )
