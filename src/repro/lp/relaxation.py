"""System (2): sum-stretch-like re-optimization at fixed max-stretch.

Once the best achievable max-stretch :math:`\\mathcal{S}^*` is known, the
on-line heuristic of Section 4.3.2 re-optimizes the allocation so that jobs
finish *as early as possible on average* without degrading the optimal
max-stretch.  Since sum-stretch minimization is an open problem, the paper
uses a rational relaxation: minimize the sum over jobs of the mean time of
the intervals in which the job is processed, weighted by the fraction of the
job processed there,

.. math::

   \\min \\sum_j \\sum_t \\Big(\\sum_i \\alpha^{(t)}_{i,j}\\Big)
        \\frac{\\sup I_t + \\inf I_t}{2},

subject to the same deadline/capacity/completeness constraints as System (1)
with the objective fixed at :math:`\\mathcal{S}^*`.
"""

from __future__ import annotations

from typing import MutableMapping

from repro.core.errors import InfeasibleError
from repro.lp.backends import SolverBackend
from repro.lp.intervals import build_interval_structure
from repro.lp.maxstretch import (
    ConstraintSkeleton,
    MaxStretchSolution,
    _assemble_constraints,
    _assembly_arrays,
    _extract_allocations,
    build_skeleton,
    model_key,
    warm_hint,
)
from repro.lp.problem import MaxStretchProblem
from repro.lp.solver import LinearProgramBuilder

__all__ = ["reoptimize_allocation"]


def reoptimize_allocation(
    problem: MaxStretchProblem,
    objective: float,
    *,
    inflation: float = 1e-7,
    max_inflation: float = 1e-3,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
) -> MaxStretchSolution:
    """Solve System (2) for ``problem`` at max weighted flow ``objective``.

    Parameters
    ----------
    problem:
        The problem whose optimal max weighted flow was just computed.
    objective:
        The max weighted flow bound :math:`\\mathcal{S}^*` (deadlines are
        derived from it).
    skeleton_cache:
        Optional mapping reusing constraint skeletons across solves.  The
        System (2) probe usually lands in the same milestone interval as the
        winning System (1) probe, so the skeleton is a cache hit when the
        same mapping was passed to
        :func:`~repro.lp.maxstretch.minimize_max_weighted_flow`.
    backend:
        LP solver backend (``None`` -> one-shot scipy default).  With a
        persistent backend, the geometric inflation retries below -- and any
        later System (2) solve sharing the same skeleton pattern -- reuse one
        live solver model through pure RHS/cost delta updates.
    inflation:
        Relative slack added to ``objective`` before building the deadlines.
        The optimum returned by :func:`minimize_max_weighted_flow` sits
        exactly on the feasibility boundary; without a tiny inflation the
        re-optimization LP can come out marginally infeasible because of
        floating-point roundoff (the paper reports the same phenomenon).
    max_inflation:
        If the LP is still infeasible the inflation is increased
        geometrically up to this bound before giving up.

    Returns
    -------
    MaxStretchSolution
        The re-optimized allocation.  Its ``objective`` attribute records the
        (possibly inflated) deadline bound actually used.
    """
    if not problem.jobs:
        return MaxStretchSolution(
            objective=objective,
            problem=problem,
            structure=build_interval_structure(problem, max(objective, 0.0)),
            interval_bounds=(),
            allocations={},
        )

    slack = inflation
    last_error: str | None = None
    while slack <= max_inflation:
        target = objective * (1.0 + slack)
        solution = _solve_fixed_objective(problem, target, skeleton_cache, backend)
        if solution is not None:
            return solution
        last_error = f"System (2) infeasible at objective {target!r}"
        slack *= 10.0
    raise InfeasibleError(last_error or "System (2) infeasible")


def _solve_fixed_objective(
    problem: MaxStretchProblem,
    objective: float,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
) -> MaxStretchSolution | None:
    structure = build_interval_structure(problem, objective)
    skeleton = build_skeleton(problem, structure, skeleton_cache)
    if skeleton is None:
        return None
    structure = skeleton.structure

    builder = LinearProgramBuilder()
    # Objective coefficient per variable: fraction of the job processed in
    # the interval (work / remaining) times the interval midpoint --
    # vectorized over the skeleton's cached per-variable interval/job index
    # arrays (the boundary values at ``objective`` double as the solution's
    # interval bounds below).
    arrays = _assembly_arrays(skeleton)
    boundary_values = arrays.bnd_const + arrays.bnd_coef * objective
    midpoints = 0.5 * (boundary_values[:-1] + boundary_values[1:])
    works = problem.remaining_works()
    builder.add_variables(
        len(skeleton.keys),
        objective=midpoints[arrays.key_t] / works[arrays.key_jpos],
    )

    _assemble_constraints(
        builder, problem, skeleton, offset=0, f_var=None, objective_value=objective
    )

    key = warm = None
    if backend is not None and backend.persistent:
        key = model_key(problem, skeleton, "sys2")
        warm = warm_hint(problem, skeleton, with_objective_var=False)
    result = builder.solve(backend=backend, key=key, warm=warm)
    if not result.feasible:
        return None
    allocations = _extract_allocations(problem, skeleton, 0, result.values)
    bounds = tuple(
        (float(boundary_values[t]), float(boundary_values[t + 1]))
        for t in range(len(boundary_values) - 1)
    )
    return MaxStretchSolution(
        objective=objective,
        problem=problem,
        structure=structure,
        interval_bounds=bounds,
        allocations=allocations,
    )
