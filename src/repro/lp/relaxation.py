"""System (2): sum-stretch-like re-optimization at fixed max-stretch.

Once the best achievable max-stretch :math:`\\mathcal{S}^*` is known, the
on-line heuristic of Section 4.3.2 re-optimizes the allocation so that jobs
finish *as early as possible on average* without degrading the optimal
max-stretch.  Since sum-stretch minimization is an open problem, the paper
uses a rational relaxation: minimize the sum over jobs of the mean time of
the intervals in which the job is processed, weighted by the fraction of the
job processed there,

.. math::

   \\min \\sum_j \\sum_t \\Big(\\sum_i \\alpha^{(t)}_{i,j}\\Big)
        \\frac{\\sup I_t + \\inf I_t}{2},

subject to the same deadline/capacity/completeness constraints as System (1)
with the objective fixed at :math:`\\mathcal{S}^*`.
"""

from __future__ import annotations

from repro.core.errors import InfeasibleError
from repro.lp.intervals import build_interval_structure
from repro.lp.maxstretch import (
    MaxStretchSolution,
    _add_capacity_constraints,
    _add_completeness_constraints,
    _extract_allocations,
)
from repro.lp.problem import MaxStretchProblem
from repro.lp.solver import LinearProgramBuilder

__all__ = ["reoptimize_allocation"]


def reoptimize_allocation(
    problem: MaxStretchProblem,
    objective: float,
    *,
    inflation: float = 1e-7,
    max_inflation: float = 1e-3,
) -> MaxStretchSolution:
    """Solve System (2) for ``problem`` at max weighted flow ``objective``.

    Parameters
    ----------
    problem:
        The problem whose optimal max weighted flow was just computed.
    objective:
        The max weighted flow bound :math:`\\mathcal{S}^*` (deadlines are
        derived from it).
    inflation:
        Relative slack added to ``objective`` before building the deadlines.
        The optimum returned by :func:`minimize_max_weighted_flow` sits
        exactly on the feasibility boundary; without a tiny inflation the
        re-optimization LP can come out marginally infeasible because of
        floating-point roundoff (the paper reports the same phenomenon).
    max_inflation:
        If the LP is still infeasible the inflation is increased
        geometrically up to this bound before giving up.

    Returns
    -------
    MaxStretchSolution
        The re-optimized allocation.  Its ``objective`` attribute records the
        (possibly inflated) deadline bound actually used.
    """
    if not problem.jobs:
        return MaxStretchSolution(
            objective=objective,
            problem=problem,
            structure=build_interval_structure(problem, max(objective, 0.0)),
            interval_bounds=(),
            allocations={},
        )

    slack = inflation
    last_error: str | None = None
    while slack <= max_inflation:
        target = objective * (1.0 + slack)
        solution = _solve_fixed_objective(problem, target)
        if solution is not None:
            return solution
        last_error = f"System (2) infeasible at objective {target!r}"
        slack *= 10.0
    raise InfeasibleError(last_error or "System (2) infeasible")


def _solve_fixed_objective(
    problem: MaxStretchProblem, objective: float
) -> MaxStretchSolution | None:
    structure = build_interval_structure(problem, objective)
    for job in problem.jobs:
        if len(structure.job_intervals(job.job_id)) == 0:
            return None

    bounds = structure.bounds_at(objective)
    builder = LinearProgramBuilder()
    var_index: dict[tuple[int, int, int], int] = {}
    for job in problem.jobs:
        for t in structure.job_intervals(job.job_id):
            midpoint = 0.5 * (bounds[t][0] + bounds[t][1])
            # Objective coefficient: fraction of the job processed in the
            # interval (work / remaining) times the interval midpoint.
            coef = midpoint / job.remaining_work
            for c in job.resources:
                var_index[(t, c, job.job_id)] = builder.add_variable(
                    objective=coef, name=f"x[{t},{c},{job.job_id}]"
                )

    _add_capacity_constraints(
        builder, problem, structure, var_index, f_var=None, objective_value=objective
    )
    _add_completeness_constraints(builder, problem, structure, var_index)

    result = builder.solve()
    if not result.feasible:
        return None
    allocations = _extract_allocations(problem, var_index, result.values)
    return MaxStretchSolution(
        objective=objective,
        problem=problem,
        structure=structure,
        interval_bounds=tuple(bounds),
        allocations=allocations,
    )
