"""System (1): optimal max weighted flow / max-stretch (Section 4.3.1).

The off-line optimal maximum weighted flow is computed by

1. bracketing the optimum between a trivial lower bound (every job needs at
   least its ideal time) and a trivial upper bound (serial execution),
2. enumerating the *milestones* inside the bracket
   (:mod:`repro.lp.milestones`),
3. locating the first milestone interval on which the parametric linear
   program System (1) is feasible, and
4. returning that LP's minimizer, which is the global optimum because
   feasibility of "max weighted flow <= F" is monotone in ``F``.

Step 3 is a *certificate-guided parametric search*: because the deadline
right-hand sides are affine in the objective ``F``, the Farkas/dual-ray
certificate of an infeasible probe evaluates to an affine function
``g(F) = A + B F`` that every feasible objective must keep non-negative, so
a single infeasible solve refutes every milestone below ``-A/B`` and the
search jumps straight past them.  Symmetrically, a feasible probe whose LP
optimum lands *strictly inside* its milestone interval is already the global
optimum (monotone feasibility), so the downward confirmation probes of the
classical gallop are skipped outright.  Backends without certificate support
(the one-shot scipy path) degrade to the uncertified probe order; results
are identical either way, only the number of LPs actually solved changes
(``search="gallop"`` keeps the legacy gallop + bisection as a reference).

The LP works on *resources* (capability classes) rather than individual
machines; variables are the amounts of work ``x[t, c, j]`` of job ``j``
processed on resource ``c`` during elementary interval ``t``, plus the
objective ``F`` itself.  Constraints are exactly (1a)-(1e) of the paper:
interval/resource capacities (affine in ``F``), structural zeros outside the
[earliest start, deadline] window, and per-job completeness -- assembled as
whole numpy COO blocks from index arrays cached on the skeleton.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass
from typing import Mapping, MutableMapping, Sequence

import numpy as np

from repro.core.errors import InfeasibleError
from repro.lp import kernels
from repro.lp.backends import (
    SolverBackend,
    WarmStartHint,
    note_certificate_skips,
    note_milestone_search,
    note_phase_assembly,
    note_phase_search,
)
from repro.lp.intervals import IntervalStructure, build_interval_structure
from repro.lp.milestones import enumerate_milestones
from repro.lp.problem import MaxStretchProblem
from repro.lp.solver import LinearProgramBuilder

__all__ = [
    "MaxStretchSolution",
    "ConstraintSkeleton",
    "SearchCertificate",
    "MilestoneSearchReport",
    "build_skeleton",
    "model_key",
    "warm_hint",
    "minimize_max_weighted_flow",
    "solve_on_objective_range",
]

#: Default milestone-search strategy: ``"certificate"`` (dual-ray guided
#: parametric search) or ``"gallop"`` (the legacy bidirectional gallop +
#: bisection, kept as the reference the certificate search is gated
#: against).  Overridable per call through ``minimize_max_weighted_flow``.
DEFAULT_SEARCH = "certificate"

#: Work amounts below this threshold (relative to the job's remaining work)
#: are dropped from the reported allocation.
_ALLOCATION_EPS = 1e-10


@dataclass(frozen=True)
class MaxStretchSolution:
    """A feasible (usually optimal) allocation achieving a given max weighted flow.

    Attributes
    ----------
    objective:
        The achieved maximum weighted flow :math:`\\mathcal{F}` (equals the
        max-stretch when stretch weights are used).
    problem:
        The problem that was solved.
    structure:
        The interval structure used by the LP.
    interval_bounds:
        The elementary intervals, evaluated at :attr:`objective`, as
        ``(start, end)`` pairs.
    allocations:
        Mapping ``(interval index, resource index, job id) -> work``.
    """

    objective: float
    problem: MaxStretchProblem
    structure: IntervalStructure
    interval_bounds: tuple[tuple[float, float], ...]
    allocations: dict[tuple[int, int, int], float]

    # -- lookups ---------------------------------------------------------------
    def deadline(self, job_id: int) -> float:
        """Deadline of the job at the achieved objective."""
        return self.problem.job_by_id(job_id).deadline(self.objective)

    def allocations_in_interval(self, interval: int) -> dict[tuple[int, int], float]:
        """``(resource, job) -> work`` allocations inside one interval."""
        return {
            (c, j): w
            for (t, c, j), w in self.allocations.items()
            if t == interval and w > 0
        }

    def work_for_job(self, job_id: int) -> float:
        """Total work allocated to the job across intervals and resources."""
        return float(
            sum(w for (t, c, j), w in self.allocations.items() if j == job_id)
        )

    def work_for_job_on_resource(self, job_id: int, resource: int) -> float:
        """Total work of the job allocated to one resource."""
        return float(
            sum(
                w
                for (t, c, j), w in self.allocations.items()
                if j == job_id and c == resource
            )
        )

    def completion_interval(self, job_id: int) -> int:
        """Index of the last interval in which the job receives work.

        Used by the Online-EGDF variant to build its global priority list.
        Raises :class:`KeyError` when the job receives no allocation.
        """
        indices = [t for (t, c, j), w in self.allocations.items() if j == job_id and w > 0]
        if not indices:
            raise KeyError(job_id)
        return max(indices)

    def completion_interval_on_resource(self, job_id: int, resource: int) -> int | None:
        """Last interval in which the job receives work on ``resource`` (None if never)."""
        indices = [
            t
            for (t, c, j), w in self.allocations.items()
            if j == job_id and c == resource and w > 0
        ]
        return max(indices) if indices else None

    def jobs_on_resource(self, resource: int) -> list[int]:
        """Job ids receiving any work on ``resource``."""
        return sorted(
            {j for (t, c, j), w in self.allocations.items() if c == resource and w > 0}
        )

    def max_weighted_flow_of_allocation(self) -> float:
        """The max weighted flow actually implied by the allocation.

        Every job completes no later than the end of its last allocation
        interval, so this is a (possibly pessimistic) certificate that the
        allocation achieves :attr:`objective`.
        """
        worst = 0.0
        for job in self.problem.jobs:
            try:
                t = self.completion_interval(job.job_id)
            except KeyError:
                continue
            completion = self.interval_bounds[t][1]
            worst = max(worst, (completion - job.release) / job.flow_factor)
        return worst


@dataclass(frozen=True)
class ConstraintSkeleton:
    """The structural part of a System (1)/(2) linear program.

    Everything here depends only on the interval structure and the jobs'
    eligible resources -- not on the objective bounds, the remaining works or
    the LP objective coefficients.  The on-line :class:`~repro.lp.incremental.
    ReplanContext` caches skeletons keyed by :attr:`signature` so that
    successive solves on the same milestone interval (e.g. the winning System
    (1) probe and the System (2) re-optimization that follows it) skip the
    variable-indexing and constraint-grouping work.

    Attributes
    ----------
    structure:
        The interval structure the skeleton was built on.
    keys:
        ``(interval, resource, job_id)`` for every variable, in the canonical
        order (job order of the problem, then interval, then resource).  The
        order matters: it pins the LP column order, keeping solver output
        bit-identical between the cached and the from-scratch paths.
    capacity_groups:
        ``((interval, resource), variable positions)`` sorted by (interval,
        resource) -- one capacity row (1d) each.
    completeness_groups:
        ``(job position in problem.jobs, variable positions)`` in job order --
        one completeness row (1e) each.
    signature:
        Hashable cache key: the boundary affines plus every job's
        (id, window, resources) tuple.
    """

    structure: IntervalStructure
    keys: tuple[tuple[int, int, int], ...]
    capacity_groups: tuple[tuple[tuple[int, int], tuple[int, ...]], ...]
    completeness_groups: tuple[tuple[int, tuple[int, ...]], ...]
    signature: tuple

    @property
    def n_variables(self) -> int:
        return len(self.keys)


def _skeleton_signature(problem: MaxStretchProblem, structure: IntervalStructure) -> tuple:
    boundaries = tuple((b.const, b.coef) for b in structure.boundaries)
    jobs = tuple(
        (
            job.job_id,
            structure.job_start_index[job.job_id],
            structure.job_deadline_index[job.job_id],
            job.resources,
        )
        for job in problem.jobs
    )
    return (boundaries, jobs)


def build_skeleton(
    problem: MaxStretchProblem,
    structure: IntervalStructure,
    cache: MutableMapping[tuple, "ConstraintSkeleton"] | None = None,
) -> ConstraintSkeleton | None:
    """Build (or fetch from ``cache``) the constraint skeleton for ``structure``.

    Returns ``None`` when some job has no interval to run in, i.e. its
    deadline does not lie strictly after its earliest start -- the quick
    structural infeasibility check of the milestone search.
    """
    for job in problem.jobs:
        if len(structure.job_intervals(job.job_id)) == 0:
            return None

    signature = _skeleton_signature(problem, structure)
    if cache is not None:
        cached = cache.get(signature)
        if cached is not None:
            return cached

    keys: list[tuple[int, int, int]] = []
    by_interval_resource: dict[tuple[int, int], list[int]] = {}
    by_job: list[tuple[int, tuple[int, ...]]] = []
    for pos_job, job in enumerate(problem.jobs):
        job_positions: list[int] = []
        for t in structure.job_intervals(job.job_id):
            for c in job.resources:
                position = len(keys)
                keys.append((t, c, job.job_id))
                by_interval_resource.setdefault((t, c), []).append(position)
                job_positions.append(position)
        by_job.append((pos_job, tuple(job_positions)))

    skeleton = ConstraintSkeleton(
        structure=structure,
        keys=tuple(keys),
        capacity_groups=tuple(
            (tc, tuple(positions))
            for tc, positions in sorted(by_interval_resource.items())
        ),
        completeness_groups=tuple(by_job),
        signature=signature,
    )
    if cache is not None:
        cache[signature] = skeleton
    return skeleton


def model_key(
    problem: MaxStretchProblem, skeleton: ConstraintSkeleton, tag: str
) -> tuple:
    """Persistence key for the LP built from ``skeleton`` (see backends).

    Two builders producing the same key are guaranteed to share the exact
    constraint matrix -- sparsity pattern *and* values: the variable/row
    layout is pinned by the skeleton's job windows and resource groups, the x
    coefficients are all 1, the F-column coefficients of System (1) are
    ``-speed * length.coef`` where the interval-length slopes derive from the
    boundary *slopes* only, and the resource speeds are keyed explicitly.
    The boundary constants (which move with the current time between replans)
    only enter the right-hand sides and the F bounds, which persistent
    backends delta-update.  ``tag`` separates the System (1) layout (leading
    F variable) from the System (2) layout (x variables only).
    """
    boundaries, jobs = skeleton.signature
    return (
        tag,
        tuple(coef for _const, coef in boundaries),
        jobs,
        tuple(r.speed for r in problem.resources),
    )


#: Stable column identity of the objective variable F in warm-start hints
#: (work-variable identities are non-negative bit-packed triples).
_F_COL_ID = -1


def warm_hint(
    problem: MaxStretchProblem,
    skeleton: ConstraintSkeleton,
    *,
    with_objective_var: bool,
) -> WarmStartHint:
    """Basis-transplant identities for the LP built from ``skeleton``.

    Work variables are identified by their ``(interval, resource, job)``
    triple, capacity rows by ``(interval, resource)`` and completeness rows
    by job id -- bit-packed into int64 so the backend's basis mapping stays
    vectorized.  Consecutive milestone probes (and the System (2) solve
    after the winning probe -- ``with_objective_var=False`` drops the F
    column) overlap on most identities, so the previous basis mapped through
    them is a near-optimal starting basis even though the matrices differ.
    All LPs of one search/replan sequence share a single series: the backend
    is per-context, so bases never leak across simulation runs.

    The id arrays are cached on the skeleton (which the
    :class:`~repro.lp.incremental.ReplanContext` skeleton cache already
    shares between the winning System (1) probe and the System (2) solve).
    """
    cache = skeleton.__dict__.get("_warm_ids")
    if cache is None:
        keys = skeleton.keys
        col_ids = np.fromiter(
            ((t << 36) | (c << 24) | j for t, c, j in keys),
            dtype=np.int64,
            count=len(keys),
        )
        n_caps = len(skeleton.capacity_groups)
        row_ids = np.fromiter(
            (
                (t << 12) | c
                for (t, c), _positions in skeleton.capacity_groups
            ),
            dtype=np.int64,
            count=n_caps,
        )
        job_rows = np.fromiter(
            (
                (1 << 60) | problem.jobs[pos_job].job_id
                for pos_job, _positions in skeleton.completeness_groups
            ),
            dtype=np.int64,
            count=len(skeleton.completeness_groups),
        )
        cache = (
            np.concatenate([np.array([_F_COL_ID], dtype=np.int64), col_ids]),
            col_ids,
            np.concatenate([row_ids, job_rows]),
        )
        # ConstraintSkeleton is frozen; stash the derived arrays directly in
        # its instance dict (pure cache, invisible to equality/signature).
        object.__setattr__(skeleton, "_warm_ids", cache)
    col_with_f, col_plain, row_ids = cache
    return WarmStartHint(
        series="milestone-lps",
        col_ids=col_with_f if with_objective_var else col_plain,
        row_ids=row_ids,
    )


class _AssemblyArrays:
    """Numpy index arrays deriving the COO constraint blocks from a skeleton.

    Everything here is a pure re-indexing of the skeleton's group tuples --
    problem-independent (speeds and remaining works are applied per solve),
    built once per skeleton and stashed in its instance dict (pure cache,
    like the warm-hint identities), so successive probes sharing a skeleton
    assemble their constraint matrices without any per-entry Python loop.
    """

    __slots__ = (
        "cap_entry_rows",
        "cap_entry_cols",
        "cap_c",
        "cap_len_const",
        "cap_len_coef",
        "comp_entry_rows",
        "comp_entry_cols",
        "comp_job_pos",
        "key_t",
        "key_jpos",
        "bnd_const",
        "bnd_coef",
    )

    def __init__(self, skeleton: "ConstraintSkeleton"):
        structure = skeleton.structure
        cap_groups = skeleton.capacity_groups
        n_cap = len(cap_groups)
        sizes = np.fromiter((len(p) for _tc, p in cap_groups), dtype=np.int64, count=n_cap)
        self.cap_entry_rows = np.repeat(np.arange(n_cap, dtype=np.int64), sizes)
        self.cap_entry_cols = np.fromiter(
            (p for _tc, ps in cap_groups for p in ps), dtype=np.int64, count=int(sizes.sum())
        )
        self.cap_c = np.fromiter((tc[1] for tc, _ps in cap_groups), dtype=np.int64, count=n_cap)
        lengths = [structure.interval_length(tc[0]) for tc, _ps in cap_groups]
        self.cap_len_const = np.fromiter(
            (ln.const for ln in lengths), dtype=np.float64, count=n_cap
        )
        self.cap_len_coef = np.fromiter(
            (ln.coef for ln in lengths), dtype=np.float64, count=n_cap
        )

        comp_groups = skeleton.completeness_groups
        n_comp = len(comp_groups)
        comp_sizes = np.fromiter(
            (len(p) for _pj, p in comp_groups), dtype=np.int64, count=n_comp
        )
        self.comp_entry_rows = np.repeat(np.arange(n_comp, dtype=np.int64), comp_sizes)
        self.comp_entry_cols = np.fromiter(
            (p for _pj, ps in comp_groups for p in ps),
            dtype=np.int64,
            count=int(comp_sizes.sum()),
        )
        self.comp_job_pos = np.fromiter(
            (pj for pj, _ps in comp_groups), dtype=np.int64, count=n_comp
        )

        n_keys = len(skeleton.keys)
        self.key_t = np.fromiter((t for t, _c, _j in skeleton.keys), dtype=np.int64, count=n_keys)
        self.key_jpos = np.empty(n_keys, dtype=np.int64)
        self.key_jpos[self.comp_entry_cols] = self.comp_job_pos[self.comp_entry_rows]

        boundaries = structure.boundaries
        self.bnd_const = np.fromiter(
            (b.const for b in boundaries), dtype=np.float64, count=len(boundaries)
        )
        self.bnd_coef = np.fromiter(
            (b.coef for b in boundaries), dtype=np.float64, count=len(boundaries)
        )


def _assembly_arrays(skeleton: ConstraintSkeleton) -> _AssemblyArrays:
    """The cached :class:`_AssemblyArrays` of ``skeleton`` (built on first use)."""
    cache = skeleton.__dict__.get("_assembly")
    if cache is None:
        cache = _AssemblyArrays(skeleton)
        object.__setattr__(skeleton, "_assembly", cache)
    return cache


def _assemble_constraints(
    builder: LinearProgramBuilder,
    problem: MaxStretchProblem,
    skeleton: ConstraintSkeleton,
    *,
    offset: int,
    f_var: int | None,
    objective_value: float | None,
) -> None:
    """Emit constraints (1d)/(1e) from a skeleton as vectorized COO blocks.

    ``offset`` is the index of the first x variable in the builder (1 when
    the objective variable ``F`` precedes them, 0 for fixed-objective
    solves); the row order (capacity rows sorted by (interval, resource),
    then completeness rows in job order), the sparsity pattern (zero ``F``
    coefficients dropped) and every coefficient value match the historical
    per-row builder exactly.
    """
    arrays = _assembly_arrays(skeleton)
    speeds = problem.resource_speeds()[arrays.cap_c]
    if f_var is not None:
        rows, cols, vals, rhs = kernels.scatter_capacity_sys1(
            arrays.cap_entry_rows,
            arrays.cap_entry_cols,
            arrays.cap_len_const,
            arrays.cap_len_coef,
            speeds,
            offset,
            f_var,
        )
    else:
        assert objective_value is not None
        rows = arrays.cap_entry_rows
        cols = arrays.cap_entry_cols + offset
        vals = np.ones(arrays.cap_entry_cols.size, dtype=np.float64)
        rhs = speeds * np.maximum(
            0.0, arrays.cap_len_const + arrays.cap_len_coef * objective_value
        )
    builder.add_leq_block(rows, cols, vals, rhs)

    works = problem.remaining_works()
    builder.add_eq_block(
        arrays.comp_entry_rows,
        arrays.comp_entry_cols + offset,
        np.ones(arrays.comp_entry_cols.size, dtype=np.float64),
        works[arrays.comp_job_pos],
    )


@dataclass(frozen=True)
class SearchCertificate:
    """A Farkas certificate of a milestone probe, in re-evaluable form.

    The aggregated constraint of an infeasible System (1) probe reads

    .. math:: g(F) = A + B F
              = \\Big(\\underbrace{\\sum u\\, s\\, \\ell^{const}}_{capacity\\_const}
                + \\sum_j v_j W_j\\Big)
                + \\underbrace{\\sum u\\, s\\, \\ell^{coef}}_{capacity\\_coef}\\, F

    and every feasible objective satisfies ``g(F) >= 0``, so ``F >= -A/B``
    (for ``B > 0``) is a closed-form lower bound derived without solving any
    further LP.  Keeping the completeness multipliers ``v`` keyed by job id
    lets the :class:`~repro.lp.incremental.ReplanContext` *re-evaluate* the
    combination against the next replan's remaining works: the resulting
    bound is only a probe-order hint there (the interval structure moved
    with the clock), but it starts the next search already pruned.
    """

    capacity_const: float
    capacity_coef: float
    v_by_job: Mapping[int, float]

    def bound_for(self, works: Mapping[int, float]) -> float | None:
        """The certificate's objective lower bound for updated remaining works.

        Jobs absent from ``works`` (completed since the certificate was
        collected) drop out of the combination; returns ``None`` when the
        coefficient of ``F`` is too small to divide by.
        """
        if self.capacity_coef <= _RAY_COEF_EPS:
            return None
        load = sum(
            v * works[job_id] for job_id, v in self.v_by_job.items() if job_id in works
        )
        return -(self.capacity_const + load) / self.capacity_coef


@dataclass
class ProbeOutcome:
    """Mutable side channel filled by :func:`solve_on_objective_range`.

    ``certificate_bound``/``certificate`` are populated on infeasible probes
    whose backend produced a dual ray (persistent HiGHS); they stay ``None``
    on feasible probes and on certificate-less backends.
    """

    certificate_bound: float | None = None
    certificate: SearchCertificate | None = None


@dataclass
class MilestoneSearchReport:
    """Probe economy of one milestone search (filled when requested).

    Attributes
    ----------
    n_solved / n_skipped:
        LP probes actually solved vs milestone intervals eliminated without
        a solve (certificate jumps and the interior-optimum re-check).
    interior_exit:
        True when the search ended because the winning probe's optimum lay
        strictly inside its milestone interval (global optimality by
        monotone feasibility -- no downward confirmation probe needed).
    certificate:
        The strongest :class:`SearchCertificate` collected (highest bound),
        for cross-replan carry; ``None`` without certificate support.
    """

    n_solved: int = 0
    n_skipped: int = 0
    interior_exit: bool = False
    certificate: SearchCertificate | None = None


#: Coefficients of F below this threshold make a certificate bound
#: numerically meaningless (division blows up); such rays are discarded.
_RAY_COEF_EPS = 1e-12

#: Relative margin by which a feasible probe's optimum must clear its
#: interval's lower boundary before the interior-optimum short circuit
#: declares it globally optimal.  Must exceed the LP solvers' objective
#: tolerance (~1e-9) so a boundary optimum is never mistaken for an
#: interior one; at a true interior optimum the margin is the distance to
#: the previous milestone, orders of magnitude larger.
_INTERIOR_RTOL = 1e-7


def _probe_certificate(
    problem: MaxStretchProblem,
    skeleton: ConstraintSkeleton,
    dual_ray: np.ndarray,
    outcome: "ProbeOutcome",
) -> None:
    """Evaluate a dual ray as an affine function of F and fill ``outcome``."""
    n_cap = len(skeleton.capacity_groups)
    if dual_ray.size != n_cap + len(skeleton.completeness_groups):
        return
    arrays = _assembly_arrays(skeleton)
    u = dual_ray[:n_cap]
    v = dual_ray[n_cap:]
    cap_speed = problem.resource_speeds()[arrays.cap_c]
    certificate = SearchCertificate(
        capacity_const=float(u @ (cap_speed * arrays.cap_len_const)),
        capacity_coef=float(u @ (cap_speed * arrays.cap_len_coef)),
        v_by_job={
            job.job_id: float(v[pos]) for pos, job in enumerate(problem.jobs) if v[pos] != 0.0
        },
    )
    bound = certificate.bound_for(
        {job.job_id: job.remaining_work for job in problem.jobs}
    )
    if bound is None or not math.isfinite(bound):
        return
    outcome.certificate_bound = bound
    outcome.certificate = certificate


def solve_on_objective_range(
    problem: MaxStretchProblem,
    f_low: float,
    f_high: float,
    *,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
    outcome: ProbeOutcome | None = None,
) -> MaxStretchSolution | None:
    """Solve System (1) restricted to objective values in ``[f_low, f_high]``.

    Returns ``None`` when no feasible schedule exists with a maximum weighted
    flow in that range (the expected outcome for ranges below the optimum).
    ``skeleton_cache`` optionally reuses constraint skeletons across solves
    sharing the same interval structure (see :class:`ConstraintSkeleton`);
    ``backend`` selects the LP solver backend (persistent backends
    additionally reuse live solver models across probes sharing a skeleton
    pattern, keyed by :func:`model_key`).  ``outcome``, when provided,
    receives the infeasibility certificate of a refused probe (backends
    without dual-ray support leave it empty).
    """
    if not problem.jobs:
        return MaxStretchSolution(
            objective=0.0,
            problem=problem,
            structure=build_interval_structure(problem, 0.0),
            interval_bounds=(),
            allocations={},
        )
    if f_high < f_low:
        raise ValueError(f"invalid objective range [{f_low}, {f_high}]")

    assembly_start = time.perf_counter()
    probe = _probe_value(f_low, f_high)
    structure = build_interval_structure(problem, probe)
    skeleton = build_skeleton(problem, structure, skeleton_cache)
    if skeleton is None:
        note_phase_assembly(time.perf_counter() - assembly_start)
        return None

    builder = LinearProgramBuilder()
    f_var = builder.add_variable(objective=1.0, lower=f_low, upper=f_high, name="F")
    builder.add_variables(len(skeleton.keys))
    _assemble_constraints(
        builder, problem, skeleton, offset=1, f_var=f_var, objective_value=None
    )

    key = warm = None
    if backend is not None and backend.persistent:
        key = model_key(problem, skeleton, "sys1")
        warm = warm_hint(problem, skeleton, with_objective_var=True)
    note_phase_assembly(time.perf_counter() - assembly_start)
    result = builder.solve(backend=backend, key=key, warm=warm)
    if not result.feasible:
        if outcome is not None and result.dual_ray is not None:
            _probe_certificate(problem, skeleton, result.dual_ray, outcome)
        return None

    objective = result.value(f_var)
    allocations = _extract_allocations(problem, skeleton, 1, result.values)
    bounds = tuple(structure.bounds_at(objective))
    return MaxStretchSolution(
        objective=objective,
        problem=problem,
        structure=structure,
        interval_bounds=bounds,
        allocations=allocations,
    )


def minimize_max_weighted_flow(
    problem: MaxStretchProblem,
    *,
    max_milestones: int | None = None,
    warm_start: float | None = None,
    feasible_cap: float | None = None,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
    search: str | None = None,
    report: MilestoneSearchReport | None = None,
) -> MaxStretchSolution:
    """Compute the optimal max weighted flow (max-stretch) for ``problem``.

    Parameters
    ----------
    problem:
        The scheduling problem (off-line or an on-line re-optimization).
    max_milestones:
        Optional cap on the number of milestones considered (the list is
        thinned uniformly when longer).  The result is then an upper bound on
        the optimum, within the resolution of the retained milestones; the
        default (no cap) is exact.
    warm_start:
        Optional objective value expected to be close to the optimum
        (typically the previous replan's :math:`S^*`, possibly raised by a
        carried certificate bound, in the on-line heuristics).  The milestone
        search starts at the interval containing it.  Because feasibility is
        monotone in the objective, the result is *identical* to a cold
        search -- only the probe order changes.
    feasible_cap:
        Optional objective value the caller *knows* to be feasible for
        ``problem`` -- the feasible-side counterpart of the certificate
        lower bounds.  The on-line heuristics pass the previous replan's
        accepted :math:`S^*` when the active set only shrank since (less
        remaining work over a subset of the jobs keeps every feasible
        allocation feasible).  The search start is clamped down to the
        interval containing the cap, so the first probe is at worst the
        known-feasible interval and the search never gallops upward past
        it.  Like ``warm_start`` this changes probe order only, never the
        accepted optimum.
    skeleton_cache:
        Optional mapping reusing constraint skeletons across solves (see
        :class:`ConstraintSkeleton`).
    backend:
        LP solver backend; ``None`` uses the one-shot scipy default.  A
        persistent backend (``HighsPersistentBackend``) additionally reuses
        live solver models between probes sharing a skeleton pattern,
        warm-starts dual simplex from the previous basis, and produces the
        dual-ray certificates the search prunes with; results are equivalent
        within solver tolerance.
    search:
        ``"certificate"`` (dual-ray guided parametric search, the default)
        or ``"gallop"`` (the legacy bidirectional gallop + bisection);
        ``None`` resolves to :data:`DEFAULT_SEARCH`.  Both return the same
        optimum -- the certificate search solves fewer LPs.
    report:
        Optional :class:`MilestoneSearchReport` receiving the search's probe
        economy and its strongest certificate (for cross-replan carry).

    Raises
    ------
    InfeasibleError
        If no feasible schedule exists (cannot happen for well-formed
        problems: the trivial serial schedule is always feasible).
    """
    if not problem.jobs:
        return solve_on_objective_range(problem, 0.0, 0.0)  # type: ignore[return-value]

    search_start = time.perf_counter()
    f_lb = problem.objective_lower_bound()
    f_ub = problem.objective_upper_bound()
    milestones = enumerate_milestones(problem, lower=f_lb, upper=f_ub)
    if max_milestones is not None and len(milestones) > max_milestones:
        step = len(milestones) / max_milestones
        milestones = [milestones[int(i * step)] for i in range(max_milestones)]

    boundaries = [f_lb] + milestones + [f_ub]
    last = len(boundaries) - 2

    start_idx = 0
    if warm_start is not None and last > 0:
        start_idx = min(max(bisect.bisect_right(boundaries, warm_start) - 1, 0), last)
    if feasible_cap is not None and last > 0:
        start_idx = min(start_idx, _interval_of(boundaries, feasible_cap, 0, last))

    best = _search_first_feasible(
        problem,
        boundaries,
        start_idx,
        skeleton_cache=skeleton_cache,
        backend=backend,
        search=search,
        report=report,
    )

    if best is None:
        # The serial upper bound should always be feasible; if roundoff made
        # the last interval infeasible, retry with a widened bracket before
        # giving up.
        widened = solve_on_objective_range(
            problem, f_lb, 2.0 * f_ub + 1.0, skeleton_cache=skeleton_cache,
            backend=backend,
        )
        if widened is None:
            raise InfeasibleError(
                "no feasible schedule found for the max weighted flow problem"
            )
        best = widened
    note_phase_search(time.perf_counter() - search_start)
    return best


def _search_first_feasible(
    problem: MaxStretchProblem,
    boundaries: Sequence[float],
    start_idx: int,
    *,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
    search: str | None = None,
    report: MilestoneSearchReport | None = None,
) -> MaxStretchSolution | None:
    """Locate the first feasible milestone interval and return its optimum.

    Feasibility of "max weighted flow in [boundaries[i], boundaries[i+1]]" is
    monotone in the interval index ``i``, so the minimizer lives in the first
    feasible interval.  Two strategies find it -- ``"certificate"`` (default,
    :func:`_search_certificate`) and ``"gallop"`` (the legacy reference,
    :func:`_search_gallop`) -- with identical results by construction: a
    solution is only ever accepted when its own LP optimum proves global
    optimality or when the adjacent lower interval was solved infeasible.
    """
    mode = DEFAULT_SEARCH if search is None else search
    if mode == "certificate":
        return _search_certificate(
            problem, boundaries, start_idx,
            skeleton_cache=skeleton_cache, backend=backend, report=report,
        )
    if mode == "gallop":
        return _search_gallop(
            problem, boundaries, start_idx,
            skeleton_cache=skeleton_cache, backend=backend, report=report,
        )
    raise ValueError(f"unknown milestone search strategy {mode!r}")


def _interval_of(boundaries: Sequence[float], value: float, lo: int, hi: int) -> int:
    """Index of the milestone interval containing ``value``, clamped to [lo, hi]."""
    idx = bisect.bisect_right(boundaries, value) - 1
    return min(max(idx, lo), hi)


def _is_interior(solution: MaxStretchSolution, lower_boundary: float) -> bool:
    """Whether the probe's optimum lies strictly inside its milestone interval.

    By monotone feasibility this certifies *global* optimality: were any
    objective below the interval feasible, every objective above it would be
    too -- including the sub-optimum part of this interval, contradicting
    the LP's minimality.  The margin must only exceed the solver's objective
    tolerance (see :data:`_INTERIOR_RTOL`).
    """
    return solution.objective > lower_boundary + _INTERIOR_RTOL * max(1.0, abs(lower_boundary))


def _search_certificate(
    problem: MaxStretchProblem,
    boundaries: Sequence[float],
    start_idx: int,
    *,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
    report: MilestoneSearchReport | None = None,
) -> MaxStretchSolution | None:
    """Certificate-guided parametric search (the default strategy).

    Upward, an infeasible probe's dual ray refutes every milestone below its
    affine bound ``-A/B``, so the search jumps straight to the first
    non-refuted interval instead of galloping through the refuted ones.
    Downward, a feasible probe whose optimum is strictly interior *is* the
    global optimum (monotone feasibility) and the search stops without the
    legacy confirmation probes; a boundary optimum falls back to bisection,
    its pivots biased by any further certificates.

    Certificate bounds only ever choose the *probe order*, never the
    outcome: beyond its own milestone interval a dual ray is evaluated on a
    stale interval structure, so its bound may legitimately overshoot the
    optimum.  Acceptance therefore always requires the interior proof or a
    solved infeasible probe directly below the accepted interval (``lo``
    advances exclusively on solved infeasibilities, which refute everything
    beneath them by monotonicity) -- a misleading bound costs extra probes
    but can never produce a wrong result.
    """
    last = len(boundaries) - 2
    solved = 0
    skipped = 0
    interior_exit = False
    strongest_bound = -math.inf
    strongest: SearchCertificate | None = None

    def probe(i: int) -> tuple[MaxStretchSolution | None, float | None]:
        nonlocal solved, strongest, strongest_bound
        outcome = ProbeOutcome()
        solution = solve_on_objective_range(
            problem, boundaries[i], boundaries[i + 1],
            skeleton_cache=skeleton_cache, backend=backend, outcome=outcome,
        )
        solved += 1
        if outcome.certificate is not None and outcome.certificate_bound > strongest_bound:
            strongest_bound = outcome.certificate_bound
            strongest = outcome.certificate
        return solution, outcome.certificate_bound

    def finish(best: MaxStretchSolution | None) -> MaxStretchSolution | None:
        if report is not None:
            report.n_solved = solved
            report.n_skipped = skipped
            report.interior_exit = interior_exit
            report.certificate = strongest
        note_certificate_skips(skipped)
        note_milestone_search(solved, skipped, interior_exit)
        return best

    # -- upward phase: find some feasible interval ---------------------------------
    idx = min(max(start_idx, 0), last)
    floor = -1  # highest index with a *solved* infeasible probe
    step = 1
    best: MaxStretchSolution | None = None
    while True:
        solution, bound = probe(idx)
        if solution is not None:
            best = solution
            best_idx = idx
            break
        floor = idx
        if idx == last:
            return finish(None)
        nxt = min(idx + step, last)
        step *= 2
        if bound is not None:
            # Jump past every milestone the certificate refutes (never
            # backward: the gallop step is the uncertified floor).
            nxt = max(nxt, _interval_of(boundaries, bound, idx + 1, last))
        idx = nxt

    # -- downward phase: prove best_idx is the *first* feasible interval -----------
    lo = floor + 1  # lowest index NOT refuted by a solved probe (sound floor)
    hint: float | None = None
    while best_idx > lo:
        if _is_interior(best, boundaries[best_idx]):
            # The winning probe's own optimum certifies global optimality;
            # the candidates below are eliminated without solving them.
            interior_exit = True
            skipped += best_idx - lo
            break
        hi = best_idx - 1
        if hint is not None:
            # Probe the interval the last certificate points at (clamped
            # into the open bracket) instead of the bisection midpoint: a
            # feasible outcome moves ``best_idx`` down onto it, an
            # infeasible outcome *soundly* refutes everything below it by
            # monotonicity.  The bound itself never advances ``lo``.
            mid = _interval_of(boundaries, hint, lo, hi)
            hint = None
        else:
            mid = (lo + hi) // 2
        solution, bound = probe(mid)
        if solution is not None:
            best = solution
            best_idx = mid
        else:
            if bound is not None and mid + 1 < best_idx:
                hint = bound
            lo = mid + 1
    return finish(best)


def _search_gallop(
    problem: MaxStretchProblem,
    boundaries: Sequence[float],
    start_idx: int,
    *,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
    report: MilestoneSearchReport | None = None,
) -> MaxStretchSolution | None:
    """The legacy bidirectional gallop + bisection (reference strategy).

    Gallops outward from ``start_idx`` -- downward while feasible, upward
    while infeasible, with doubling steps -- then binary-searches the
    bracket found.  Solves strictly more LPs than the certificate search
    (every candidate is settled by an actual solve); kept as the oracle the
    certificate search is equality-gated against in tests and benchmarks.
    """
    last = len(boundaries) - 2
    solved = 0

    def probe(i: int) -> MaxStretchSolution | None:
        nonlocal solved
        solved += 1
        return solve_on_objective_range(
            problem, boundaries[i], boundaries[i + 1],
            skeleton_cache=skeleton_cache, backend=backend,
        )

    def finish(best: MaxStretchSolution | None) -> MaxStretchSolution | None:
        if report is not None:
            report.n_solved = solved
        note_milestone_search(solved, 0, False)
        return best

    best: MaxStretchSolution | None = None
    lo = 0
    hi = -1
    solution = probe(start_idx)
    if solution is not None:
        # Gallop downward until an infeasible interval bounds the bracket
        # (a feasible probe at index 0 means the optimum lives there and the
        # bracket stays empty).
        best = solution
        floor = start_idx
        step = 1
        idx = start_idx - 1
        while idx >= 0:
            solution = probe(idx)
            if solution is None:
                lo, hi = idx + 1, floor - 1
                break
            best = solution
            floor = idx
            if idx == 0:
                break
            idx = max(idx - step, 0)
            step *= 2
    else:
        # Gallop upward until a feasible interval is found.
        prev = start_idx
        step = 1
        idx = start_idx + 1
        while idx <= last:
            solution = probe(idx)
            if solution is not None:
                best = solution
                lo, hi = prev + 1, idx - 1
                break
            prev = idx
            if idx == last:
                break
            idx = min(idx + step, last)
            step *= 2
        if best is None:
            return finish(None)

    # Refine inside the bracket (lo..hi are untested indices below the first
    # known-feasible one).
    while lo <= hi:
        mid = (lo + hi) // 2
        solution = probe(mid)
        if solution is not None:
            best = solution
            hi = mid - 1
        else:
            lo = mid + 1
    return finish(best)


# -- shared constraint builders (also used by the System (2) relaxation) -------------


def _probe_value(f_low: float, f_high: float) -> float:
    """A probe objective strictly inside ``[f_low, f_high]`` whenever possible."""
    if math.isinf(f_high):
        return f_low + 1.0
    if f_high <= f_low:
        return f_low
    return 0.5 * (f_low + f_high)


def _extract_allocations(
    problem: MaxStretchProblem,
    skeleton: ConstraintSkeleton,
    offset: int,
    values: np.ndarray,
) -> dict[tuple[int, int, int], float]:
    """Read the x variables back, dropping numerically-zero allocations.

    ``offset`` is the index of the first x variable (1 when the objective
    variable precedes them).  The per-variable threshold (relative to the
    job's remaining work, as the historical loop computed it) is evaluated
    as one vectorized comparison; only the surviving entries pay a Python
    dict insert.
    """
    arrays = _assembly_arrays(skeleton)
    vals = np.asarray(values)[offset:offset + len(skeleton.keys)]
    works = problem.remaining_works()
    threshold = _ALLOCATION_EPS * np.maximum(1.0, works[arrays.key_jpos])
    keys = skeleton.keys
    return {keys[i]: float(vals[i]) for i in np.nonzero(vals > threshold)[0]}
