"""System (1): optimal max weighted flow / max-stretch (Section 4.3.1).

The off-line optimal maximum weighted flow is computed by

1. bracketing the optimum between a trivial lower bound (every job needs at
   least its ideal time) and a trivial upper bound (serial execution),
2. enumerating the *milestones* inside the bracket
   (:mod:`repro.lp.milestones`),
3. binary-searching the first milestone interval on which the parametric
   linear program System (1) is feasible, and
4. returning that LP's minimizer, which is the global optimum because
   feasibility of "max weighted flow <= F" is monotone in ``F``.

The LP works on *resources* (capability classes) rather than individual
machines; variables are the amounts of work ``x[t, c, j]`` of job ``j``
processed on resource ``c`` during elementary interval ``t``, plus the
objective ``F`` itself.  Constraints are exactly (1a)-(1e) of the paper:
interval/resource capacities (affine in ``F``), structural zeros outside the
[earliest start, deadline] window, and per-job completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import InfeasibleError, SolverError
from repro.lp.intervals import IntervalStructure, build_interval_structure
from repro.lp.milestones import enumerate_milestones
from repro.lp.problem import LPJob, MaxStretchProblem
from repro.lp.solver import LinearProgramBuilder

__all__ = ["MaxStretchSolution", "minimize_max_weighted_flow", "solve_on_objective_range"]

#: Work amounts below this threshold (relative to the job's remaining work)
#: are dropped from the reported allocation.
_ALLOCATION_EPS = 1e-10


@dataclass(frozen=True)
class MaxStretchSolution:
    """A feasible (usually optimal) allocation achieving a given max weighted flow.

    Attributes
    ----------
    objective:
        The achieved maximum weighted flow :math:`\\mathcal{F}` (equals the
        max-stretch when stretch weights are used).
    problem:
        The problem that was solved.
    structure:
        The interval structure used by the LP.
    interval_bounds:
        The elementary intervals, evaluated at :attr:`objective`, as
        ``(start, end)`` pairs.
    allocations:
        Mapping ``(interval index, resource index, job id) -> work``.
    """

    objective: float
    problem: MaxStretchProblem
    structure: IntervalStructure
    interval_bounds: tuple[tuple[float, float], ...]
    allocations: dict[tuple[int, int, int], float]

    # -- lookups ---------------------------------------------------------------
    def deadline(self, job_id: int) -> float:
        """Deadline of the job at the achieved objective."""
        return self.problem.job_by_id(job_id).deadline(self.objective)

    def allocations_in_interval(self, interval: int) -> dict[tuple[int, int], float]:
        """``(resource, job) -> work`` allocations inside one interval."""
        return {
            (c, j): w
            for (t, c, j), w in self.allocations.items()
            if t == interval and w > 0
        }

    def work_for_job(self, job_id: int) -> float:
        """Total work allocated to the job across intervals and resources."""
        return float(
            sum(w for (t, c, j), w in self.allocations.items() if j == job_id)
        )

    def work_for_job_on_resource(self, job_id: int, resource: int) -> float:
        """Total work of the job allocated to one resource."""
        return float(
            sum(
                w
                for (t, c, j), w in self.allocations.items()
                if j == job_id and c == resource
            )
        )

    def completion_interval(self, job_id: int) -> int:
        """Index of the last interval in which the job receives work.

        Used by the Online-EGDF variant to build its global priority list.
        Raises :class:`KeyError` when the job receives no allocation.
        """
        indices = [t for (t, c, j), w in self.allocations.items() if j == job_id and w > 0]
        if not indices:
            raise KeyError(job_id)
        return max(indices)

    def completion_interval_on_resource(self, job_id: int, resource: int) -> int | None:
        """Last interval in which the job receives work on ``resource`` (None if never)."""
        indices = [
            t
            for (t, c, j), w in self.allocations.items()
            if j == job_id and c == resource and w > 0
        ]
        return max(indices) if indices else None

    def jobs_on_resource(self, resource: int) -> list[int]:
        """Job ids receiving any work on ``resource``."""
        return sorted(
            {j for (t, c, j), w in self.allocations.items() if c == resource and w > 0}
        )

    def max_weighted_flow_of_allocation(self) -> float:
        """The max weighted flow actually implied by the allocation.

        Every job completes no later than the end of its last allocation
        interval, so this is a (possibly pessimistic) certificate that the
        allocation achieves :attr:`objective`.
        """
        worst = 0.0
        for job in self.problem.jobs:
            try:
                t = self.completion_interval(job.job_id)
            except KeyError:
                continue
            completion = self.interval_bounds[t][1]
            worst = max(worst, (completion - job.release) / job.flow_factor)
        return worst


def solve_on_objective_range(
    problem: MaxStretchProblem,
    f_low: float,
    f_high: float,
) -> MaxStretchSolution | None:
    """Solve System (1) restricted to objective values in ``[f_low, f_high]``.

    Returns ``None`` when no feasible schedule exists with a maximum weighted
    flow in that range (the expected outcome for ranges below the optimum).
    """
    if not problem.jobs:
        return MaxStretchSolution(
            objective=0.0,
            problem=problem,
            structure=build_interval_structure(problem, 0.0),
            interval_bounds=(),
            allocations={},
        )
    if f_high < f_low:
        raise ValueError(f"invalid objective range [{f_low}, {f_high}]")

    probe = _probe_value(f_low, f_high)
    structure = build_interval_structure(problem, probe)

    # Quick structural infeasibility check: a job whose deadline does not lie
    # strictly after its earliest start has no interval to run in.
    for job in problem.jobs:
        if len(structure.job_intervals(job.job_id)) == 0:
            return None

    builder = LinearProgramBuilder()
    f_var = builder.add_variable(objective=1.0, lower=f_low, upper=f_high, name="F")

    # Variables x[t, c, j].
    var_index: dict[tuple[int, int, int], int] = {}
    for job in problem.jobs:
        for t in structure.job_intervals(job.job_id):
            for c in job.resources:
                var_index[(t, c, job.job_id)] = builder.add_variable(
                    name=f"x[{t},{c},{job.job_id}]"
                )

    _add_capacity_constraints(builder, problem, structure, var_index, f_var=f_var)
    _add_completeness_constraints(builder, problem, structure, var_index)

    result = builder.solve()
    if not result.feasible:
        return None

    objective = result.value(f_var)
    allocations = _extract_allocations(problem, var_index, result.values)
    bounds = tuple(structure.bounds_at(objective))
    return MaxStretchSolution(
        objective=objective,
        problem=problem,
        structure=structure,
        interval_bounds=bounds,
        allocations=allocations,
    )


def minimize_max_weighted_flow(
    problem: MaxStretchProblem,
    *,
    max_milestones: int | None = None,
) -> MaxStretchSolution:
    """Compute the optimal max weighted flow (max-stretch) for ``problem``.

    Parameters
    ----------
    problem:
        The scheduling problem (off-line or an on-line re-optimization).
    max_milestones:
        Optional cap on the number of milestones considered (the list is
        thinned uniformly when longer).  The result is then an upper bound on
        the optimum, within the resolution of the retained milestones; the
        default (no cap) is exact.

    Raises
    ------
    InfeasibleError
        If no feasible schedule exists (cannot happen for well-formed
        problems: the trivial serial schedule is always feasible).
    """
    if not problem.jobs:
        return solve_on_objective_range(problem, 0.0, 0.0)  # type: ignore[return-value]

    f_lb = problem.objective_lower_bound()
    f_ub = problem.objective_upper_bound()
    milestones = enumerate_milestones(problem, lower=f_lb, upper=f_ub)
    if max_milestones is not None and len(milestones) > max_milestones:
        step = len(milestones) / max_milestones
        milestones = [milestones[int(i * step)] for i in range(max_milestones)]

    boundaries = [f_lb] + milestones + [f_ub]
    last = len(boundaries) - 2

    # Feasibility of "max weighted flow in [boundaries[i], boundaries[i+1]]"
    # is monotone in the interval index i.  The LPs built for small objective
    # values are much smaller (each job spans few elementary intervals), so
    # instead of a plain binary search over the milestone list we *gallop*
    # from the low end -- testing indices 0, 1, 3, 7, ... -- and only then
    # binary-search inside the bracket found.  This keeps every probe close
    # to the optimum and avoids the large LPs of mid-range probes.
    best: MaxStretchSolution | None = None
    lo = 0
    hi = last
    prev = -1
    idx = 0
    step = 1
    while idx <= last:
        solution = solve_on_objective_range(problem, boundaries[idx], boundaries[idx + 1])
        if solution is not None:
            best = solution
            hi = idx - 1
            lo = prev + 1
            break
        prev = idx
        if idx == last:
            break
        idx = min(idx + step, last)
        step *= 2

    # Refine inside the bracket (lo..hi are all untested indices below the
    # first known-feasible one).
    while best is not None and lo <= hi:
        mid = (lo + hi) // 2
        solution = solve_on_objective_range(problem, boundaries[mid], boundaries[mid + 1])
        if solution is not None:
            best = solution
            hi = mid - 1
        else:
            lo = mid + 1

    if best is None:
        # The serial upper bound should always be feasible; if roundoff made
        # the last interval infeasible, retry with a widened bracket before
        # giving up.
        widened = solve_on_objective_range(problem, f_lb, 2.0 * f_ub + 1.0)
        if widened is None:
            raise InfeasibleError(
                "no feasible schedule found for the max weighted flow problem"
            )
        best = widened
    return best


# -- shared constraint builders (also used by the System (2) relaxation) -------------


def _probe_value(f_low: float, f_high: float) -> float:
    """A probe objective strictly inside ``[f_low, f_high]`` whenever possible."""
    if math.isinf(f_high):
        return f_low + 1.0
    if f_high <= f_low:
        return f_low
    return 0.5 * (f_low + f_high)


def _add_capacity_constraints(
    builder: LinearProgramBuilder,
    problem: MaxStretchProblem,
    structure: IntervalStructure,
    var_index: Mapping[tuple[int, int, int], int],
    *,
    f_var: int | None,
    objective_value: float | None = None,
) -> None:
    """Constraint (1d): per interval and resource, work fits in the interval.

    When ``f_var`` is given the interval length is affine in the objective
    variable; otherwise ``objective_value`` must be provided and the length is
    a constant.
    """
    by_interval_resource: dict[tuple[int, int], list[int]] = {}
    for (t, c, j), idx in var_index.items():
        by_interval_resource.setdefault((t, c), []).append(idx)

    for (t, c), indices in sorted(by_interval_resource.items()):
        length = structure.interval_length(t)
        speed = problem.resources[c].speed
        terms: list[tuple[int, float]] = [(idx, 1.0) for idx in indices]
        if f_var is not None:
            # sum x - speed * coef * F <= speed * const
            terms.append((f_var, -speed * length.coef))
            rhs = speed * length.const
        else:
            assert objective_value is not None
            rhs = speed * max(0.0, length.at(objective_value))
        builder.add_leq(terms, rhs)


def _add_completeness_constraints(
    builder: LinearProgramBuilder,
    problem: MaxStretchProblem,
    structure: IntervalStructure,
    var_index: Mapping[tuple[int, int, int], int],
) -> None:
    """Constraint (1e): every job's remaining work is fully allocated."""
    by_job: dict[int, list[int]] = {}
    for (t, c, j), idx in var_index.items():
        by_job.setdefault(j, []).append(idx)
    for job in problem.jobs:
        indices = by_job.get(job.job_id, [])
        builder.add_eq([(idx, 1.0) for idx in indices], job.remaining_work)


def _extract_allocations(
    problem: MaxStretchProblem,
    var_index: Mapping[tuple[int, int, int], int],
    values: np.ndarray,
) -> dict[tuple[int, int, int], float]:
    """Read the x variables back, dropping numerically-zero allocations."""
    remaining = {job.job_id: job.remaining_work for job in problem.jobs}
    allocations: dict[tuple[int, int, int], float] = {}
    for (t, c, j), idx in var_index.items():
        value = float(values[idx])
        if value > _ALLOCATION_EPS * max(1.0, remaining[j]):
            allocations[(t, c, j)] = value
    return allocations
