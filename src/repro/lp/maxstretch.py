"""System (1): optimal max weighted flow / max-stretch (Section 4.3.1).

The off-line optimal maximum weighted flow is computed by

1. bracketing the optimum between a trivial lower bound (every job needs at
   least its ideal time) and a trivial upper bound (serial execution),
2. enumerating the *milestones* inside the bracket
   (:mod:`repro.lp.milestones`),
3. binary-searching the first milestone interval on which the parametric
   linear program System (1) is feasible, and
4. returning that LP's minimizer, which is the global optimum because
   feasibility of "max weighted flow <= F" is monotone in ``F``.

The LP works on *resources* (capability classes) rather than individual
machines; variables are the amounts of work ``x[t, c, j]`` of job ``j``
processed on resource ``c`` during elementary interval ``t``, plus the
objective ``F`` itself.  Constraints are exactly (1a)-(1e) of the paper:
interval/resource capacities (affine in ``F``), structural zeros outside the
[earliest start, deadline] window, and per-job completeness.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Mapping, MutableMapping, Sequence

import numpy as np

from repro.core.errors import InfeasibleError
from repro.lp.backends import SolverBackend, WarmStartHint
from repro.lp.intervals import IntervalStructure, build_interval_structure
from repro.lp.milestones import enumerate_milestones
from repro.lp.problem import MaxStretchProblem
from repro.lp.solver import LinearProgramBuilder

__all__ = [
    "MaxStretchSolution",
    "ConstraintSkeleton",
    "build_skeleton",
    "model_key",
    "warm_hint",
    "minimize_max_weighted_flow",
    "solve_on_objective_range",
]

#: Work amounts below this threshold (relative to the job's remaining work)
#: are dropped from the reported allocation.
_ALLOCATION_EPS = 1e-10


@dataclass(frozen=True)
class MaxStretchSolution:
    """A feasible (usually optimal) allocation achieving a given max weighted flow.

    Attributes
    ----------
    objective:
        The achieved maximum weighted flow :math:`\\mathcal{F}` (equals the
        max-stretch when stretch weights are used).
    problem:
        The problem that was solved.
    structure:
        The interval structure used by the LP.
    interval_bounds:
        The elementary intervals, evaluated at :attr:`objective`, as
        ``(start, end)`` pairs.
    allocations:
        Mapping ``(interval index, resource index, job id) -> work``.
    """

    objective: float
    problem: MaxStretchProblem
    structure: IntervalStructure
    interval_bounds: tuple[tuple[float, float], ...]
    allocations: dict[tuple[int, int, int], float]

    # -- lookups ---------------------------------------------------------------
    def deadline(self, job_id: int) -> float:
        """Deadline of the job at the achieved objective."""
        return self.problem.job_by_id(job_id).deadline(self.objective)

    def allocations_in_interval(self, interval: int) -> dict[tuple[int, int], float]:
        """``(resource, job) -> work`` allocations inside one interval."""
        return {
            (c, j): w
            for (t, c, j), w in self.allocations.items()
            if t == interval and w > 0
        }

    def work_for_job(self, job_id: int) -> float:
        """Total work allocated to the job across intervals and resources."""
        return float(
            sum(w for (t, c, j), w in self.allocations.items() if j == job_id)
        )

    def work_for_job_on_resource(self, job_id: int, resource: int) -> float:
        """Total work of the job allocated to one resource."""
        return float(
            sum(
                w
                for (t, c, j), w in self.allocations.items()
                if j == job_id and c == resource
            )
        )

    def completion_interval(self, job_id: int) -> int:
        """Index of the last interval in which the job receives work.

        Used by the Online-EGDF variant to build its global priority list.
        Raises :class:`KeyError` when the job receives no allocation.
        """
        indices = [t for (t, c, j), w in self.allocations.items() if j == job_id and w > 0]
        if not indices:
            raise KeyError(job_id)
        return max(indices)

    def completion_interval_on_resource(self, job_id: int, resource: int) -> int | None:
        """Last interval in which the job receives work on ``resource`` (None if never)."""
        indices = [
            t
            for (t, c, j), w in self.allocations.items()
            if j == job_id and c == resource and w > 0
        ]
        return max(indices) if indices else None

    def jobs_on_resource(self, resource: int) -> list[int]:
        """Job ids receiving any work on ``resource``."""
        return sorted(
            {j for (t, c, j), w in self.allocations.items() if c == resource and w > 0}
        )

    def max_weighted_flow_of_allocation(self) -> float:
        """The max weighted flow actually implied by the allocation.

        Every job completes no later than the end of its last allocation
        interval, so this is a (possibly pessimistic) certificate that the
        allocation achieves :attr:`objective`.
        """
        worst = 0.0
        for job in self.problem.jobs:
            try:
                t = self.completion_interval(job.job_id)
            except KeyError:
                continue
            completion = self.interval_bounds[t][1]
            worst = max(worst, (completion - job.release) / job.flow_factor)
        return worst


@dataclass(frozen=True)
class ConstraintSkeleton:
    """The structural part of a System (1)/(2) linear program.

    Everything here depends only on the interval structure and the jobs'
    eligible resources -- not on the objective bounds, the remaining works or
    the LP objective coefficients.  The on-line :class:`~repro.lp.incremental.
    ReplanContext` caches skeletons keyed by :attr:`signature` so that
    successive solves on the same milestone interval (e.g. the winning System
    (1) probe and the System (2) re-optimization that follows it) skip the
    variable-indexing and constraint-grouping work.

    Attributes
    ----------
    structure:
        The interval structure the skeleton was built on.
    keys:
        ``(interval, resource, job_id)`` for every variable, in the canonical
        order (job order of the problem, then interval, then resource).  The
        order matters: it pins the LP column order, keeping solver output
        bit-identical between the cached and the from-scratch paths.
    capacity_groups:
        ``((interval, resource), variable positions)`` sorted by (interval,
        resource) -- one capacity row (1d) each.
    completeness_groups:
        ``(job position in problem.jobs, variable positions)`` in job order --
        one completeness row (1e) each.
    signature:
        Hashable cache key: the boundary affines plus every job's
        (id, window, resources) tuple.
    """

    structure: IntervalStructure
    keys: tuple[tuple[int, int, int], ...]
    capacity_groups: tuple[tuple[tuple[int, int], tuple[int, ...]], ...]
    completeness_groups: tuple[tuple[int, tuple[int, ...]], ...]
    signature: tuple

    @property
    def n_variables(self) -> int:
        return len(self.keys)


def _skeleton_signature(problem: MaxStretchProblem, structure: IntervalStructure) -> tuple:
    boundaries = tuple((b.const, b.coef) for b in structure.boundaries)
    jobs = tuple(
        (
            job.job_id,
            structure.job_start_index[job.job_id],
            structure.job_deadline_index[job.job_id],
            job.resources,
        )
        for job in problem.jobs
    )
    return (boundaries, jobs)


def build_skeleton(
    problem: MaxStretchProblem,
    structure: IntervalStructure,
    cache: MutableMapping[tuple, "ConstraintSkeleton"] | None = None,
) -> ConstraintSkeleton | None:
    """Build (or fetch from ``cache``) the constraint skeleton for ``structure``.

    Returns ``None`` when some job has no interval to run in, i.e. its
    deadline does not lie strictly after its earliest start -- the quick
    structural infeasibility check of the milestone search.
    """
    for job in problem.jobs:
        if len(structure.job_intervals(job.job_id)) == 0:
            return None

    signature = _skeleton_signature(problem, structure)
    if cache is not None:
        cached = cache.get(signature)
        if cached is not None:
            return cached

    keys: list[tuple[int, int, int]] = []
    by_interval_resource: dict[tuple[int, int], list[int]] = {}
    by_job: list[tuple[int, tuple[int, ...]]] = []
    for pos_job, job in enumerate(problem.jobs):
        job_positions: list[int] = []
        for t in structure.job_intervals(job.job_id):
            for c in job.resources:
                position = len(keys)
                keys.append((t, c, job.job_id))
                by_interval_resource.setdefault((t, c), []).append(position)
                job_positions.append(position)
        by_job.append((pos_job, tuple(job_positions)))

    skeleton = ConstraintSkeleton(
        structure=structure,
        keys=tuple(keys),
        capacity_groups=tuple(
            (tc, tuple(positions))
            for tc, positions in sorted(by_interval_resource.items())
        ),
        completeness_groups=tuple(by_job),
        signature=signature,
    )
    if cache is not None:
        cache[signature] = skeleton
    return skeleton


def model_key(
    problem: MaxStretchProblem, skeleton: ConstraintSkeleton, tag: str
) -> tuple:
    """Persistence key for the LP built from ``skeleton`` (see backends).

    Two builders producing the same key are guaranteed to share the exact
    constraint matrix -- sparsity pattern *and* values: the variable/row
    layout is pinned by the skeleton's job windows and resource groups, the x
    coefficients are all 1, the F-column coefficients of System (1) are
    ``-speed * length.coef`` where the interval-length slopes derive from the
    boundary *slopes* only, and the resource speeds are keyed explicitly.
    The boundary constants (which move with the current time between replans)
    only enter the right-hand sides and the F bounds, which persistent
    backends delta-update.  ``tag`` separates the System (1) layout (leading
    F variable) from the System (2) layout (x variables only).
    """
    boundaries, jobs = skeleton.signature
    return (
        tag,
        tuple(coef for _const, coef in boundaries),
        jobs,
        tuple(r.speed for r in problem.resources),
    )


#: Stable column identity of the objective variable F in warm-start hints
#: (work-variable identities are non-negative bit-packed triples).
_F_COL_ID = -1


def warm_hint(
    problem: MaxStretchProblem,
    skeleton: ConstraintSkeleton,
    *,
    with_objective_var: bool,
) -> WarmStartHint:
    """Basis-transplant identities for the LP built from ``skeleton``.

    Work variables are identified by their ``(interval, resource, job)``
    triple, capacity rows by ``(interval, resource)`` and completeness rows
    by job id -- bit-packed into int64 so the backend's basis mapping stays
    vectorized.  Consecutive milestone probes (and the System (2) solve
    after the winning probe -- ``with_objective_var=False`` drops the F
    column) overlap on most identities, so the previous basis mapped through
    them is a near-optimal starting basis even though the matrices differ.
    All LPs of one search/replan sequence share a single series: the backend
    is per-context, so bases never leak across simulation runs.

    The id arrays are cached on the skeleton (which the
    :class:`~repro.lp.incremental.ReplanContext` skeleton cache already
    shares between the winning System (1) probe and the System (2) solve).
    """
    cache = skeleton.__dict__.get("_warm_ids")
    if cache is None:
        keys = skeleton.keys
        col_ids = np.fromiter(
            ((t << 36) | (c << 24) | j for t, c, j in keys),
            dtype=np.int64,
            count=len(keys),
        )
        n_caps = len(skeleton.capacity_groups)
        row_ids = np.fromiter(
            (
                (t << 12) | c
                for (t, c), _positions in skeleton.capacity_groups
            ),
            dtype=np.int64,
            count=n_caps,
        )
        job_rows = np.fromiter(
            (
                (1 << 60) | problem.jobs[pos_job].job_id
                for pos_job, _positions in skeleton.completeness_groups
            ),
            dtype=np.int64,
            count=len(skeleton.completeness_groups),
        )
        cache = (
            np.concatenate([np.array([_F_COL_ID], dtype=np.int64), col_ids]),
            col_ids,
            np.concatenate([row_ids, job_rows]),
        )
        # ConstraintSkeleton is frozen; stash the derived arrays directly in
        # its instance dict (pure cache, invisible to equality/signature).
        object.__setattr__(skeleton, "_warm_ids", cache)
    col_with_f, col_plain, row_ids = cache
    return WarmStartHint(
        series="milestone-lps",
        col_ids=col_with_f if with_objective_var else col_plain,
        row_ids=row_ids,
    )


def _assemble_constraints(
    builder: LinearProgramBuilder,
    problem: MaxStretchProblem,
    skeleton: ConstraintSkeleton,
    *,
    offset: int,
    f_var: int | None,
    objective_value: float | None,
) -> None:
    """Emit constraints (1d)/(1e) from a skeleton.

    ``offset`` is the index of the first x variable in the builder (1 when
    the objective variable ``F`` precedes them, 0 for fixed-objective
    solves); row order matches the historical builder exactly.
    """
    structure = skeleton.structure
    for (t, c), positions in skeleton.capacity_groups:
        length = structure.interval_length(t)
        speed = problem.resources[c].speed
        terms: list[tuple[int, float]] = [(pos + offset, 1.0) for pos in positions]
        if f_var is not None:
            terms.append((f_var, -speed * length.coef))
            rhs = speed * length.const
        else:
            assert objective_value is not None
            rhs = speed * max(0.0, length.at(objective_value))
        builder.add_leq(terms, rhs)
    for pos_job, positions in skeleton.completeness_groups:
        builder.add_eq(
            [(pos + offset, 1.0) for pos in positions],
            problem.jobs[pos_job].remaining_work,
        )


def solve_on_objective_range(
    problem: MaxStretchProblem,
    f_low: float,
    f_high: float,
    *,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
) -> MaxStretchSolution | None:
    """Solve System (1) restricted to objective values in ``[f_low, f_high]``.

    Returns ``None`` when no feasible schedule exists with a maximum weighted
    flow in that range (the expected outcome for ranges below the optimum).
    ``skeleton_cache`` optionally reuses constraint skeletons across solves
    sharing the same interval structure (see :class:`ConstraintSkeleton`);
    ``backend`` selects the LP solver backend (persistent backends
    additionally reuse live solver models across probes sharing a skeleton
    pattern, keyed by :func:`model_key`).
    """
    if not problem.jobs:
        return MaxStretchSolution(
            objective=0.0,
            problem=problem,
            structure=build_interval_structure(problem, 0.0),
            interval_bounds=(),
            allocations={},
        )
    if f_high < f_low:
        raise ValueError(f"invalid objective range [{f_low}, {f_high}]")

    probe = _probe_value(f_low, f_high)
    structure = build_interval_structure(problem, probe)
    skeleton = build_skeleton(problem, structure, skeleton_cache)
    if skeleton is None:
        return None

    builder = LinearProgramBuilder()
    f_var = builder.add_variable(objective=1.0, lower=f_low, upper=f_high, name="F")
    for t, c, j in skeleton.keys:
        builder.add_variable(name=f"x[{t},{c},{j}]")
    _assemble_constraints(
        builder, problem, skeleton, offset=1, f_var=f_var, objective_value=None
    )

    key = warm = None
    if backend is not None and backend.persistent:
        key = model_key(problem, skeleton, "sys1")
        warm = warm_hint(problem, skeleton, with_objective_var=True)
    result = builder.solve(backend=backend, key=key, warm=warm)
    if not result.feasible:
        return None

    objective = result.value(f_var)
    var_index = {key: pos + 1 for pos, key in enumerate(skeleton.keys)}
    allocations = _extract_allocations(problem, var_index, result.values)
    bounds = tuple(structure.bounds_at(objective))
    return MaxStretchSolution(
        objective=objective,
        problem=problem,
        structure=structure,
        interval_bounds=bounds,
        allocations=allocations,
    )


def minimize_max_weighted_flow(
    problem: MaxStretchProblem,
    *,
    max_milestones: int | None = None,
    warm_start: float | None = None,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
) -> MaxStretchSolution:
    """Compute the optimal max weighted flow (max-stretch) for ``problem``.

    Parameters
    ----------
    problem:
        The scheduling problem (off-line or an on-line re-optimization).
    max_milestones:
        Optional cap on the number of milestones considered (the list is
        thinned uniformly when longer).  The result is then an upper bound on
        the optimum, within the resolution of the retained milestones; the
        default (no cap) is exact.
    warm_start:
        Optional objective value expected to be close to the optimum
        (typically the previous replan's :math:`S^*` in the on-line
        heuristics).  The milestone search starts at the interval containing
        it and gallops outward, which usually needs 2-3 LP probes instead of
        the dozen of a cold search.  Because feasibility is monotone in the
        objective, the result is *identical* to a cold search -- only the
        probe order changes.
    skeleton_cache:
        Optional mapping reusing constraint skeletons across solves (see
        :class:`ConstraintSkeleton`).
    backend:
        LP solver backend; ``None`` uses the one-shot scipy default.  A
        persistent backend (``HighsPersistentBackend``) additionally reuses
        live solver models between probes sharing a skeleton pattern and
        warm-starts dual simplex from the previous basis; results are
        equivalent within solver tolerance.

    Raises
    ------
    InfeasibleError
        If no feasible schedule exists (cannot happen for well-formed
        problems: the trivial serial schedule is always feasible).
    """
    if not problem.jobs:
        return solve_on_objective_range(problem, 0.0, 0.0)  # type: ignore[return-value]

    f_lb = problem.objective_lower_bound()
    f_ub = problem.objective_upper_bound()
    milestones = enumerate_milestones(problem, lower=f_lb, upper=f_ub)
    if max_milestones is not None and len(milestones) > max_milestones:
        step = len(milestones) / max_milestones
        milestones = [milestones[int(i * step)] for i in range(max_milestones)]

    boundaries = [f_lb] + milestones + [f_ub]
    last = len(boundaries) - 2

    start_idx = 0
    if warm_start is not None and last > 0:
        start_idx = min(max(bisect.bisect_right(boundaries, warm_start) - 1, 0), last)

    best = _search_first_feasible(
        problem, boundaries, start_idx, skeleton_cache=skeleton_cache, backend=backend
    )

    if best is None:
        # The serial upper bound should always be feasible; if roundoff made
        # the last interval infeasible, retry with a widened bracket before
        # giving up.
        widened = solve_on_objective_range(
            problem, f_lb, 2.0 * f_ub + 1.0, skeleton_cache=skeleton_cache,
            backend=backend,
        )
        if widened is None:
            raise InfeasibleError(
                "no feasible schedule found for the max weighted flow problem"
            )
        best = widened
    return best


def _search_first_feasible(
    problem: MaxStretchProblem,
    boundaries: Sequence[float],
    start_idx: int,
    *,
    skeleton_cache: MutableMapping[tuple, ConstraintSkeleton] | None = None,
    backend: SolverBackend | None = None,
) -> MaxStretchSolution | None:
    """Locate the first feasible milestone interval and return its optimum.

    Feasibility of "max weighted flow in [boundaries[i], boundaries[i+1]]" is
    monotone in the interval index ``i``, so the minimizer lives in the first
    feasible interval.  The search gallops outward from ``start_idx`` --
    downward while feasible, upward while infeasible, with doubling steps --
    then binary-searches the bracket found.  With ``start_idx = 0`` this is
    the classical cold search (the LPs built for small objective values are
    much smaller, so probing from the low end keeps every probe cheap); a
    warm ``start_idx`` near the optimum typically needs only 2-3 probes.
    """
    last = len(boundaries) - 2

    def probe(i: int) -> MaxStretchSolution | None:
        return solve_on_objective_range(
            problem, boundaries[i], boundaries[i + 1],
            skeleton_cache=skeleton_cache, backend=backend,
        )

    best: MaxStretchSolution | None = None
    lo = 0
    hi = -1
    solution = probe(start_idx)
    if solution is not None:
        # Gallop downward until an infeasible interval bounds the bracket
        # (a feasible probe at index 0 means the optimum lives there and the
        # bracket stays empty).
        best = solution
        floor = start_idx
        step = 1
        idx = start_idx - 1
        while idx >= 0:
            solution = probe(idx)
            if solution is None:
                lo, hi = idx + 1, floor - 1
                break
            best = solution
            floor = idx
            if idx == 0:
                break
            idx = max(idx - step, 0)
            step *= 2
    else:
        # Gallop upward until a feasible interval is found.
        prev = start_idx
        step = 1
        idx = start_idx + 1
        while idx <= last:
            solution = probe(idx)
            if solution is not None:
                best = solution
                lo, hi = prev + 1, idx - 1
                break
            prev = idx
            if idx == last:
                break
            idx = min(idx + step, last)
            step *= 2
        if best is None:
            return None

    # Refine inside the bracket (lo..hi are untested indices below the first
    # known-feasible one).
    while lo <= hi:
        mid = (lo + hi) // 2
        solution = probe(mid)
        if solution is not None:
            best = solution
            hi = mid - 1
        else:
            lo = mid + 1
    return best


# -- shared constraint builders (also used by the System (2) relaxation) -------------


def _probe_value(f_low: float, f_high: float) -> float:
    """A probe objective strictly inside ``[f_low, f_high]`` whenever possible."""
    if math.isinf(f_high):
        return f_low + 1.0
    if f_high <= f_low:
        return f_low
    return 0.5 * (f_low + f_high)


def _extract_allocations(
    problem: MaxStretchProblem,
    var_index: Mapping[tuple[int, int, int], int],
    values: np.ndarray,
) -> dict[tuple[int, int, int], float]:
    """Read the x variables back, dropping numerically-zero allocations."""
    remaining = {job.job_id: job.remaining_work for job in problem.jobs}
    allocations: dict[tuple[int, int, int], float] = {}
    for (t, c, j), idx in var_index.items():
        value = float(values[idx])
        if value > _ALLOCATION_EPS * max(1.0, remaining[j]):
            allocations[(t, c, j)] = value
    return allocations
