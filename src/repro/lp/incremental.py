"""Incremental replanning context for the on-line LP heuristics.

The on-line heuristics of Section 4.3.2 solve Systems (1) and (2) from
scratch at every release date, which is the scheduling-cost bottleneck that
Section 5.3 measures.  Between two consecutive replans, however, most of the
work is identical:

* the **platform** never changes, so the capability-class decomposition and
  the per-databank eligible resource sets are invariants of the run;
* the per-job **flow factors** (ideal times) are invariants of the instance;
* the optimal max-stretch :math:`S^*` moves little from one release date to
  the next, so the milestone search can be **warm-started** at the previous
  optimum -- and the previous search's strongest **infeasibility
  certificate**, re-evaluated against the new remaining works, prunes the
  next search further still (arrival ``k+1`` starts above every milestone
  the carried dual ray refutes);
* the winning System (1) probe and the System (2) re-optimization that
  follows share the same milestone interval, so their **constraint
  skeletons** (variable indexing and row grouping) are identical and cached.

:class:`ReplanContext` bundles these caches behind the same three calls the
from-scratch path makes (`build problem`, `solve System (1)`, `re-optimize
System (2)`).  Because warm-starting only reorders the probes of a monotone
feasibility search and the cached skeletons pin the exact variable order of
the historical builder, the context returns *bit-identical* objectives and
allocations to the from-scratch path -- ``incremental=False`` on
:class:`~repro.schedulers.online_lp.OnlineLPScheduler` exists purely for
benchmarking the difference.

The LP solves themselves go through a pluggable :mod:`repro.lp.backends`
backend owned by the context.  The default (one-shot scipy) preserves the
bit-identical guarantee above; the persistent HiGHS backend
(``solver_backend="highs"``) additionally keeps factorized solver models
alive between probes and replans, which changes results only within solver
tolerance (equivalence is enforced by ``tests/test_lp_backends.py``).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.instance import Instance
from repro.lp.backends import SolverBackend, make_backend
from repro.lp.maxstretch import (
    ConstraintSkeleton,
    MaxStretchSolution,
    MilestoneSearchReport,
    SearchCertificate,
    minimize_max_weighted_flow,
)
from repro.lp.problem import (
    JobTable,
    MaxStretchProblem,
    Resource,
    build_eligibility,
    build_job_table,
    build_resources,
    problem_from_instance,
)
from repro.lp.relaxation import reoptimize_allocation

__all__ = ["ReplanContext"]

#: Skeleton cache entries kept per context.  One replan touches a handful of
#: milestone intervals; keeping a small multiple of that bounds memory on
#: long campaigns without measurably hurting the hit rate.
_MAX_SKELETONS = 64


class ReplanContext:
    """Caches carried across the successive LP solves of one simulation run.

    Parameters
    ----------
    instance:
        The instance being simulated.  The platform-derived caches (resource
        tuple, per-databank eligibility) are computed once here.
    solver_backend:
        LP solver backend carried across the context's solves: a name
        (``"scipy"`` | ``"highs"`` | ``"auto"``), a ready
        :class:`~repro.lp.backends.SolverBackend` instance, or ``None`` for
        the one-shot scipy default.  With the persistent HiGHS backend the
        context owns the live solver models alongside its constraint-skeleton
        cache, so consecutive milestone probes and System (2) solves sharing
        a skeleton pattern are delta updates on an already-factorized model
        instead of from-scratch rebuilds.

    Attributes
    ----------
    last_objective:
        The optimal max weighted flow of the previous replan (``None`` before
        the first); used to warm-start the next milestone search.
    last_certificate:
        The strongest infeasibility certificate of the previous milestone
        search (``None`` without certificate support).  Re-evaluated against
        the next replan's remaining works, it raises the warm start above
        every milestone the carried dual ray still refutes -- a pure
        probe-order hint, so results are unaffected.
    n_replans:
        Number of System (1) resolutions performed through this context.
    n_probes_solved / n_probes_skipped:
        Accumulated milestone-search probe economy across the context's
        replans (solved LPs vs candidates eliminated without a solve).
    backend:
        The resolved :class:`~repro.lp.backends.SolverBackend`.
    """

    def __init__(
        self,
        instance: Instance,
        *,
        solver_backend: "str | SolverBackend | None" = None,
        milestone_search: str | None = None,
    ):
        self.instance = instance
        self.resources: tuple[Resource, ...] = build_resources(instance)
        self.eligibility: dict[str | None, tuple[int, ...]] = build_eligibility(
            instance, self.resources
        )
        self.job_table: JobTable = build_job_table(
            instance, self.resources, self.eligibility
        )
        self.backend: SolverBackend = make_backend(solver_backend)
        # A caller-supplied backend instance may have served a previous run;
        # drop its live models/bases so warm starts never cross simulations
        # (no-op for the freshly made or stateless backends).
        self.backend.close()
        self.milestone_search = milestone_search
        self.last_objective: float | None = None
        self.last_certificate: SearchCertificate | None = None
        self.n_replans: int = 0
        self.n_probes_solved: int = 0
        self.n_probes_skipped: int = 0
        self._skeletons: dict[tuple, ConstraintSkeleton] = {}

    # -- problem construction ------------------------------------------------------
    def build_problem(
        self, now: float, remaining: Mapping[int, float]
    ) -> MaxStretchProblem:
        """The on-line problem at time ``now`` for the active jobs.

        Identical to ``problem_from_instance(instance, now=now,
        remaining=remaining)`` but skipping the capability-class,
        eligibility and per-job weight recomputation (the array-backed
        :class:`~repro.lp.problem.JobTable` fast path).
        """
        return problem_from_instance(
            self.instance,
            now=now,
            remaining=remaining,
            resources=self.resources,
            eligibility=self.eligibility,
            job_table=self.job_table,
        )

    # -- solves --------------------------------------------------------------------
    def solve_max_stretch(self, problem: MaxStretchProblem) -> MaxStretchSolution:
        """System (1), warm-started at the previous optimum and certificate.

        The warm start is the previous replan's :math:`S^*`, raised to the
        carried certificate's re-evaluated bound when that refutes more
        (e.g. after a burst of arrivals increased the load).  Both only
        choose the first probed milestone interval; the search stays exact.
        """
        report = MilestoneSearchReport()
        solution = minimize_max_weighted_flow(
            problem,
            warm_start=self._warm_hint(problem),
            skeleton_cache=self._skeletons,
            backend=self.backend,
            search=self.milestone_search,
            report=report,
        )
        self.last_objective = solution.objective
        self.last_certificate = report.certificate or self.last_certificate
        self.n_replans += 1
        self.n_probes_solved += report.n_solved
        self.n_probes_skipped += report.n_skipped
        self._trim_skeletons()
        return solution

    def _warm_hint(self, problem: MaxStretchProblem) -> float | None:
        """The milestone-search warm start for ``problem`` (None on the first replan)."""
        hint = self.last_objective
        if self.last_certificate is not None:
            works = {job.job_id: job.remaining_work for job in problem.jobs}
            bound = self.last_certificate.bound_for(works)
            if bound is not None and (hint is None or bound > hint):
                hint = bound
        return hint

    def reoptimize(
        self, problem: MaxStretchProblem, objective: float
    ) -> MaxStretchSolution:
        """System (2) at fixed ``objective``, sharing the skeleton cache."""
        return reoptimize_allocation(
            problem, objective, skeleton_cache=self._skeletons, backend=self.backend
        )

    def close(self) -> None:
        """Release the backend's persistent solver state (live HiGHS models)."""
        self.backend.close()

    # -- internals ----------------------------------------------------------------
    def _trim_skeletons(self) -> None:
        """Bound the skeleton cache (drop oldest entries, dict is insertion-ordered)."""
        while len(self._skeletons) > _MAX_SKELETONS:
            self._skeletons.pop(next(iter(self._skeletons)))
