"""Incremental replanning context for the on-line LP heuristics.

The on-line heuristics of Section 4.3.2 solve Systems (1) and (2) from
scratch at every release date, which is the scheduling-cost bottleneck that
Section 5.3 measures.  Between two consecutive replans, however, most of the
work is identical:

* the **platform** never changes, so the capability-class decomposition and
  the per-databank eligible resource sets are invariants of the run;
* the per-job **flow factors** (ideal times) are invariants of the instance;
* the optimal max-stretch :math:`S^*` moves little from one release date to
  the next, so the milestone search can be **warm-started** at the previous
  optimum and usually terminates within 2-3 LP probes instead of the dozen
  probes of a cold gallop + binary search;
* the winning System (1) probe and the System (2) re-optimization that
  follows share the same milestone interval, so their **constraint
  skeletons** (variable indexing and row grouping) are identical and cached.

:class:`ReplanContext` bundles these caches behind the same three calls the
from-scratch path makes (`build problem`, `solve System (1)`, `re-optimize
System (2)`).  Because warm-starting only reorders the probes of a monotone
feasibility search and the cached skeletons pin the exact variable order of
the historical builder, the context returns *bit-identical* objectives and
allocations to the from-scratch path -- ``incremental=False`` on
:class:`~repro.schedulers.online_lp.OnlineLPScheduler` exists purely for
benchmarking the difference.

The LP solves themselves go through a pluggable :mod:`repro.lp.backends`
backend owned by the context.  The default (one-shot scipy) preserves the
bit-identical guarantee above; the persistent HiGHS backend
(``solver_backend="highs"``) additionally keeps factorized solver models
alive between probes and replans, which changes results only within solver
tolerance (equivalence is enforced by ``tests/test_lp_backends.py``).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.instance import Instance
from repro.lp.backends import SolverBackend, make_backend
from repro.lp.maxstretch import (
    ConstraintSkeleton,
    MaxStretchSolution,
    minimize_max_weighted_flow,
)
from repro.lp.problem import (
    MaxStretchProblem,
    Resource,
    build_eligibility,
    build_resources,
    problem_from_instance,
)
from repro.lp.relaxation import reoptimize_allocation

__all__ = ["ReplanContext"]

#: Skeleton cache entries kept per context.  One replan touches a handful of
#: milestone intervals; keeping a small multiple of that bounds memory on
#: long campaigns without measurably hurting the hit rate.
_MAX_SKELETONS = 64


class ReplanContext:
    """Caches carried across the successive LP solves of one simulation run.

    Parameters
    ----------
    instance:
        The instance being simulated.  The platform-derived caches (resource
        tuple, per-databank eligibility) are computed once here.
    solver_backend:
        LP solver backend carried across the context's solves: a name
        (``"scipy"`` | ``"highs"`` | ``"auto"``), a ready
        :class:`~repro.lp.backends.SolverBackend` instance, or ``None`` for
        the one-shot scipy default.  With the persistent HiGHS backend the
        context owns the live solver models alongside its constraint-skeleton
        cache, so consecutive milestone probes and System (2) solves sharing
        a skeleton pattern are delta updates on an already-factorized model
        instead of from-scratch rebuilds.

    Attributes
    ----------
    last_objective:
        The optimal max weighted flow of the previous replan (``None`` before
        the first); used to warm-start the next milestone search.
    n_replans:
        Number of System (1) resolutions performed through this context.
    backend:
        The resolved :class:`~repro.lp.backends.SolverBackend`.
    """

    def __init__(
        self,
        instance: Instance,
        *,
        solver_backend: "str | SolverBackend | None" = None,
    ):
        self.instance = instance
        self.resources: tuple[Resource, ...] = build_resources(instance)
        self.eligibility: dict[str | None, tuple[int, ...]] = build_eligibility(
            instance, self.resources
        )
        self.backend: SolverBackend = make_backend(solver_backend)
        # A caller-supplied backend instance may have served a previous run;
        # drop its live models/bases so warm starts never cross simulations
        # (no-op for the freshly made or stateless backends).
        self.backend.close()
        self.last_objective: float | None = None
        self.n_replans: int = 0
        self._skeletons: dict[tuple, ConstraintSkeleton] = {}

    # -- problem construction ------------------------------------------------------
    def build_problem(
        self, now: float, remaining: Mapping[int, float]
    ) -> MaxStretchProblem:
        """The on-line problem at time ``now`` for the active jobs.

        Identical to ``problem_from_instance(instance, now=now,
        remaining=remaining)`` but skipping the capability-class and
        eligibility recomputation.
        """
        return problem_from_instance(
            self.instance,
            now=now,
            remaining=remaining,
            resources=self.resources,
            eligibility=self.eligibility,
        )

    # -- solves --------------------------------------------------------------------
    def solve_max_stretch(self, problem: MaxStretchProblem) -> MaxStretchSolution:
        """System (1), warm-started at the previous replan's optimum."""
        solution = minimize_max_weighted_flow(
            problem,
            warm_start=self.last_objective,
            skeleton_cache=self._skeletons,
            backend=self.backend,
        )
        self.last_objective = solution.objective
        self.n_replans += 1
        self._trim_skeletons()
        return solution

    def reoptimize(
        self, problem: MaxStretchProblem, objective: float
    ) -> MaxStretchSolution:
        """System (2) at fixed ``objective``, sharing the skeleton cache."""
        return reoptimize_allocation(
            problem, objective, skeleton_cache=self._skeletons, backend=self.backend
        )

    def close(self) -> None:
        """Release the backend's persistent solver state (live HiGHS models)."""
        self.backend.close()

    # -- internals ----------------------------------------------------------------
    def _trim_skeletons(self) -> None:
        """Bound the skeleton cache (drop oldest entries, dict is insertion-ordered)."""
        while len(self._skeletons) > _MAX_SKELETONS:
            self._skeletons.pop(next(iter(self._skeletons)))
