"""Incremental replanning context for the on-line LP heuristics.

The on-line heuristics of Section 4.3.2 solve Systems (1) and (2) from
scratch at every release date, which is the scheduling-cost bottleneck that
Section 5.3 measures.  Between two consecutive replans, however, most of the
work is identical:

* the **platform** never changes, so the capability-class decomposition and
  the per-databank eligible resource sets are invariants of the run;
* the per-job **flow factors** (ideal times) are invariants of the instance;
* the optimal max-stretch :math:`S^*` moves little from one release date to
  the next, so the milestone search can be **warm-started** at the previous
  optimum -- and the previous search's strongest **infeasibility
  certificate**, re-evaluated against the new remaining works, prunes the
  next search further still (arrival ``k+1`` starts above every milestone
  the carried dual ray refutes);
* the winning System (1) probe and the System (2) re-optimization that
  follows share the same milestone interval, so their **constraint
  skeletons** (variable indexing and row grouping) are identical and cached.

:class:`ReplanContext` bundles these caches behind the same three calls the
from-scratch path makes (`build problem`, `solve System (1)`, `re-optimize
System (2)`).  Because warm-starting only reorders the probes of a monotone
feasibility search and the cached skeletons pin the exact variable order of
the historical builder, the context returns *bit-identical* objectives and
allocations to the from-scratch path -- ``incremental=False`` on
:class:`~repro.schedulers.online_lp.OnlineLPScheduler` exists purely for
benchmarking the difference.

The LP solves themselves go through a pluggable :mod:`repro.lp.backends`
backend owned by the context.  The default (one-shot scipy) preserves the
bit-identical guarantee above; the persistent HiGHS backend
(``solver_backend="highs"``) additionally keeps factorized solver models
alive between probes and replans, which changes results only within solver
tolerance (equivalence is enforced by ``tests/test_lp_backends.py``).

Two further accelerators stack on top of the per-run caches:

* a **cross-run solver-state bank** (:mod:`repro.lp.bank`): when the
  campaign runner hands the context a :class:`~repro.lp.bank.SolverStateBank`,
  the bucket for the instance's content key supplies banked primal optima
  (exact :func:`~repro.lp.bank.problem_signature` matches skip the whole
  System (1) search or System (2) re-optimization), first-replan warm
  hints, and the previous publisher's exported warm-start bases; the
  context publishes its own final state back on run completion
  (:meth:`ReplanContext.publish`);
* a **feasible-side carry** within the run: when the active set only
  *shrank* since the previous replan (a subset of the jobs, none with more
  remaining work), the accepted :math:`S^*` stays feasible and is passed
  as ``feasible_cap`` so the milestone search never gallops upward past
  the known-feasible interval -- and an exactly-unchanged problem reuses
  the previous solution outright.

Both are accelerators only -- banked solutions are exact optima of
content-identical LPs and hints/caps merely reorder a monotone search --
so acceptance logic in :mod:`repro.lp.maxstretch` is untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.errors import ModelError, SolverError
from repro.core.instance import Instance
from repro.lp.backends import (
    SolverBackend,
    make_backend,
    note_bank_lookup,
    note_primal_reuse,
    note_speculation,
)
from repro.lp.bank import BankBucket, SolverStateBank, instance_content_key, problem_signature
from repro.lp.maxstretch import (
    ConstraintSkeleton,
    MaxStretchSolution,
    MilestoneSearchReport,
    SearchCertificate,
    minimize_max_weighted_flow,
)
from repro.lp.problem import (
    JobTable,
    MaxStretchProblem,
    Resource,
    build_eligibility,
    build_job_table,
    build_resources,
    problem_from_instance,
)
from repro.lp.relaxation import reoptimize_allocation
from repro.lp.resilience import annotate_solver_error

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job

__all__ = ["ReplanContext"]

#: Skeleton cache entries kept per context.  One replan touches a handful of
#: milestone intervals; keeping a small multiple of that bounds memory on
#: long campaigns without measurably hurting the hit rate.
_MAX_SKELETONS = 64


class ReplanContext:
    """Caches carried across the successive LP solves of one simulation run.

    Parameters
    ----------
    instance:
        The instance being simulated.  The platform-derived caches (resource
        tuple, per-databank eligibility) are computed once here.
    solver_backend:
        LP solver backend carried across the context's solves: a name
        (``"scipy"`` | ``"highs"`` | ``"auto"``), a ready
        :class:`~repro.lp.backends.SolverBackend` instance, or ``None`` for
        the one-shot scipy default.  With the persistent HiGHS backend the
        context owns the live solver models alongside its constraint-skeleton
        cache, so consecutive milestone probes and System (2) solves sharing
        a skeleton pattern are delta updates on an already-factorized model
        instead of from-scratch rebuilds.
    state_bank:
        Optional :class:`~repro.lp.bank.SolverStateBank` shared across the
        runs of one campaign worker.  The context acquires the bucket for
        the instance's content key at construction (seeding the backend's
        warm-start series from the previous publisher's exported bases),
        consumes banked primal solutions and first-replan hints during the
        run, and publishes its own final state back through
        :meth:`publish`.  ``None`` (the default, and every non-campaign
        path) keeps the historical per-run-isolated behavior.

    Attributes
    ----------
    last_objective:
        The optimal max weighted flow of the previous replan (``None`` before
        the first); used to warm-start the next milestone search.
    last_certificate:
        The strongest infeasibility certificate of the previous milestone
        search (``None`` without certificate support).  Re-evaluated against
        the next replan's remaining works, it raises the warm start above
        every milestone the carried dual ray still refutes -- a pure
        probe-order hint, so results are unaffected.
    n_replans:
        Number of System (1) resolutions performed through this context.
    n_probes_solved / n_probes_skipped:
        Accumulated milestone-search probe economy across the context's
        replans (solved LPs vs candidates eliminated without a solve).
    backend:
        The resolved :class:`~repro.lp.backends.SolverBackend`.
    """

    def __init__(
        self,
        instance: Instance,
        *,
        solver_backend: "str | SolverBackend | None" = None,
        milestone_search: str | None = None,
        state_bank: "SolverStateBank | None" = None,
    ):
        self.instance = instance
        self.resources: tuple[Resource, ...] = build_resources(instance)
        self.eligibility: dict[str | None, tuple[int, ...]] = build_eligibility(
            instance, self.resources
        )
        self.job_table: JobTable = build_job_table(
            instance, self.resources, self.eligibility
        )
        self._table_ids: set[int] = {row[0] for row in self.job_table.rows}
        self.backend: SolverBackend = make_backend(solver_backend)
        # A caller-supplied backend instance may have served a previous run;
        # drop its live models/bases so warm starts never cross simulations
        # (no-op for the freshly made or stateless backends).  Cross-run
        # carry happens exclusively through the content-addressed bank.
        self.backend.close()
        self.milestone_search = milestone_search
        self.last_objective: float | None = None
        self.last_certificate: SearchCertificate | None = None
        self.n_replans: int = 0
        self.n_probes_solved: int = 0
        self.n_probes_skipped: int = 0
        self._skeletons: dict[tuple, ConstraintSkeleton] = {}
        self._bucket: BankBucket | None = None
        self._bank_hit = False
        # The hit/miss counter is emitted at the first solve instead of here
        # so it lands inside the run's record_lp_probes block.
        self._bank_lookup_pending = False
        self._last_sig: tuple | None = None
        self._last_problem: MaxStretchProblem | None = None
        self._last_solution: MaxStretchSolution | None = None
        self._prev_active: dict[int, float] | None = None
        # Single-slot speculation memo: (signature, System (1) solution,
        # certificate, optional System (2) solution).  Filled by
        # :meth:`speculate` during idle gaps, consumed (hit or miss) by the
        # next :meth:`solve_max_stretch`.
        self._spec: (
            "tuple[tuple, MaxStretchSolution, SearchCertificate | None,"
            " MaxStretchSolution | None] | None"
        ) = None
        # Carry of a hit's pre-solved System (2): (signature, objective,
        # solution), consumed by the :meth:`reoptimize` that follows.
        self._spec_sys2: "tuple[tuple, float, MaxStretchSolution] | None" = None
        if state_bank is not None:
            self._bucket, self._bank_hit = state_bank.acquire(
                instance_content_key(instance)
            )
            self._bank_lookup_pending = True
            if self._bank_hit and self._bucket.series_state is not None:
                self.backend.import_series_state(self._bucket.series_state)

    # -- problem construction ------------------------------------------------------
    def build_problem(
        self, now: float, remaining: Mapping[int, float]
    ) -> MaxStretchProblem:
        """The on-line problem at time ``now`` for the active jobs.

        Identical to ``problem_from_instance(instance, now=now,
        remaining=remaining)`` but skipping the capability-class,
        eligibility and per-job weight recomputation (the array-backed
        :class:`~repro.lp.problem.JobTable` fast path).
        """
        return problem_from_instance(
            self.instance,
            now=now,
            remaining=remaining,
            resources=self.resources,
            eligibility=self.eligibility,
            job_table=self.job_table,
        )

    def ensure_jobs(self, jobs: "Sequence[Job]") -> None:
        """Extend the replan fast path with jobs admitted after construction.

        Batch mode builds the :class:`~repro.lp.problem.JobTable` from the
        full instance up front, so this is a no-op there (every arriving job
        is already a table row).  In service mode the instance *grows* as
        submissions are accepted; the scheduler calls this from its arrival
        hook so the table gains one row per admitted job, computed by the
        exact expressions :func:`~repro.lp.problem.build_job_table` uses.
        Jobs are admitted in ``(release, job_id)`` order (the
        :class:`~repro.core.instance.LiveInstance` invariant), so a table
        grown incrementally is bit-identical to one built from the final
        instance restricted to the jobs seen so far -- which keeps service
        replans bit-identical to their batch counterparts.
        """
        new_rows = []
        for job in jobs:
            if job.job_id in self._table_ids:
                continue
            eligible = self.eligibility.get(job.databank)
            if eligible is None:
                # First job targeting this databank: derive its eligible
                # resource set exactly as build_eligibility would have.
                eligible = tuple(
                    r.index
                    for r in self.resources
                    if job.databank is None or job.databank in r.databanks
                )
                self.eligibility[job.databank] = eligible
            if not eligible:
                raise ModelError(f"job {job.job_id} has no eligible capability class")
            new_rows.append(
                (
                    job.job_id,
                    job.release,
                    job.size,
                    1.0 / self.instance.weight(job.job_id),
                    eligible,
                )
            )
            self._table_ids.add(job.job_id)
        if new_rows:
            # JobTable is frozen (its arrays() cache must match its rows);
            # grow by replacement so the cache is rebuilt lazily.
            self.job_table = JobTable(rows=self.job_table.rows + tuple(new_rows))

    # -- solves --------------------------------------------------------------------
    def solve_max_stretch(self, problem: MaxStretchProblem) -> MaxStretchSolution:
        """System (1), warm-started at the previous optimum and certificate.

        The warm start is the previous replan's :math:`S^*`, raised to the
        carried certificate's re-evaluated bound when that refutes more
        (e.g. after a burst of arrivals increased the load).  Both only
        choose the first probed milestone interval; the search stays exact.

        Before searching at all, two exact-match shortcuts are tried: a
        problem content-identical to the previous replan's reuses its
        solution outright, and a banked solution stored for the same
        :func:`~repro.lp.bank.problem_signature` by an earlier run of the
        same instance is re-bound and returned without solving.
        """
        if self._bank_lookup_pending:
            # Deferred from __init__ so the counter lands inside the run's
            # record_lp_probes block rather than at scheduler construction.
            self._bank_lookup_pending = False
            note_bank_lookup(self._bank_hit)
        sig = problem_signature(problem)
        reused = self._reuse_sys1(problem, sig)
        if reused is not None:
            return reused
        speculated = self._consume_speculation(problem, sig)
        if speculated is not None:
            return speculated

        report = MilestoneSearchReport()
        try:
            solution = minimize_max_weighted_flow(
                problem,
                warm_start=self._warm_hint(problem),
                feasible_cap=self._feasible_cap(problem),
                skeleton_cache=self._skeletons,
                backend=self.backend,
                search=self.milestone_search,
                report=report,
            )
        except SolverError as exc:
            # Attach the probe identity so a campaign `failed` record can
            # say which LP content died without re-running the replan.
            annotate_solver_error(exc, backend=self.backend.name, probe_signature=sig)
            raise
        self._note_solution(problem, sig, solution, report.certificate)
        self.n_probes_solved += report.n_solved
        self.n_probes_skipped += report.n_skipped
        self._trim_skeletons()
        if self._bucket is not None and sig not in self._bucket.sys1:
            self._bucket.sys1[sig] = (solution, report.certificate)
            self._bucket.trim()
        return solution

    def _reuse_sys1(
        self, problem: MaxStretchProblem, sig: tuple
    ) -> MaxStretchSolution | None:
        """A stored System (1) optimum for ``sig``, or ``None`` to solve.

        Checks the previous replan of *this* run first (the active set can
        be unchanged when a replan fires without progress), then the bank
        bucket (an earlier run of the content-identical instance solved the
        exact same problem -- e.g. every variant's first replan, before any
        executed work diverges).  A reused solution is an exact optimum of
        this problem, so downstream acceptance is unchanged.
        """
        if sig == self._last_sig and self._last_solution is not None:
            note_primal_reuse()
            solution = self._rebind(self._last_solution, problem)
            self._note_solution(problem, sig, solution, None)
            return solution
        if self._bucket is not None:
            stored = self._bucket.sys1.get(sig)
            if stored is not None:
                banked, certificate = stored
                note_primal_reuse()
                solution = self._rebind(banked, problem)
                self._note_solution(problem, sig, solution, certificate)
                return solution
        return None

    # -- speculative pre-solves ------------------------------------------------------
    def speculate(self, problem: MaxStretchProblem, *, with_reoptimize: bool = True) -> None:
        """Pre-solve a *predicted* next replan problem during an idle gap.

        The solution is stored in a single-slot memo keyed by the problem's
        exact content signature; the next :meth:`solve_max_stretch` consumes
        it -- a signature match re-binds the pre-solved optimum (hit), any
        mismatch discards it (miss).  Because the memoized solution is an
        exact optimum of the signed problem and signatures capture the full
        LP content, hits return bit-identical results to solving live;
        speculation therefore never changes schedules, only *when* the LP
        work happens.  ``with_reoptimize`` additionally pre-solves the
        System (2) re-optimization at the speculative optimum (skipped by
        the non-optimized variant, which never calls it).

        No-op on persistent backends: a mispredicted speculative solve would
        leave its deltas in the live solver models, breaking the
        miss-is-free contract.  The stateless scipy backend has no such
        state, and hints/caps only reorder its monotone milestone search.
        """
        if self.backend.persistent:
            return
        sig = problem_signature(problem)
        if sig == self._last_sig:
            return  # the replan will reuse the previous solution outright
        if self._spec is not None and self._spec[0] == sig:
            return  # already speculated for this exact problem
        if self._bucket is not None and sig in self._bucket.sys1:
            return  # the bank already serves this signature without solving
        report = MilestoneSearchReport()
        solution = minimize_max_weighted_flow(
            problem,
            warm_start=self._warm_hint(problem),
            feasible_cap=self._feasible_cap(problem),
            skeleton_cache=self._skeletons,
            backend=self.backend,
            search=self.milestone_search,
            report=report,
        )
        self.n_probes_solved += report.n_solved
        self.n_probes_skipped += report.n_skipped
        self._trim_skeletons()
        sys2: MaxStretchSolution | None = None
        if with_reoptimize:
            sys2 = reoptimize_allocation(
                problem,
                solution.objective,
                skeleton_cache=self._skeletons,
                backend=self.backend,
            )
        self._spec = (sig, solution, report.certificate, sys2)

    def _consume_speculation(
        self, problem: MaxStretchProblem, sig: tuple
    ) -> MaxStretchSolution | None:
        """Resolve the speculation memo against the live replan's ``sig``.

        Hit: the memoized System (1) optimum is re-bound onto the live
        problem (and its pre-solved System (2), if any, staged for the
        following :meth:`reoptimize`).  Miss: the memo is discarded -- the
        prediction was wrong, the live solve proceeds untouched.  Either
        way the slot empties.
        """
        spec = self._spec
        if spec is None:
            return None
        self._spec = None
        spec_sig, spec_solution, spec_certificate, spec_sys2 = spec
        if spec_sig != sig:
            note_speculation(False)
            return None
        note_speculation(True)
        solution = self._rebind(spec_solution, problem)
        self._note_solution(problem, sig, solution, spec_certificate)
        if spec_sys2 is not None:
            self._spec_sys2 = (sig, solution.objective, spec_sys2)
        if self._bucket is not None and sig not in self._bucket.sys1:
            self._bucket.sys1[sig] = (solution, spec_certificate)
            self._bucket.trim()
        return solution

    def invalidate_carry(self) -> None:
        """Forget everything carried from previous replans.

        Called on machine availability transitions.  The carried
        :math:`S^*`, certificate, previous-solution shortcut and speculation
        memo are all justified by the previous plan having been *followed*
        on a stable platform -- an outage violates that (a downed machine
        executes nothing its plan claimed, so the carried cap may refute the
        new true optimum).  Structural caches (resources, job table,
        skeletons) survive: they describe problem shapes, not solution
        values, and the full-platform problem returns unchanged once every
        machine is back up.  Bank entries also survive -- they are keyed by
        the full problem content, so they can only ever re-bind exact
        optima.
        """
        self.last_objective = None
        self.last_certificate = None
        self._last_sig = None
        self._last_problem = None
        self._last_solution = None
        self._prev_active = None
        self._spec = None
        self._spec_sys2 = None

    def _note_solution(
        self,
        problem: MaxStretchProblem,
        sig: tuple,
        solution: MaxStretchSolution,
        certificate: SearchCertificate | None,
    ) -> None:
        """Per-replan bookkeeping shared by the solved and reused paths."""
        self.last_objective = solution.objective
        self.last_certificate = certificate or self.last_certificate
        self.n_replans += 1
        self._last_sig = sig
        self._last_problem = problem
        self._last_solution = solution
        self._prev_active = {
            job.job_id: job.remaining_work for job in problem.jobs
        }

    @staticmethod
    def _rebind(
        solution: MaxStretchSolution, problem: MaxStretchProblem
    ) -> MaxStretchSolution:
        """``solution`` re-anchored on ``problem`` (same content, new object).

        Banked solutions keep a reference to the publisher run's problem;
        consumers swap in their own so every derived accessor
        (``deadline``, per-resource allocation views, ...) resolves against
        the live run's job objects.  The interval structure and allocation
        payload are shared -- both are immutable in practice (the structure
        is frozen, the allocation dict is copied).
        """
        if solution.problem is problem:
            return solution
        return MaxStretchSolution(
            objective=solution.objective,
            problem=problem,
            structure=solution.structure,
            interval_bounds=solution.interval_bounds,
            allocations=dict(solution.allocations),
        )

    def _warm_hint(self, problem: MaxStretchProblem) -> float | None:
        """The milestone-search warm start for ``problem``.

        ``None`` on a cold first replan; with a warm bank bucket the first
        replan starts from the previous publisher's final :math:`S^*` and
        strongest certificate instead (probe order only, like every hint).
        """
        hint = self.last_objective
        certificate = self.last_certificate
        if hint is None and self._bucket is not None:
            hint = self._bucket.last_objective
            certificate = certificate or self._bucket.certificate
        if certificate is not None:
            works = {job.job_id: job.remaining_work for job in problem.jobs}
            bound = certificate.bound_for(works)
            if bound is not None and (hint is None or bound > hint):
                hint = bound
        return hint

    def _feasible_cap(self, problem: MaxStretchProblem) -> float | None:
        """The previous :math:`S^*` when it is provably still feasible.

        Feasibility survives when the active set only shrank: every job of
        ``problem`` already existed at the previous replan with at least as
        much remaining work, so the previous accepted allocation (restricted
        to the survivors) still meets every deadline at the previous
        objective.  Under the default replan-on-arrival policy the set only
        ever grows, so this fires for batched/threshold replan policies and
        degenerate same-set replans -- never changing existing probe counts.
        """
        if self.last_objective is None or self._prev_active is None:
            return None
        prev = self._prev_active
        for job in problem.jobs:
            before = prev.get(job.job_id)
            if before is None or job.remaining_work > before + 1e-12:
                return None
        return self.last_objective

    def reoptimize(
        self, problem: MaxStretchProblem, objective: float
    ) -> MaxStretchSolution:
        """System (2) at fixed ``objective``, sharing the skeleton cache.

        With a bank bucket, a re-optimization already published for the
        exact ``(problem signature, objective)`` pair is re-bound and
        returned without solving (the deterministic inflation loop makes
        the stored solution the one this call would compute).  A System (2)
        solution pre-solved speculatively alongside a just-hit System (1)
        takes the same shortcut (it was computed on a content-identical
        problem at this exact objective).
        """
        staged = self._spec_sys2
        if staged is not None:
            self._spec_sys2 = None
            spec_sig, spec_objective, spec_solution = staged
            sig = (
                self._last_sig
                if problem is self._last_problem
                else problem_signature(problem)
            )
            if spec_sig == sig and spec_objective == objective:
                solution = self._rebind(spec_solution, problem)
                if self._bucket is not None:
                    self._bucket.sys2[(sig, objective)] = solution
                    self._bucket.trim()
                return solution
        if self._bucket is None:
            return reoptimize_allocation(
                problem, objective, skeleton_cache=self._skeletons, backend=self.backend
            )
        sig = (
            self._last_sig
            if problem is self._last_problem
            else problem_signature(problem)
        )
        key = (sig, objective)
        banked = self._bucket.sys2.get(key)
        if banked is not None:
            note_primal_reuse()
            return self._rebind(banked, problem)
        solution = reoptimize_allocation(
            problem, objective, skeleton_cache=self._skeletons, backend=self.backend
        )
        self._bucket.sys2[key] = solution
        self._bucket.trim()
        return solution

    # -- bank publication ----------------------------------------------------------
    def publish(self) -> None:
        """Publish the run's final solver state into the bank bucket.

        Called on run completion (the scheduler's ``finalize`` hook).  The
        final :math:`S^*`/certificate overwrite the bucket's hint state
        (latest publisher wins -- any content-identical state is an equally
        good hint); the exported warm-start bases are kept first-publisher
        wins, since later runs consumed them and re-deriving adds nothing.
        No-op without a bank.
        """
        bucket = self._bucket
        if bucket is None:
            return
        if self.last_objective is not None:
            bucket.last_objective = self.last_objective
            if self.last_certificate is not None:
                bucket.certificate = self.last_certificate
        if bucket.series_state is None:
            bucket.series_state = self.backend.export_series_state()
        bucket.n_publications += 1

    def close(self) -> None:
        """Release the backend's persistent solver state (live HiGHS models)."""
        self.backend.close()

    # -- internals ----------------------------------------------------------------
    def _trim_skeletons(self) -> None:
        """Bound the skeleton cache (drop oldest entries, dict is insertion-ordered)."""
        while len(self._skeletons) > _MAX_SKELETONS:
            self._skeletons.pop(next(iter(self._skeletons)))
