"""Milestone enumeration (Section 4.3.1).

A *milestone* is an objective value :math:`\\mathcal{F}` at which the relative
order of the epochal times changes, i.e. where a deadline
:math:`\\bar d_j(\\mathcal{F}) = r_j + \\mathcal{F} f_j` coincides with an
earliest start date or with another deadline.  With :math:`n` jobs there are
at most :math:`n(n-1)` milestones; between two consecutive milestones the
interval structure is constant, so the optimal max weighted flow can be found
by a binary search over milestones with one LP per probe (see
:mod:`repro.lp.maxstretch`).
"""

from __future__ import annotations

import numpy as np

from repro.lp import kernels
from repro.lp.problem import MaxStretchProblem

__all__ = ["enumerate_milestones"]


def enumerate_milestones(
    problem: MaxStretchProblem,
    *,
    lower: float = 0.0,
    upper: float = np.inf,
    tol: float = 1e-12,
) -> list[float]:
    """All milestone objective values in ``(lower, upper)``, sorted increasingly.

    Parameters
    ----------
    problem:
        The max weighted flow problem.
    lower, upper:
        Only milestones strictly inside this open range are returned; the
        binary search of :func:`repro.lp.maxstretch.minimize_max_weighted_flow`
        brackets the optimum with its own lower/upper bounds first.
    tol:
        Milestones closer than ``tol`` (relative) are merged.
    """
    jobs = problem.jobs
    n = len(jobs)
    if n == 0:
        return []

    starts, releases, factors = problem.job_vectors()

    candidates: list[np.ndarray] = []

    # Deadline of job j crosses the earliest start of job k:
    #   r_j + F f_j = e_k  =>  F = (e_k - r_j) / f_j
    cross_start = (starts[None, :] - releases[:, None]) / factors[:, None]
    candidates.append(cross_start.ravel())

    # Deadline of job j crosses deadline of job k (f_j != f_k):
    #   r_j + F f_j = r_k + F f_k  =>  F = (r_k - r_j) / (f_j - f_k)
    denom = factors[:, None] - factors[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        cross_deadline = (releases[None, :] - releases[:, None]) / denom
    cross_deadline = cross_deadline[np.isfinite(cross_deadline)]
    candidates.append(np.asarray(cross_deadline).ravel())

    values = np.concatenate(candidates)
    values = values[np.isfinite(values)]
    values = values[(values > max(lower, 0.0)) & (values < upper)]
    if values.size == 0:
        return []

    values = np.unique(values)
    # Merge near-duplicates (within relative tol) to keep the boundary list
    # short and to avoid zero-length binary-search intervals.
    return kernels.merge_close_milestones(values, tol)
