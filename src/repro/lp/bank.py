"""Content-addressed cross-run solver-state bank.

Within one replicate of the campaign, the four on-line LP schedulers (and
both legs of a backend A/B) solve near-identical sequences of milestone
LPs; per-run solver state is deliberately wiped between tasks to preserve
the sharding bit-identity invariant.  The bank recovers that locality
*deterministically*: state is keyed by the **content** of the realized
instance -- a hash over the jobs (ids, releases, sizes, databanks) and the
platform (machine ids, cycle times, hosted databanks) -- never by run
order, so what a consumer finds in its bucket is a function of which
content-identical runs completed before it, not of where they ran.

Combined with the replicate-affinity task placement of
:mod:`repro.experiments.runner` (every task of one ``(config, replicate)``
group executes on the same worker lane, in canonical order), each bucket's
history is exactly the group's canonical prefix at any worker count --
which is what keeps sharded campaign records bit-identical to serial runs
with the bank enabled.

A bucket holds three kinds of reusable state, all accelerators only:

* **Primal solutions** keyed by the exact :func:`problem_signature` --
  a content-identical System (1)/(2) problem has a content-identical
  optimum, so the whole milestone search (or re-optimization) is skipped
  and the stored solution is re-bound onto the consumer's problem object;
* the **last accepted** ``S*`` and the strongest carried
  :class:`~repro.lp.maxstretch.SearchCertificate`, used purely as
  milestone-search warm hints (probe order, never acceptance);
* the publisher backend's **warm-start series bases** (dual-simplex basis
  snapshots exported through
  :meth:`~repro.lp.backends.base.SolverBackend.export_series_state`),
  seeding the consumer's persistent backend before its first solve.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instance import Instance
    from repro.lp.maxstretch import MaxStretchProblem, MaxStretchSolution, SearchCertificate

__all__ = [
    "BankBucket",
    "SolverStateBank",
    "instance_content_key",
    "problem_signature",
]

#: Buckets kept per bank (least-recently-used eviction).  Tasks of one
#: content group are consecutive on their worker lane, so only the current
#: group's bucket is ever live; a small bound caps memory on long
#: campaigns without hurting the hit rate.
_MAX_BUCKETS = 8

#: Primal solutions kept per bucket and system.  Replans past the first
#: arrival diverge across schedulers (executed work differs), so reuse
#: concentrates on the early replans; the bound only guards pathological
#: replan counts.
_MAX_SOLUTIONS = 128


def instance_content_key(instance: "Instance") -> str:
    """A deterministic digest of the *content* of ``instance``.

    Covers everything that determines the LP problems of a run: the
    platform's machines (id, cycle time, hosted databanks) and the jobs
    (id, release, size, databank, explicit weight).  Two
    :class:`~repro.core.instance.Instance` objects with equal content --
    e.g. the same ``(config, replicate)`` realized in different campaign
    legs, or under different solver backends -- map to the same key, which
    is what lets A/B legs share a bucket while unrelated runs never do.
    """
    machines = tuple(
        (m.machine_id, m.cycle_time, tuple(sorted(m.databanks)))
        for m in instance.platform
    )
    jobs = tuple(
        (job.job_id, job.release, job.size, job.databank, job.weight)
        for job in instance.jobs
    )
    payload = repr((machines, jobs)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def problem_signature(problem: "MaxStretchProblem") -> tuple:
    """Hashable exact-content signature of one System (1)/(2) problem.

    Two problems with equal signatures describe bit-identical LPs (same
    jobs, works, windows, eligibility and resource speeds), so a stored
    optimum of one is an optimum of the other.  Floats enter verbatim --
    the signature is an *exact* match, never a tolerance: near-identical
    problems fall through to a normal (warm-hinted) solve.
    """
    return (
        tuple(
            (
                job.job_id,
                job.earliest_start,
                job.remaining_work,
                job.release,
                job.flow_factor,
                job.resources,
            )
            for job in problem.jobs
        ),
        tuple(resource.speed for resource in problem.resources),
    )


class BankBucket:
    """Reusable solver state for one instance content key.

    Attributes
    ----------
    sys1:
        ``problem_signature -> (MaxStretchSolution, SearchCertificate | None)``
        for accepted System (1) searches (first publication wins).
    sys2:
        ``(problem_signature, objective) -> MaxStretchSolution`` for System
        (2) re-optimizations (the stored solution's ``objective`` records
        the inflated deadline bound actually used).
    series_state:
        The first publisher's exported warm-start series bases (backend
        serialization; ``None`` for stateless backends).
    last_objective / certificate:
        The most recent publisher's final ``S*`` and strongest carried
        certificate -- consumed as first-replan warm hints only.
    n_publications:
        Completed runs that published into this bucket.
    """

    __slots__ = (
        "sys1",
        "sys2",
        "series_state",
        "last_objective",
        "certificate",
        "n_publications",
    )

    def __init__(self) -> None:
        self.sys1: dict[tuple, tuple["MaxStretchSolution", "SearchCertificate | None"]] = {}
        self.sys2: dict[tuple, "MaxStretchSolution"] = {}
        self.series_state: object | None = None
        self.last_objective: float | None = None
        self.certificate: "SearchCertificate | None" = None
        self.n_publications: int = 0

    @property
    def warm(self) -> bool:
        """Whether any state has been published into this bucket."""
        return self.n_publications > 0 or bool(self.sys1) or bool(self.sys2)

    def trim(self) -> None:
        """Bound the primal stores (drop oldest, dicts are insertion-ordered)."""
        while len(self.sys1) > _MAX_SOLUTIONS:
            self.sys1.pop(next(iter(self.sys1)))
        while len(self.sys2) > _MAX_SOLUTIONS:
            self.sys2.pop(next(iter(self.sys2)))


class SolverStateBank:
    """The per-worker bank: content key -> :class:`BankBucket`, LRU-bounded.

    One bank lives in each campaign worker (and one in the in-process
    serial runner); :class:`~repro.lp.incremental.ReplanContext` acquires
    the bucket for its instance at construction and publishes back on run
    completion.  Eviction is deterministic and harmless: tasks of one
    content group are consecutive on their lane, so an evicted bucket's
    key never recurs.
    """

    def __init__(self, *, max_buckets: int = _MAX_BUCKETS):
        self._buckets: OrderedDict[str, BankBucket] = OrderedDict()
        self._max_buckets = max(1, int(max_buckets))
        self.n_hits: int = 0
        self.n_misses: int = 0

    def acquire(self, key: str) -> tuple[BankBucket, bool]:
        """The bucket for ``key`` plus whether it arrived warm (a bank hit)."""
        bucket = self._buckets.get(key)
        hit = bucket is not None and bucket.warm
        if bucket is None:
            bucket = BankBucket()
            self._buckets[key] = bucket
        self._buckets.move_to_end(key)
        while len(self._buckets) > self._max_buckets:
            self._buckets.popitem(last=False)
        if hit:
            self.n_hits += 1
        else:
            self.n_misses += 1
        return bucket, hit

    def stats(self) -> dict[str, int]:
        """Machine-readable counters (buckets held, lookup hits/misses)."""
        return {
            "n_buckets": len(self._buckets),
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
        }

    def clear(self) -> None:
        """Drop every bucket and reset the counters."""
        self._buckets.clear()
        self.n_hits = 0
        self.n_misses = 0

    def __len__(self) -> int:
        return len(self._buckets)
