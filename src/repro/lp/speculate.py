"""Event-horizon projection for speculative replan pre-solves.

Between two scheduler events the fluid engine's dynamics are closed-form:
every machine of the current assignment works on its mapped job at its own
speed, so the remaining works at the next arrival date -- and therefore the
exact LP problem the next replan will build -- are known *before* simulated
time gets there.  :func:`predict_replan_remaining` reproduces that jump:
given the state at the start of the gap's final step and the assignment the
engine is executing, it returns the ``remaining`` map the scheduler will
read at ``until``, bit-for-bit equal to what
:meth:`~repro.simulation.state.SchedulerState.remaining_map` returns after
the engine advances (same numpy elementwise update, same completion
tolerance, same arrival injection as the event queue).

The LP heuristics use this inside :meth:`Scheduler.on_idle` to pre-solve
the next replan's System (1) (and optionally System (2)) during the gap,
memoized under the problem's exact content signature.  Because the
projection replicates the engine's arithmetic exactly, a correct prediction
hits on signature equality and the pre-solved optimum *is* the solution the
replan would have computed; a misprediction (deferred-replan policies,
intervening completion-triggered replans) simply misses and is discarded.
Speculation is therefore an accelerator with no observable effect on
schedules.

Only the projection lives here; the memo and its hit/miss protocol are on
:class:`~repro.lp.incremental.ReplanContext`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.simulation.clock import SIMULTANEITY_TOL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job
    from repro.simulation.state import SchedulerState

__all__ = ["predict_replan_remaining", "pending_arrivals"]

#: Relative tolerance under which a job's remaining work counts as zero.
#: Mirrors ``repro.simulation.engine._COMPLETION_TOL`` (asserted equal by
#: ``tests/test_speculation.py``); duplicated to keep this module free of an
#: engine import.
_COMPLETION_TOL = 1e-9


def pending_arrivals(
    state: "SchedulerState", until: float, *, tol: float = SIMULTANEITY_TOL
) -> "list[Job]":
    """The jobs the event queue will release by ``until`` (inclusive).

    The engine's queue holds exactly the not-yet-released arrivals and pops
    everything due within :data:`SIMULTANEITY_TOL` of the current time, so
    the prediction is the instance's unreleased jobs with
    ``release <= until + tol`` (in instance order, like the queue's batch).
    """
    return [
        job
        for job in state.instance.jobs
        if job.job_id not in state.released_ids and job.release <= until + tol
    ]


def predict_replan_remaining(
    state: "SchedulerState",
    mapping: Mapping[int, int],
    until: float,
) -> "dict[int, float] | None":
    """The ``remaining`` map a replan at ``until`` will receive, or ``None``.

    ``mapping`` is the machine->job assignment the engine executes over
    ``[state.time, until]`` (the gap's final step).  The projection mirrors
    the engine step by step:

    1. accumulate per-job rates in ``mapping`` iteration order (identical
       float summation order),
    2. advance the rated jobs with the same vectorized
       ``max(0, remaining - rate * duration)`` update and per-job ``float``
       writeback,
    3. drop jobs meeting the engine's completion tolerance,
    4. inject the arrivals due at ``until`` at their full size.

    Returns ``None`` when no arrival lands at ``until`` (nothing to replan
    for, so speculation would be wasted work).
    """
    arrivals = pending_arrivals(state, until)
    if not arrivals:
        return None
    instance = state.instance
    duration = until - state.time

    # Engine step 4: per-job processing rates, in mapping order.
    rates: dict[int, float] = {}
    for machine_id, job_id in mapping.items():
        speed = instance.machine(machine_id).speed
        rates[job_id] = rates.get(job_id, 0.0) + speed

    projected = state.remaining_map()
    if rates:
        job_ids = list(rates)
        n = len(job_ids)
        rate = np.fromiter((rates[j] for j in job_ids), dtype=np.float64, count=n)
        remaining = np.fromiter(
            (state.active[j].remaining for j in job_ids), dtype=np.float64, count=n
        )
        new_remaining = np.maximum(0.0, remaining - rate * duration)
        for job_id, value in zip(job_ids, new_remaining):
            projected[job_id] = float(value)

    # Engine step 7: completed jobs leave the active set before the replan.
    for job_id in list(projected):
        size = state.active[job_id].job.size
        if projected[job_id] <= _COMPLETION_TOL * max(1.0, size):
            del projected[job_id]

    # Arrival injection: released at full size before the replan callback.
    for job in arrivals:
        projected[job.job_id] = job.size
    return projected
