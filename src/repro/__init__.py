"""repro -- stretch-minimizing schedulers for flows of divisible biological requests.

Reproduction of A. Legrand, A. Su and F. Vivien, *Minimizing the stretch when
scheduling flows of biological requests* (INRIA RR-5724, 2005 / SPAA 2006).

Quick start
-----------

>>> from repro import Job, Platform, Instance, simulate, make_scheduler
>>> platform = Platform.uniform([1.0, 1.0], databanks=["db"])
>>> jobs = [Job(0, release=0.0, size=10.0, databank="db"),
...         Job(1, release=1.0, size=2.0, databank="db")]
>>> instance = Instance(jobs, platform)
>>> result = simulate(instance, make_scheduler("swrpt"))
>>> round(result.max_stretch, 3) >= 1.0
True

The public API is re-exported from the subpackages:

* :mod:`repro.core` -- jobs, platforms, instances, schedules, metrics, Lemma 1;
* :mod:`repro.lp` -- the System (1)/(2) linear programs;
* :mod:`repro.simulation` -- the fluid discrete-event engine;
* :mod:`repro.schedulers` -- all scheduling strategies and the registry;
* :mod:`repro.workload` -- GriPPS-like synthetic platform/workload generation;
* :mod:`repro.experiments` -- the paper's experimental campaign (tables, figures);
* :mod:`repro.theory` -- constructions behind Theorems 1 and 2.
"""

from repro._version import __version__
from repro import analysis
from repro.core import (
    CapabilityClass,
    Cluster,
    InfeasibleError,
    Instance,
    Job,
    JobSet,
    Machine,
    ModelError,
    Platform,
    ReproError,
    Schedule,
    ScheduleError,
    SolverError,
    WorkSlice,
    metrics,
)
from repro.simulation import SimulationResult, simulate
from repro.schedulers import (
    available_schedulers,
    make_scheduler,
    paper_schedulers,
    register_scheduler,
)

__all__ = [
    "__version__",
    "analysis",
    "Job",
    "JobSet",
    "Machine",
    "Cluster",
    "CapabilityClass",
    "Platform",
    "Instance",
    "Schedule",
    "WorkSlice",
    "metrics",
    "ReproError",
    "ModelError",
    "ScheduleError",
    "InfeasibleError",
    "SolverError",
    "simulate",
    "SimulationResult",
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    "paper_schedulers",
]
