"""repro -- stretch-minimizing schedulers for flows of divisible biological requests.

Reproduction of A. Legrand, A. Su and F. Vivien, *Minimizing the stretch when
scheduling flows of biological requests* (INRIA RR-5724, 2005 / SPAA 2006).

Quick start
-----------

>>> from repro import Job, Platform, Instance, simulate, make_scheduler
>>> platform = Platform.uniform([1.0, 1.0], databanks=["db"])
>>> jobs = [Job(0, release=0.0, size=10.0, databank="db"),
...         Job(1, release=1.0, size=2.0, databank="db")]
>>> instance = Instance(jobs, platform)
>>> result = simulate(instance, make_scheduler("swrpt"))
>>> round(result.max_stretch, 3) >= 1.0
True

Module map
----------

The public API is re-exported from the subpackages; the decision hot path is
the *incremental replanning pipeline* spanning the starred modules::

    repro
    |-- core/          jobs, platforms, instances, schedules, metrics, Lemma 1
    |-- lp/            the System (1)/(2) linear programs
    |   |-- problem      LP data model (jobs, resources, deadlines affine in
    |   |                F; JobTable replan fast path, cached lookup arrays)
    |   |-- milestones   objective values where the interval structure changes
    |   |-- intervals    epochal times -> elementary interval structures
    |   |-- maxstretch * System (1): skeleton-built LPs (vectorized COO-block
    |   |                assembly) + the certificate-guided parametric search
    |   |                (dual-ray bounds skip probes; interior-optimum exit)
    |   |-- relaxation * System (2): sum-stretch-like re-optimization
    |   |-- incremental* ReplanContext: caches + S* warm start + carried
    |   |                certificate bound across replans, feasible-side
    |   |                cap on shrinking active sets, bank consume/publish
    |   |-- bank       * content-addressed cross-run solver-state bank
    |   |                (System (1)/(2) solutions by problem signature,
    |   |                certificates, series bases; per-worker, LRU)
    |   |-- aggregation  LP allocations -> per-machine work slices
    |   |-- solver     * sparse COO program builder (scalar + block APIs)
    |   |                over pluggable backends
    |   `-- backends/  * LP solver backends + probe timing/histogram hooks
    |       |-- scipy_backend  one-shot scipy.optimize.linprog (default)
    |       `-- highs  *       persistent HiGHS models: delta updates, basis
    |                          warm starts + dual-ray certificates across
    |                          milestone probes and replans
    |-- simulation/    the fluid discrete-event engine
    |   |-- clock      * heap-based event queue, batched simultaneous arrivals
    |   |-- engine     * the step loop: dispatch, assign, advance, complete
    |   |-- state        scheduler-visible execution state
    |   `-- result       SimulationResult (metrics, trace, scheduler overhead)
    |-- schedulers/    all scheduling strategies and the registry
    |   |-- base       * Scheduler / PriorityScheduler / PlanBasedScheduler
    |   |-- policies   * ReplanPolicy: on-arrival | batched:D | threshold:K
    |   |-- online_lp  * the four on-line LP variants (policy + ReplanContext)
    |   `-- ...          offline, bender98/02, mct, priority heuristics
    |-- workload/      GriPPS-like synthetic platform/workload generation
    |-- experiments/   the paper's campaign (configs carry the replan knobs)
    |   |-- runner     * campaign engine: (config, replicate, scheduler) task
    |   |                streaming over long-lived worker lanes (instance
    |   |                LRU + resident solver backend + solver-state bank,
    |   |                replicate-affinity placement), bit-identical at
    |   |                any worker count, progress/ETA
    |   |-- ab           scipy-vs-HiGHS campaign A/B equivalence harness
    |   |-- io           CSV/JSON persistence + JSONL campaign checkpoints
    |   |                (kill-tolerant --checkpoint/--resume)
    |   |-- sharding   * ShardPlan: deterministic --shard i/N slices of the
    |   |                design (whole instances, round-robin, stable across
    |   |                processes) for CI-matrix distribution
    |   |-- merge      * journal union with exactly-once coverage validation
    |   |                (duplicate/conflict/gap detection) + the report
    |   |                stage (Tables 1-16, CAMPAIGN_summary.json)
    |   `-- ...          config, statistics, tables, figures, overhead
    `-- theory/        constructions behind Theorems 1 and 2
"""

from repro._version import __version__
from repro import analysis
from repro.core import (
    CapabilityClass,
    Cluster,
    InfeasibleError,
    Instance,
    Job,
    JobSet,
    Machine,
    ModelError,
    Platform,
    ReproError,
    Schedule,
    ScheduleError,
    SolverError,
    WorkSlice,
    metrics,
)
from repro.simulation import SimulationResult
from repro.schedulers import (
    available_schedulers,
    make_scheduler,
    paper_schedulers,
    register_scheduler,
)
from repro import api
from repro.api import (
    CampaignReport,
    ExperimentConfig,
    ExperimentResults,
    MergeReport,
    merge,
    report,
    run_campaign,
    serve,
    simulate,
)

__all__ = [
    "__version__",
    "analysis",
    "Job",
    "JobSet",
    "Machine",
    "Cluster",
    "CapabilityClass",
    "Platform",
    "Instance",
    "Schedule",
    "WorkSlice",
    "metrics",
    "ReproError",
    "ModelError",
    "ScheduleError",
    "InfeasibleError",
    "SolverError",
    "simulate",
    "SimulationResult",
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    "paper_schedulers",
    "api",
    "run_campaign",
    "merge",
    "report",
    "serve",
    "CampaignReport",
    "ExperimentConfig",
    "ExperimentResults",
    "MergeReport",
]
