"""Regeneration of the paper's result tables (Tables 1-16).

Every function takes an :class:`~repro.experiments.runner.ExperimentResults`
collection (produced by :func:`~repro.experiments.runner.run_campaign`) and
returns :class:`~repro.utils.textable.TextTable` objects whose layout mirrors
the paper's tables: one row per heuristic, columns Mean/SD/Max for the
max-stretch degradation and the sum-stretch degradation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.runner import ExperimentResults
from repro.experiments.statistics import compute_degradations, summarize
from repro.utils.textable import TextTable

__all__ = [
    "PAPER_ROW_ORDER",
    "render_aggregate_table",
    "table1",
    "tables_by_sites",
    "tables_by_density",
    "tables_by_databases",
    "tables_by_availability",
    "breakdown_tables",
]

#: Row order of Table 1 in the paper (display names).
PAPER_ROW_ORDER: tuple[str, ...] = (
    "Offline",
    "Online",
    "Online-EDF",
    "Online-EGDF",
    "Bender98",
    "SWRPT",
    "SRPT",
    "SPT",
    "Bender02",
    "MCT-Div",
    "MCT",
)

_HEADERS = (
    "Heuristic",
    "MaxS mean",
    "MaxS SD",
    "MaxS max",
    "SumS mean",
    "SumS SD",
    "SumS max",
)


def render_aggregate_table(
    results: ExperimentResults,
    *,
    title: str,
    scheduler_order: Sequence[str] = PAPER_ROW_ORDER,
) -> TextTable:
    """Aggregate a result set into a single Mean/SD/Max table."""
    rows = summarize(compute_degradations(results), scheduler_order=scheduler_order)
    table = TextTable(headers=_HEADERS, title=title)
    for row in rows:
        table.add_row(row.cells())
    return table


def table1(
    results: ExperimentResults,
    *,
    scheduler_order: Sequence[str] = PAPER_ROW_ORDER,
) -> TextTable:
    """Table 1: aggregate statistics over all configurations."""
    n_configs = len({r.config for r in results})
    return render_aggregate_table(
        results,
        title=f"Table 1 - aggregate statistics over {n_configs} configurations",
        scheduler_order=scheduler_order,
    )


def _tables_by(
    results: ExperimentResults,
    values: Iterable,
    selector,
    title_fmt: str,
    first_table_number: int,
) -> dict[object, TextTable]:
    tables: dict[object, TextTable] = {}
    for offset, value in enumerate(values):
        subset = selector(value)
        if len(subset) == 0:
            continue
        title = title_fmt.format(number=first_table_number + offset, value=value)
        tables[value] = render_aggregate_table(subset, title=title)
    return tables


def tables_by_sites(results: ExperimentResults) -> dict[int, TextTable]:
    """Tables 2-4: statistics partitioned by platform size (3, 10, 20 sites)."""
    sites = sorted({r.n_clusters for r in results})
    return _tables_by(
        results,
        sites,
        results.by_sites,
        "Table {number} - configurations using {value} sites",
        first_table_number=2,
    )


def tables_by_density(results: ExperimentResults) -> dict[float, TextTable]:
    """Tables 5-10: statistics partitioned by workload density."""
    densities = sorted({r.density for r in results})
    return _tables_by(
        results,
        densities,
        results.by_density,
        "Table {number} - configurations with workload density {value}",
        first_table_number=5,
    )


def tables_by_databases(results: ExperimentResults) -> dict[int, TextTable]:
    """Tables 11-13: statistics partitioned by number of reference databanks."""
    databanks = sorted({r.n_databanks for r in results})
    return _tables_by(
        results,
        databanks,
        results.by_databases,
        "Table {number} - configurations with {value} reference databases",
        first_table_number=11,
    )


def tables_by_availability(results: ExperimentResults) -> dict[float, TextTable]:
    """Tables 14-16: statistics partitioned by databank availability."""
    availabilities = sorted({r.availability for r in results})
    return _tables_by(
        results,
        availabilities,
        results.by_availability,
        "Table {number} - configurations with database availability {value:.0%}",
        first_table_number=14,
    )


def breakdown_tables(results: ExperimentResults) -> list[TextTable]:
    """Tables 2-16 in the paper's order: sites, density, databases, availability.

    The single definition of the breakdown sequence, shared by the CLI
    (``campaign --breakdowns``, ``report``) and the campaign report stage
    (:func:`~repro.experiments.merge.generate_campaign_report`).
    """
    tables: list[TextTable] = []
    for group in (
        tables_by_sites(results),
        tables_by_density(results),
        tables_by_databases(results),
        tables_by_availability(results),
    ):
        tables.extend(group.values())
    return tables
