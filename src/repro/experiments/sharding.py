"""Deterministic sharding plans: split a campaign design across N jobs.

The distribution layer of the campaign subsystem.  PR 3's execution engine
(:func:`~repro.experiments.runner.run_campaign`) carries a campaign inside
one process; this module makes *work placement* orthogonal to *result
semantics* the way split-compute/merge runtimes do: a :class:`ShardPlan`
deterministically partitions the (configuration, replicate, scheduler) task
list into ``i/N`` slices that N independent jobs (CI matrix legs, machines,
tmux panes) can run with their own checkpoint journals, and
:mod:`repro.experiments.merge` reunites the journals into one validated
record set that is bit-identical to a serial run.

Design of the partition
-----------------------

* **Instance granularity.**  Tasks are grouped by realized instance
  (configuration, replicate) and whole groups are assigned to shards, so
  the schedulers sharing one instance stay on one worker's instance cache --
  splitting a group would generate the same instance in several jobs.
* **Round-robin over the canonical order.**  Group ``g`` (0-based, in
  canonical task order) lands on shard ``g % N``.  The canonical order
  iterates replicates within configurations, so round-robin deals every
  configuration's replicates out evenly: each slice sees the same mix of
  cheap 3-site and expensive 20-site configurations and the N legs finish
  in roughly the same wall-clock time.
* **Stability.**  The assignment depends only on the design (configuration
  order, replicate count) and the spec ``i/N`` -- not on hashing, platform,
  process, or invocation time -- so re-running a leg, resuming it, or
  recomputing the plan in the merge job always yields the same slice.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ReproError
from repro.experiments.runner import CampaignTask

__all__ = ["ShardPlan", "parse_shard_spec"]

_SPEC_RE = re.compile(r"^\s*(\d+)\s*/\s*(\d+)\s*$")


def parse_shard_spec(spec: str) -> tuple[int, int]:
    """Parse an ``"i/N"`` shard spec into a 1-based (index, count) pair.

    ``i`` runs from 1 to N so the spec reads like "leg 2 of 5" and matches
    the 1-based matrix indices of the CI workflow.
    """
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ReproError(
            f"invalid shard spec {spec!r}: expected 'i/N' with 1 <= i <= N "
            "(e.g. --shard 2/5)"
        )
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not (1 <= index <= count):
        raise ReproError(
            f"invalid shard spec {spec!r}: index must lie in 1..{count or 'N'}"
        )
    return index, count


@dataclass(frozen=True)
class ShardPlan:
    """One deterministic slice ``index/count`` of a campaign design.

    The plan itself is tiny -- two integers -- because the partition is a
    pure function of the canonical task list; every consumer (the shard leg,
    the resume validation, the merge job) recomputes the same slice from the
    same design.
    """

    index: int  #: 1-based shard index (matches the "i" of ``--shard i/N``).
    count: int  #: Total number of shards N.

    def __post_init__(self) -> None:
        if self.count < 1 or not (1 <= self.index <= self.count):
            raise ReproError(
                f"invalid shard plan {self.index}/{self.count}: "
                "index must lie in 1..count"
            )

    @classmethod
    def parse(cls, spec: "ShardPlan | str | tuple[int, int]") -> "ShardPlan":
        """Coerce a spec (``"i/N"`` string, (i, N) pair, or plan) to a plan."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            return cls(*parse_shard_spec(spec))
        try:
            index, count = spec
            return cls(int(index), int(count))
        except (TypeError, ValueError):
            raise ReproError(
                f"invalid shard spec {spec!r}: expected 'i/N', (i, N) or a ShardPlan"
            ) from None

    @property
    def spec(self) -> str:
        """The ``"i/N"`` rendering of this plan."""
        return f"{self.index}/{self.count}"

    def meta_entry(self) -> dict[str, int]:
        """The shard identity recorded in a journal header."""
        return {"index": self.index, "count": self.count}

    @classmethod
    def from_meta_entry(cls, entry: object) -> "ShardPlan":
        """Rebuild a plan from a journal header's ``"shard"`` entry."""
        if not isinstance(entry, dict):
            raise ReproError(f"malformed shard entry in checkpoint header: {entry!r}")
        try:
            return cls(int(entry["index"]), int(entry["count"]))
        except (KeyError, TypeError, ValueError):
            raise ReproError(
                f"malformed shard entry in checkpoint header: {entry!r}"
            ) from None

    def select(self, tasks: Sequence[CampaignTask]) -> list[CampaignTask]:
        """This shard's slice of the canonical task list (order preserved).

        Whole (configuration, replicate) groups are dealt round-robin:
        group ``g`` (0-based first-appearance order) belongs to shard
        ``(g % count) + 1``.  The slices of the ``count`` plans over the
        same task list are disjoint and their union is the full list.
        """
        groups: dict[tuple[str, int], int] = {}
        selected: list[CampaignTask] = []
        for task in tasks:
            instance = (task.config.name, task.replicate)
            g = groups.setdefault(instance, len(groups))
            if g % self.count == self.index - 1:
                selected.append(task)
        return selected

    def selects_triple(
        self, tasks: Sequence[CampaignTask]
    ) -> set[tuple[str, int, str]]:
        """The (config, replicate, scheduler) triples this shard owns."""
        return {task.triple for task in self.select(tasks)}

    def siblings(self) -> list["ShardPlan"]:
        """All ``count`` plans of this partition (including this one)."""
        return [ShardPlan(i, self.count) for i in range(1, self.count + 1)]
