"""Persistence of experiment records (CSV / JSON).

Large campaigns are expensive; saving the raw :class:`RunRecord` rows allows
re-aggregating tables and figures without re-running the simulations, and the
benchmark harness uses these helpers to leave the regenerated tables next to
the benchmark output.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.experiments.runner import ExperimentResults, RunRecord

__all__ = ["save_records_csv", "load_records_csv", "save_records_json"]

_FIELDS = [
    "config",
    "replicate",
    "scheduler",
    "n_jobs",
    "n_clusters",
    "n_databanks",
    "availability",
    "density",
    "max_stretch",
    "sum_stretch",
    "max_flow",
    "sum_flow",
    "makespan",
    "scheduler_time",
    "failed",
]

_INT_FIELDS = {"replicate", "n_jobs", "n_clusters", "n_databanks"}
_STR_FIELDS = {"config", "scheduler"}


def save_records_csv(results: ExperimentResults | Iterable[RunRecord], path: str | Path) -> Path:
    """Write records to a CSV file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for record in results:
            writer.writerow(record.as_dict())
    return path


def load_records_csv(path: str | Path) -> ExperimentResults:
    """Read records back from a CSV file produced by :func:`save_records_csv`."""
    path = Path(path)
    records: list[RunRecord] = []
    with path.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            kwargs: dict[str, object] = {}
            for field in _FIELDS:
                raw = row[field]
                if field in _STR_FIELDS:
                    kwargs[field] = raw
                elif field == "failed":
                    kwargs[field] = raw in ("True", "true", "1")
                elif field in _INT_FIELDS:
                    kwargs[field] = int(raw)
                else:
                    kwargs[field] = float(raw)
            records.append(RunRecord(**kwargs))  # type: ignore[arg-type]
    return ExperimentResults(records)


def save_records_json(results: ExperimentResults | Iterable[RunRecord], path: str | Path) -> Path:
    """Write records to a JSON file (list of objects); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [record.as_dict() for record in results]
    path.write_text(json.dumps(payload, indent=2))
    return path
