"""Persistence of experiment records (CSV / JSON / streaming JSONL checkpoints).

Large campaigns are expensive; saving the raw :class:`RunRecord` rows allows
re-aggregating tables and figures without re-running the simulations, and the
benchmark harness uses these helpers to leave the regenerated tables next to
the benchmark output.

Failed runs carry NaN metrics.  JSON has no NaN literal (``json.dumps``
would emit the invalid bare token ``NaN``), so every JSON-facing helper in
this module serializes NaN as ``null`` and restores it on load.

:class:`CampaignCheckpoint` is the streaming layer of the campaign execution
engine (:func:`~repro.experiments.runner.run_campaign`): completed records
are appended to a JSONL file the moment they finish, and a resumed campaign
loads the file to skip every (configuration, replicate, scheduler) triple it
already contains.  The format is append-only and kill-tolerant: a process
dying mid-write leaves at most one truncated trailing line, which the loader
discards.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import IO, Iterable

from repro.core.errors import ReproError
from repro.experiments.runner import ExperimentResults, RunRecord, nan_to_none

__all__ = [
    "save_records_csv",
    "load_records_csv",
    "save_records_json",
    "load_records_json",
    "CampaignCheckpoint",
]

_FIELDS = [
    "config",
    "replicate",
    "scheduler",
    "n_jobs",
    "n_clusters",
    "n_databanks",
    "availability",
    "density",
    "max_stretch",
    "sum_stretch",
    "max_flow",
    "sum_flow",
    "makespan",
    "scheduler_time",
    "failed",
]

_INT_FIELDS = {"replicate", "n_jobs", "n_clusters", "n_databanks"}
_STR_FIELDS = {"config", "scheduler"}


def save_records_csv(results: ExperimentResults | Iterable[RunRecord], path: str | Path) -> Path:
    """Write records to a CSV file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for record in results:
            writer.writerow(record.as_dict())
    return path


def load_records_csv(path: str | Path) -> ExperimentResults:
    """Read records back from a CSV file produced by :func:`save_records_csv`."""
    path = Path(path)
    records: list[RunRecord] = []
    with path.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            kwargs: dict[str, object] = {}
            for field in _FIELDS:
                raw = row[field]
                if field in _STR_FIELDS:
                    kwargs[field] = raw
                elif field == "failed":
                    kwargs[field] = raw in ("True", "true", "1")
                elif field in _INT_FIELDS:
                    kwargs[field] = int(raw)
                else:
                    kwargs[field] = float(raw)
            records.append(RunRecord(**kwargs))  # type: ignore[arg-type]
    return ExperimentResults(records)


# -- JSON (NaN-safe) ----------------------------------------------------------------


def record_to_jsonable(record: RunRecord) -> dict[str, object]:
    """``record.as_dict()`` with NaN metrics mapped to ``None`` (JSON null).

    The shared :func:`~repro.experiments.runner.nan_to_none` scan covers
    every float value (no per-field list to keep in sync with
    :class:`RunRecord`), so a newly added metric can never reach
    ``json.dumps(..., allow_nan=False)`` as a bare NaN.
    """
    return nan_to_none(record.as_dict())


def record_from_jsonable(values: dict[str, object]) -> RunRecord:
    """Inverse of :func:`record_to_jsonable` (``null`` metrics become NaN).

    No :class:`RunRecord` field is legitimately ``None``, so every null maps
    back to NaN.
    """
    kwargs = {
        field: math.nan if value is None else value
        for field, value in values.items()
    }
    return RunRecord(**kwargs)  # type: ignore[arg-type]


def save_records_json(results: ExperimentResults | Iterable[RunRecord], path: str | Path) -> Path:
    """Write records to a JSON file (list of objects); returns the path.

    NaN metrics (failed runs) are written as ``null`` -- ``allow_nan=False``
    guarantees the output is strict, standard JSON.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [record_to_jsonable(record) for record in results]
    path.write_text(json.dumps(payload, indent=2, allow_nan=False))
    return path


def load_records_json(path: str | Path) -> ExperimentResults:
    """Read records back from a JSON file produced by :func:`save_records_json`."""
    path = Path(path)
    payload = json.loads(path.read_text())
    return ExperimentResults(record_from_jsonable(values) for values in payload)


# -- streaming campaign checkpoints ---------------------------------------------------

#: First-line marker identifying a campaign checkpoint file.
_CHECKPOINT_KIND = "repro-campaign-checkpoint"
_CHECKPOINT_VERSION = 1


class CampaignCheckpoint:
    """Append-only JSONL journal of completed campaign tasks.

    Line 1 is a header carrying the campaign metadata (base seed, scheduler
    keys, configuration names); every further line is one completed task::

        {"kind": "repro-campaign-checkpoint", "version": 1, "meta": {...}}
        {"task": ["s03-d03-a30-rho0.75", 0, "swrpt"], "record": {...}}
        ...

    Records are flushed per line, so a killed campaign loses at most the
    task that was mid-write (the loader skips a truncated trailing line).
    Resuming validates the header metadata against the requested campaign --
    a checkpoint written for a different seed, scheduler set or design
    cannot be silently mixed in.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: IO[str] | None = None

    # -- reading -------------------------------------------------------------------
    def exists(self) -> bool:
        return self.path.exists()

    def effectively_empty(self) -> bool:
        """True when the file is missing, empty, or is one truncated line.

        A run killed *during the header write* leaves exactly one
        unparseable fragment with no newline (lines are written atomically
        with their terminator); such a file is as good as no checkpoint and
        :meth:`open_append` starts it over, so a kill at any byte offset --
        including the very first line -- leaves a resumable journal.  The
        signature is deliberately narrow: any file containing a newline or
        parseable JSON is *not* "empty" and is never silently truncated
        (pointing ``--checkpoint`` at some unrelated existing file errors
        out instead of destroying it).
        """
        if not self.path.exists():
            return True
        if self.path.stat().st_size == 0:
            return True
        # Cheap pre-check: any newline in the first block rules a fragment
        # out without reading a potentially huge journal.  Only a file with
        # no newline at all falls through to the full read -- by
        # construction that is at most one (possibly large) line.
        with self.path.open("rb") as handle:
            if b"\n" in handle.read(65536):
                return False
        content = self.path.read_text()
        return "\n" not in content and self._parse_line(content) is None

    def load(
        self, *, expect_meta: dict[str, object] | None = None
    ) -> dict[tuple[str, int, str], RunRecord]:
        """The completed records keyed by (config, replicate, scheduler key).

        ``expect_meta``, when given, is compared against the header written
        at campaign start; any difference raises :class:`ReproError` (the
        checkpoint belongs to a different campaign).  A triple journaled
        more than once (e.g. in a hand-concatenated file) keeps its last
        record; :meth:`read_entries` exposes the raw stream when duplicates
        matter.
        """
        if self.effectively_empty():
            # Missing, empty, or a lone truncated header fragment: nothing
            # to restore, and open_append() starts the file over.
            return {}
        meta, entries = self.read_entries()
        if expect_meta is not None and meta != expect_meta:
            raise ReproError(
                f"checkpoint {self.path} was written for a different campaign "
                f"(seed/schedulers/design mismatch): {meta!r} "
                f"vs requested {expect_meta!r}"
            )
        return dict(entries)

    def read_entries(
        self,
    ) -> tuple[dict[str, object], list[tuple[tuple[str, int, str], RunRecord]]]:
        """The header metadata and every journaled (triple, record) entry.

        Entries are returned in journal order *including duplicates* -- the
        merge layer needs to see a triple journaled twice to tell a benign
        re-run from a conflict -- with truncated/malformed lines skipped as
        in :meth:`load`.  Raises :class:`ReproError` when the file is not a
        campaign checkpoint (missing, empty, or bad header).
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            raise ReproError(f"{self.path} is missing or empty, not a campaign checkpoint")
        content = self.path.read_text()
        lines = content.splitlines()
        header = self._parse_line(lines[0]) if lines else None
        if (
            header is None
            or header.get("kind") != _CHECKPOINT_KIND
            or header.get("version") != _CHECKPOINT_VERSION
        ):
            raise ReproError(
                f"{self.path} is not a campaign checkpoint (bad or missing header)"
            )
        meta = header.get("meta")
        if not isinstance(meta, dict):
            raise ReproError(
                f"{self.path} is not a campaign checkpoint (header carries no metadata)"
            )
        parsed: list[tuple[tuple[str, int, str], RunRecord]] = []
        for line in lines[1:]:
            entry = self._parse_line(line)
            if entry is None:  # truncated trailing line from a killed run
                continue
            task, record = entry.get("task"), entry.get("record")
            if task is None or record is None:
                # Not a task line (e.g. the header of a naively concatenated
                # chunk journal); harmless to skip.
                continue
            try:
                config, replicate, scheduler_key = task
                parsed.append(
                    (
                        (config, int(replicate), scheduler_key),
                        record_from_jsonable(record),
                    )
                )
            except (TypeError, ValueError):
                # Malformed entry (wrong task arity, unexpected record
                # fields): treat like a truncated line and recompute it.
                continue
        return meta, parsed

    @staticmethod
    def _parse_line(line: str) -> dict | None:
        line = line.strip()
        if not line:
            return None
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            return None
        return entry if isinstance(entry, dict) else None

    # -- writing -------------------------------------------------------------------
    def open_append(self, meta: dict[str, object]) -> None:
        """Open the journal for appending, writing the header on a new file.

        A file holding nothing parseable (typically a header truncated by a
        kill) is started over; a populated file killed mid-record gets its
        truncated trailing line sealed with a newline so the next append
        starts on its own line (the sealed fragment stays unparseable and
        is skipped by :meth:`load`).
        """
        if self._handle is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.effectively_empty():
            self._handle = self.path.open("w")
            self._write_line(
                {
                    "kind": _CHECKPOINT_KIND,
                    "version": _CHECKPOINT_VERSION,
                    "meta": meta,
                }
            )
            return
        with self.path.open("rb") as handle:
            handle.seek(-1, 2)
            sealed = handle.read(1) == b"\n"
        if not sealed:
            with self.path.open("a") as handle:
                handle.write("\n")
        self._handle = self.path.open("a")

    def append(self, scheduler_key: str, record: RunRecord) -> None:
        """Journal one completed task (requires :meth:`open_append` first)."""
        if self._handle is None:
            raise ReproError("checkpoint is not open for appending")
        self._write_line(
            {
                "task": [record.config, record.replicate, scheduler_key],
                "record": record_to_jsonable(record),
            }
        )

    def append_batch(
        self, entries: Iterable[tuple[str, RunRecord]]
    ) -> None:
        """Journal a batch of completed tasks with one write and one flush.

        The group-dispatch fast path: the per-line ``json.dumps`` format is
        identical to :meth:`append`, but the batch reaches the OS as a
        single buffered write flushed once at the group boundary instead of
        one syscall pair per record.  Durability moves to the batch
        boundary; a kill mid-write truncates at most the trailing line,
        which :meth:`open_append` seals and :meth:`load` skips, so the
        resumed campaign recomputes exactly the unjournaled tasks.
        """
        if self._handle is None:
            raise ReproError("checkpoint is not open for appending")
        lines = [
            json.dumps(
                {
                    "task": [record.config, record.replicate, scheduler_key],
                    "record": record_to_jsonable(record),
                },
                allow_nan=False,
            )
            for scheduler_key, record in entries
        ]
        if not lines:
            return
        self._handle.write("".join(line + "\n" for line in lines))
        self._handle.flush()

    def _write_line(self, payload: dict[str, object]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(payload, allow_nan=False) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
