"""Campaign-scale solver-backend A/B harness.

``tests/test_lp_backends.py`` proves scipy/HiGHS equivalence probe by probe;
this module produces the *campaign-scale* evidence the ROADMAP required
before the persistent backend could become the default: the same campaign is
run once per backend and the two record sets are compared triple by triple.

The two backends solve the same LPs to the same objectives (machine
precision) but may return *different optimal vertices* when System (2) is
degenerate -- and a different optimal allocation materializes into a
different discrete schedule, which on small instances shifts the secondary
metrics of an individual run by 10 % or more.  The equivalence claim is
therefore two-tiered, matching what the campaign actually reports:

* **Objective tier, per record** (``OBJECTIVE_METRICS``: ``max_stretch``):
  the quantity the milestone search optimizes is tie-free, so every single
  run must agree within ``objective_tolerance`` (solver tolerance, 1e-6).
* **Tie tier, per scheduler aggregate** (``TIE_METRICS``: ``sum_stretch``,
  ``sum_flow``, ``max_flow``, ``makespan``): individual runs legitimately
  wobble with the tie-breaking, but the per-scheduler campaign *means* --
  the numbers Tables 1-16 are built from -- must agree within
  ``tie_tolerance`` (default 10 %, sized for mini-campaign sample counts).
  The wobble concentrates in the off-line schedulers (one huge LP per
  instance has the most degenerate solution space; the on-line variants
  replan incrementally and their means agree within ~1 %) and shrinks as
  replicates accumulate.

This wobble is why ``--solver-backend scipy`` remains the bit-stable escape
hatch for reproducing historical numbers exactly.  Schedulers that never
touch an LP must come back *bitwise* identical under both backends (the
backend knob cannot leak into them); their records make the objective-tier
check and the aggregate check trivially exact.

Exposed on the CLI as ``repro-stretch campaign --ab-backends`` and gated in
``benchmarks/bench_campaign.py`` (the gate behind the ``--solver-backend``
default flip from ``scipy`` to ``auto``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    DEFAULT_SCHEDULERS,
    CampaignProgress,
    ExperimentResults,
    run_campaign,
)
from repro.lp.backends import resolve_backend_name
from repro.utils.textable import TextTable

__all__ = [
    "OBJECTIVE_METRICS",
    "TIE_METRICS",
    "BackendABReport",
    "compare_record_sets",
    "run_backend_ab",
]

#: Tie-free optimized metrics: every record must agree within solver tolerance.
OBJECTIVE_METRICS: tuple[str, ...] = ("max_stretch",)

#: Metrics perturbed by degenerate-vertex tie-breaking in System (2):
#: compared on per-scheduler campaign means.
TIE_METRICS: tuple[str, ...] = ("sum_stretch", "sum_flow", "max_flow", "makespan")


@dataclass
class BackendABReport:
    """Outcome of one backend A/B campaign comparison.

    ``equivalent`` is the gate: failed flags agree on every triple, every
    record agrees on the objective-tier metrics within
    ``objective_tolerance``, and every per-scheduler mean of the tie-tier
    metrics agrees within ``tie_tolerance``.
    """

    backend_a: str
    backend_b: str
    objective_tolerance: float
    tie_tolerance: float
    n_records: int = 0
    n_identical: int = 0
    n_failed_mismatch: int = 0
    #: Worst per-record relative difference per metric (informational for
    #: the tie tier, enforced for the objective tier).
    max_rel_diff: dict[str, float] = field(default_factory=dict)
    #: (triple, metric, a, b) records violating the objective tolerance --
    #: or carrying a NaN metric on a non-failed record, whatever the tier.
    objective_mismatches: list[tuple[tuple[str, int, str], str, float, float]] = field(
        default_factory=list
    )
    #: (scheduler, metric) -> (mean_a, mean_b, rel diff) over non-failed runs.
    aggregate_diffs: dict[tuple[str, str], tuple[float, float, float]] = field(
        default_factory=dict
    )
    #: (scheduler, metric, mean_a, mean_b) aggregates violating the tolerance.
    aggregate_mismatches: list[tuple[str, str, float, float]] = field(
        default_factory=list
    )

    @property
    def equivalent(self) -> bool:
        return (
            self.n_failed_mismatch == 0
            and not self.objective_mismatches
            and not self.aggregate_mismatches
        )

    def worst_aggregate_diff(self, metric: str) -> tuple[str, float]:
        """(scheduler, rel diff) of the worst per-scheduler mean for ``metric``."""
        worst_scheduler, worst = "", 0.0
        for (scheduler, m), (_, _, diff) in self.aggregate_diffs.items():
            if m == metric and diff >= worst:
                worst_scheduler, worst = scheduler, diff
        return worst_scheduler, worst

    def render(self) -> str:
        """Human-readable summary (printed by ``campaign --ab-backends``)."""
        per_record = TextTable(
            headers=["Objective metric (per record)", "max rel. diff", "tolerance", "ok"]
        )
        for metric in OBJECTIVE_METRICS:
            diff = self.max_rel_diff.get(metric, 0.0)
            # Scientific notation: these margins live around 1e-7 and would
            # all render as 0.0000 under the default fixed-point format.
            per_record.add_row(
                [metric, f"{diff:.3e}", f"{self.objective_tolerance:.3e}",
                 "yes" if diff <= self.objective_tolerance else "NO"]
            )
        aggregate = TextTable(
            headers=["Tie-broken metric (scheduler means)", "worst scheduler",
                     "max rel. diff", "tolerance", "ok"]
        )
        for metric in TIE_METRICS:
            scheduler, diff = self.worst_aggregate_diff(metric)
            aggregate.add_row(
                [metric, scheduler or "-", diff, self.tie_tolerance,
                 "yes" if diff <= self.tie_tolerance else "NO"]
            )
        lines = [
            f"Backend A/B: {self.backend_a} vs {self.backend_b} "
            f"({self.n_records} records)",
            per_record.render(),
            aggregate.render(),
            f"bitwise-identical records: {self.n_identical}/{self.n_records}",
        ]
        if self.objective_mismatches:
            triple, metric, a, b = self.objective_mismatches[0]
            lines.append(
                f"per-record mismatches: {len(self.objective_mismatches)} "
                f"(e.g. {triple} {metric}: {a!r} vs {b!r})"
            )
        if self.aggregate_mismatches:
            scheduler, metric, a, b = self.aggregate_mismatches[0]
            lines.append(
                f"aggregate mismatches: {len(self.aggregate_mismatches)} "
                f"(e.g. {scheduler} mean {metric}: {a:.4f} vs {b:.4f})"
            )
        if self.n_failed_mismatch:
            lines.append(f"failed-flag mismatches: {self.n_failed_mismatch}")
        lines.append(
            "VERDICT: equivalent" if self.equivalent else "VERDICT: NOT equivalent"
        )
        return "\n".join(lines)


def _rel_diff(a: float, b: float) -> float:
    """|a - b| scaled by max(1, |a|, |b|) (NaN pairs compare equal)."""
    if math.isnan(a) and math.isnan(b):
        return 0.0
    return abs(a - b) / max(1.0, abs(a), abs(b))


def compare_record_sets(
    results_a: ExperimentResults,
    results_b: ExperimentResults,
    *,
    backend_a: str,
    backend_b: str,
    objective_tolerance: float = 1e-6,
    tie_tolerance: float = 0.10,
) -> BackendABReport:
    """Triple-by-triple (and per-scheduler aggregate) comparison of two runs."""
    report = BackendABReport(
        backend_a=backend_a,
        backend_b=backend_b,
        objective_tolerance=objective_tolerance,
        tie_tolerance=tie_tolerance,
    )
    rows_a = results_a.result_set()
    rows_b = results_b.result_set()
    if len(rows_a) != len(rows_b):
        raise ValueError(
            f"record sets differ in size ({len(rows_a)} vs {len(rows_b)}); "
            "the A/B runs must share the exact same campaign design"
        )
    sums: dict[tuple[str, str], tuple[float, float, int]] = {}
    for a, b in zip(rows_a, rows_b):
        triple = (a["config"], a["replicate"], a["scheduler"])
        if triple != (b["config"], b["replicate"], b["scheduler"]):
            raise ValueError(f"record sets disagree on the design at {triple}")
        report.n_records += 1
        # result_set() rows carry None for NaN metrics, so identically
        # failed records compare equal like any others.
        if a == b:
            report.n_identical += 1
        if bool(a["failed"]) != bool(b["failed"]):
            report.n_failed_mismatch += 1
            continue
        if a["failed"]:
            continue
        for metric in OBJECTIVE_METRICS + TIE_METRICS:
            # result_dict() maps NaN to None; surface both as NaN here.
            value_a = math.nan if a[metric] is None else float(a[metric])
            value_b = math.nan if b[metric] is None else float(b[metric])
            if not (math.isfinite(value_a) and math.isfinite(value_b)):
                # A NaN or infinite metric on a non-failed record is
                # incomparable (every comparison below would silently
                # pass): always a per-record mismatch, whatever the tier --
                # and surfaced as an infinite diff so render()'s tables
                # agree with the verdict.
                report.max_rel_diff[metric] = math.inf
                report.objective_mismatches.append(
                    (triple, metric, value_a, value_b)
                )
                continue
            diff = _rel_diff(value_a, value_b)
            if diff > report.max_rel_diff.get(metric, 0.0):
                report.max_rel_diff[metric] = diff
            if metric in OBJECTIVE_METRICS:
                if diff > objective_tolerance:
                    report.objective_mismatches.append(
                        (triple, metric, value_a, value_b)
                    )
            else:
                key = (str(a["scheduler"]), metric)
                sum_a, sum_b, count = sums.get(key, (0.0, 0.0, 0))
                sums[key] = (sum_a + value_a, sum_b + value_b, count + 1)
    for (scheduler, metric), (sum_a, sum_b, count) in sums.items():
        mean_a, mean_b = sum_a / count, sum_b / count
        diff = _rel_diff(mean_a, mean_b)
        report.aggregate_diffs[(scheduler, metric)] = (mean_a, mean_b, diff)
        if diff > tie_tolerance:
            report.aggregate_mismatches.append((scheduler, metric, mean_a, mean_b))
    return report


def run_backend_ab(
    configs: Sequence[ExperimentConfig],
    *,
    scheduler_keys: Sequence[str] = DEFAULT_SCHEDULERS,
    replicates: int = 2,
    base_seed: int = 2006,
    n_workers: int = 1,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
    backend_a: str = "scipy",
    backend_b: str = "auto",
    objective_tolerance: float = 1e-6,
    tie_tolerance: float = 0.10,
    progress: Callable[[CampaignProgress], None] | None = None,
) -> tuple[BackendABReport, ExperimentResults, ExperimentResults]:
    """Run the campaign once per backend and compare the record sets.

    Returns ``(report, results_a, results_b)``; ``results_a`` (the reference
    backend, scipy by default) is what callers should aggregate into tables.
    ``backend_b="auto"`` compares against whatever the environment resolves
    it to -- when no HiGHS bindings are available the comparison degenerates
    to scipy-vs-scipy and the report says so through its backend names.
    """
    name_a = resolve_backend_name(backend_a)
    name_b = resolve_backend_name(backend_b)
    sides: list[ExperimentResults] = []
    for backend in (backend_a, backend_b):
        sides.append(
            run_campaign(
                [replace(config, solver_backend=backend) for config in configs],
                scheduler_keys=scheduler_keys,
                replicates=replicates,
                base_seed=base_seed,
                n_workers=n_workers,
                scheduler_options=scheduler_options,
                progress=progress,
            )
        )
    report = compare_record_sets(
        sides[0],
        sides[1],
        backend_a=name_a,
        backend_b=name_b,
        objective_tolerance=objective_tolerance,
        tie_tolerance=tie_tolerance,
    )
    return report, sides[0], sides[1]
