"""Per-instance normalization and aggregation of experiment results.

Section 5 of the paper reports, for every heuristic, the mean, standard
deviation and maximum of its *degradation*: the ratio of its metric value on
an instance to the best value achieved by any heuristic on that same
instance.  The best heuristic on an instance therefore scores exactly 1; a
heuristic that is never the best but always close scores slightly above 1.

:func:`compute_degradations` performs the per-instance normalization;
:func:`summarize` aggregates the degradations into the Mean/SD/Max rows of
the paper's tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.experiments.runner import ExperimentResults, RunRecord

__all__ = ["DegradationRecord", "AggregateRow", "compute_degradations", "summarize"]


@dataclass(frozen=True)
class DegradationRecord:
    """Normalized metrics of one scheduler on one instance."""

    config: str
    replicate: int
    scheduler: str
    max_stretch_degradation: float
    sum_stretch_degradation: float
    n_clusters: int
    n_databanks: int
    availability: float
    density: float


@dataclass(frozen=True)
class AggregateRow:
    """Mean/SD/Max of the degradations of one scheduler (one table row)."""

    scheduler: str
    max_stretch_mean: float
    max_stretch_sd: float
    max_stretch_max: float
    sum_stretch_mean: float
    sum_stretch_sd: float
    sum_stretch_max: float
    n_instances: int

    def cells(self) -> list[object]:
        """Row cells in the column order of the paper's tables."""
        return [
            self.scheduler,
            self.max_stretch_mean,
            self.max_stretch_sd,
            self.max_stretch_max,
            self.sum_stretch_mean,
            self.sum_stretch_sd,
            self.sum_stretch_max,
        ]


def compute_degradations(results: ExperimentResults) -> list[DegradationRecord]:
    """Normalize every record by the best value observed on the same instance.

    Records flagged as failed (or with non-finite metrics) are skipped both as
    candidates for "best" and in the output.
    """
    by_instance: dict[tuple[str, int], list[RunRecord]] = {}
    for record in results:
        by_instance.setdefault((record.config, record.replicate), []).append(record)

    degradations: list[DegradationRecord] = []
    for (config, replicate), records in by_instance.items():
        valid = [
            r
            for r in records
            if not r.failed
            and math.isfinite(r.max_stretch)
            and math.isfinite(r.sum_stretch)
        ]
        if not valid:
            continue
        best_max = min(r.max_stretch for r in valid)
        best_sum = min(r.sum_stretch for r in valid)
        if best_max <= 0 or best_sum <= 0:
            continue
        for r in valid:
            degradations.append(
                DegradationRecord(
                    config=config,
                    replicate=replicate,
                    scheduler=r.scheduler,
                    max_stretch_degradation=r.max_stretch / best_max,
                    sum_stretch_degradation=r.sum_stretch / best_sum,
                    n_clusters=r.n_clusters,
                    n_databanks=r.n_databanks,
                    availability=r.availability,
                    density=r.density,
                )
            )
    return degradations


def summarize(
    degradations: Iterable[DegradationRecord],
    *,
    scheduler_order: Sequence[str] | None = None,
) -> list[AggregateRow]:
    """Aggregate degradations into Mean/SD/Max rows, one per scheduler.

    Parameters
    ----------
    degradations:
        Output of :func:`compute_degradations` (possibly filtered).
    scheduler_order:
        Optional explicit row order (display names); schedulers absent from
        the data are skipped, schedulers absent from the order are appended
        alphabetically.
    """
    by_scheduler: dict[str, list[DegradationRecord]] = {}
    for record in degradations:
        by_scheduler.setdefault(record.scheduler, []).append(record)

    if scheduler_order is None:
        ordered = sorted(by_scheduler)
    else:
        ordered = [s for s in scheduler_order if s in by_scheduler]
        ordered += sorted(s for s in by_scheduler if s not in ordered)

    rows: list[AggregateRow] = []
    for scheduler in ordered:
        records = by_scheduler[scheduler]
        max_vals = np.array([r.max_stretch_degradation for r in records])
        sum_vals = np.array([r.sum_stretch_degradation for r in records])
        rows.append(
            AggregateRow(
                scheduler=scheduler,
                max_stretch_mean=float(max_vals.mean()),
                max_stretch_sd=float(max_vals.std(ddof=0)),
                max_stretch_max=float(max_vals.max()),
                sum_stretch_mean=float(sum_vals.mean()),
                sum_stretch_sd=float(sum_vals.std(ddof=0)),
                sum_stretch_max=float(sum_vals.max()),
                n_instances=len(records),
            )
        )
    return rows
