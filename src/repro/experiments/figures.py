"""Regeneration of Figure 3 (Section 5.2).

Figure 3 compares the optimized on-line heuristic (Systems (1) + (2)) against
its non-optimized version (System (1) only) over a sweep of workload
densities:

* Figure 3(a): average max-stretch degradation from the off-line optimal, in
  percent, for both versions;
* Figure 3(b): average relative gain in sum-stretch of the optimized version
  over the non-optimized version, in percent.

The functions below run the sweep and return plot-ready series of
:class:`Figure3Point`; no plotting library is required (the benchmark harness
prints the series and EXPERIMENTS.md records them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ReproError
from repro.experiments.config import ExperimentConfig, figure3_configurations
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.utils.seeding import derive_seed
from repro.workload.generator import generate_instance

__all__ = ["Figure3Point", "figure3a", "figure3b", "run_figure3_sweep"]


@dataclass(frozen=True)
class Figure3Point:
    """One point of the Figure 3 curves."""

    density: float
    #: Average max-stretch degradation from optimal (%) of the optimized heuristic.
    optimized_max_stretch_degradation: float
    #: Average max-stretch degradation from optimal (%) of the non-optimized heuristic.
    non_optimized_max_stretch_degradation: float
    #: Average sum-stretch gain (%) of the optimized over the non-optimized version.
    sum_stretch_gain: float
    #: Number of instances aggregated into this point.
    n_instances: int


def run_figure3_sweep(
    configs: Sequence[ExperimentConfig] | None = None,
    *,
    replicates: int = 5,
    base_seed: int = 1998,
) -> list[Figure3Point]:
    """Run the Figure 3 experiment and return one point per density.

    For each instance, the max-stretch of the optimized (``Online``) and
    non-optimized (``Online (non-opt.)``) heuristics is divided by the
    off-line optimal max-stretch; the sum-stretch gain is
    ``(nonopt - opt) / nonopt``.
    """
    if configs is None:
        configs = figure3_configurations()

    points: list[Figure3Point] = []
    for config in configs:
        opt_degr: list[float] = []
        nonopt_degr: list[float] = []
        gains: list[float] = []
        for replicate in range(replicates):
            seed = derive_seed(base_seed, config.name, replicate)
            instance = generate_instance(
                config.platform_spec(), config.workload_spec(), rng=seed
            )
            try:
                offline = simulate(instance, make_scheduler("offline"))
                optimized = simulate(instance, make_scheduler("online"))
                non_optimized = simulate(instance, make_scheduler("online-nonopt"))
            except ReproError:
                continue
            reference = offline.max_stretch
            if reference <= 0:
                continue
            opt_degr.append(optimized.max_stretch / reference - 1.0)
            nonopt_degr.append(non_optimized.max_stretch / reference - 1.0)
            if non_optimized.sum_stretch > 0:
                gains.append(
                    (non_optimized.sum_stretch - optimized.sum_stretch)
                    / non_optimized.sum_stretch
                )
        if not opt_degr:
            continue
        points.append(
            Figure3Point(
                density=config.density,
                optimized_max_stretch_degradation=100.0 * float(np.mean(opt_degr)),
                non_optimized_max_stretch_degradation=100.0 * float(np.mean(nonopt_degr)),
                sum_stretch_gain=100.0 * float(np.mean(gains)) if gains else math.nan,
                n_instances=len(opt_degr),
            )
        )
    return points


def figure3a(points: Sequence[Figure3Point]) -> list[tuple[float, float, float]]:
    """Figure 3(a) series: (density, non-optimized degradation %, optimized degradation %)."""
    return [
        (p.density, p.non_optimized_max_stretch_degradation, p.optimized_max_stretch_degradation)
        for p in points
    ]


def figure3b(points: Sequence[Figure3Point]) -> list[tuple[float, float]]:
    """Figure 3(b) series: (density, sum-stretch gain %)."""
    return [(p.density, p.sum_stretch_gain) for p in points]
