"""Experiment configurations.

The paper's main campaign is a full factorial design over four parameters
(Section 5.3):

* platforms of 3, 10 and 20 clusters (10 processors each),
* 3, 10 and 20 distinct reference databanks,
* databank availabilities of 30 %, 60 % and 90 %,
* workload density factors of 0.75, 1.0, 1.25, 1.5, 2.0 and 3.0,

for 162 configurations, each replicated 200 times (about 32 000 instances).
Reproducing the campaign at full scale is possible but slow in pure Python;
:func:`paper_configurations` therefore exposes the exact same design while
letting the caller scale down the submission window and the number of
replicates (the benchmark harness records the values used in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.errors import ModelError
from repro.options import OnOff, SolverBackendChoice
from repro.schedulers.policies import parse_policy
from repro.schedulers.registry import LP_SOLVER_SCHEDULERS, ONLINE_LP_SCHEDULERS
from repro.workload.faults import FaultSpec
from repro.workload.generator import PlatformSpec, WorkloadSpec
from repro.workload.gripps import DEFAULT_PROCESSORS_PER_CLUSTER, SUBMISSION_WINDOW_SECONDS

__all__ = [
    "ExperimentConfig",
    "ONLINE_LP_SCHEDULERS",
    "PAPER_SITES",
    "PAPER_DATABANKS",
    "PAPER_AVAILABILITIES",
    "PAPER_DENSITIES",
    "paper_configurations",
    "figure3_configurations",
    "small_configurations",
]

#: Factor levels of the paper's factorial design (Section 5.3).
PAPER_SITES: tuple[int, ...] = (3, 10, 20)
PAPER_DATABANKS: tuple[int, ...] = (3, 10, 20)
PAPER_AVAILABILITIES: tuple[float, ...] = (0.3, 0.6, 0.9)
PAPER_DENSITIES: tuple[float, ...] = (0.75, 1.0, 1.25, 1.5, 2.0, 3.0)


@dataclass(frozen=True)
class ExperimentConfig:
    """One point of the experimental design.

    The six features of Section 5.1, plus the submission window and an
    optional cap on the number of jobs per instance (both used to scale the
    campaign to the available compute budget without changing its design),
    plus three knobs of the replanning pipeline: the replan policy driving
    the on-line LP heuristics (a new scenario axis the paper only discusses
    qualitatively), the incremental/from-scratch LP toggle (used by the
    overhead comparisons) and the LP solver backend.  The backend defaults
    to ``"auto"`` (the persistent HiGHS backend with basis warm starts when
    bindings are available, validated at campaign scale by the A/B gate in
    ``benchmarks/bench_campaign.py``); ``"scipy"`` remains the bit-stable
    escape hatch reproducing the historical one-shot-linprog numbers.

    ``state_bank`` toggles the content-addressed cross-run solver-state
    bank (:mod:`repro.lp.bank`) for the on-line LP heuristics.  The flag is
    a plain bool here; only the campaign runner translates it into a live
    per-worker bank (direct ``simulate()`` paths stay bank-less), and with
    replicate-affinity placement the results are bit-identical at any
    worker count either way -- ``state_bank=False`` simply re-pays the
    cold solves and is kept as the escape hatch mirroring
    ``solver_backend="scipy"``.

    ``speculation`` toggles the idle-gap speculative replan pre-solves of
    :mod:`repro.lp.speculate` on the on-line LP heuristics.  Results are
    bit-identical either way (hits re-bind exact optima of the same LP,
    misses are discarded); the toggle only moves LP work out of the
    arrival-to-plan latency path, so it defaults off like every other
    non-paper accelerator axis.

    The ``fault_*`` fields add a machine-availability axis (another scenario
    the paper discusses only qualitatively): when ``fault_mtbf`` and
    ``fault_mttr`` are both set, each replicate's instance is paired with a
    seeded :class:`~repro.simulation.faults.FaultTimeline` drawn from the
    renewal model of :mod:`repro.workload.faults` (the trace derives from
    the replicate seed, so it is part of the experiment identity and replays
    exactly at any worker count).  ``fault_horizon`` defaults to the
    submission window.  With the axis off (the default) campaigns are
    bit-identical to the fault-free engine.
    """

    name: str
    n_clusters: int
    n_databanks: int
    availability: float
    density: float
    processors_per_cluster: int = DEFAULT_PROCESSORS_PER_CLUSTER
    window: float = SUBMISSION_WINDOW_SECONDS
    max_jobs: int | None = None
    replan_policy: str = "on-arrival"
    incremental_lp: bool = True
    solver_backend: "SolverBackendChoice | str" = SolverBackendChoice.AUTO
    state_bank: "OnOff | bool | str" = OnOff.ON
    speculation: "OnOff | bool | str" = OnOff.OFF
    fault_mtbf: float | None = None
    fault_mttr: float | None = None
    fault_horizon: float | None = None
    fault_machine_fraction: float = 1.0
    fault_loss_model: str = "resume"
    fault_checkpoint_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_clusters <= 0 or self.n_databanks <= 0:
            raise ModelError("n_clusters and n_databanks must be positive")
        if not (0 < self.availability <= 1):
            raise ModelError("availability must lie in (0, 1]")
        if self.density <= 0 or self.window <= 0:
            raise ModelError("density and window must be positive")
        try:
            parse_policy(self.replan_policy)
        except ValueError as exc:
            raise ModelError(str(exc)) from None
        # Normalize the typed toggles (the dataclass is frozen, hence the
        # explicit __setattr__): booleans and legacy spellings are accepted
        # on the way in, the stored values are always enum members.
        try:
            object.__setattr__(
                self,
                "solver_backend",
                SolverBackendChoice.coerce(self.solver_backend, param="solver_backend"),
            )
            object.__setattr__(
                self, "state_bank", OnOff.coerce(self.state_bank, param="state_bank")
            )
            object.__setattr__(
                self, "speculation", OnOff.coerce(self.speculation, param="speculation")
            )
        except ValueError as exc:
            raise ModelError(str(exc)) from None
        if (self.fault_mtbf is None) != (self.fault_mttr is None):
            raise ModelError(
                "fault_mtbf and fault_mttr must be set together (or both left None)"
            )
        # Delegate range validation to FaultSpec so the config can never
        # carry a fault axis the generator would reject at run time.
        self.fault_spec()

    # -- conversions -------------------------------------------------------------
    def platform_spec(self) -> PlatformSpec:
        return PlatformSpec(
            n_clusters=self.n_clusters,
            processors_per_cluster=self.processors_per_cluster,
            n_databanks=self.n_databanks,
            availability=self.availability,
        )

    def workload_spec(self) -> WorkloadSpec:
        return WorkloadSpec(density=self.density, window=self.window, max_jobs=self.max_jobs)

    def fault_spec(self) -> FaultSpec | None:
        """The availability-axis parameters, or ``None`` when the axis is off."""
        if self.fault_mtbf is None or self.fault_mttr is None:
            return None
        return FaultSpec(
            mtbf=self.fault_mtbf,
            mttr=self.fault_mttr,
            horizon=self.window if self.fault_horizon is None else self.fault_horizon,
            machine_fraction=self.fault_machine_fraction,
            loss_model=self.fault_loss_model,
            checkpoint_fraction=self.fault_checkpoint_fraction,
        )

    def scaled(
        self, *, window: float | None = None, max_jobs: int | None = None
    ) -> "ExperimentConfig":
        """A copy with a different submission window and/or job cap."""
        return replace(
            self,
            window=self.window if window is None else window,
            max_jobs=self.max_jobs if max_jobs is None else max_jobs,
        )

    def scheduler_options_for(self, key: str) -> dict[str, object]:
        """Constructor options this configuration implies for scheduler ``key``.

        The replan policy and the incremental toggle only exist on the
        on-line LP heuristics; the solver backend applies to every LP
        consumer (``LP_SOLVER_SCHEDULERS``); every other scheduler gets no
        options.
        """
        options: dict[str, object] = {}
        if key in LP_SOLVER_SCHEDULERS:
            options["solver_backend"] = str(self.solver_backend)
        if key in ONLINE_LP_SCHEDULERS:
            options["policy"] = self.replan_policy
            options["incremental"] = self.incremental_lp
            # A bool at this level; the campaign workers swap in their
            # resident SolverStateBank (OnlineLPScheduler ignores non-bank
            # values, so other call sites are unaffected).
            options["state_bank"] = bool(self.state_bank)
            options["speculate"] = bool(self.speculation)
        return options

    def as_dict(self) -> dict[str, float | int | str | bool | None]:
        return {
            "name": self.name,
            "n_clusters": self.n_clusters,
            "n_databanks": self.n_databanks,
            "availability": self.availability,
            "density": self.density,
            "processors_per_cluster": self.processors_per_cluster,
            "window": self.window,
            "max_jobs": self.max_jobs,
            "replan_policy": self.replan_policy,
            "incremental_lp": self.incremental_lp,
            # The journal/checkpoint schema predates the typed toggles: keep
            # emitting the historical primitives (str / bool).
            "solver_backend": str(self.solver_backend),
            "state_bank": bool(self.state_bank),
            "speculation": bool(self.speculation),
            "fault_mtbf": self.fault_mtbf,
            "fault_mttr": self.fault_mttr,
            "fault_horizon": self.fault_horizon,
            "fault_machine_fraction": self.fault_machine_fraction,
            "fault_loss_model": self.fault_loss_model,
            "fault_checkpoint_fraction": self.fault_checkpoint_fraction,
        }


def paper_configurations(
    *,
    sites: Sequence[int] = PAPER_SITES,
    databanks: Sequence[int] = PAPER_DATABANKS,
    availabilities: Sequence[float] = PAPER_AVAILABILITIES,
    densities: Sequence[float] = PAPER_DENSITIES,
    window: float = SUBMISSION_WINDOW_SECONDS,
    max_jobs: int | None = None,
    processors_per_cluster: int = DEFAULT_PROCESSORS_PER_CLUSTER,
    replan_policy: str = "on-arrival",
    incremental_lp: bool = True,
    solver_backend: str = "auto",
    state_bank: bool = True,
    speculation: bool = False,
    fault_mtbf: float | None = None,
    fault_mttr: float | None = None,
    fault_horizon: float | None = None,
    fault_machine_fraction: float = 1.0,
    fault_loss_model: str = "resume",
    fault_checkpoint_fraction: float = 0.0,
) -> list[ExperimentConfig]:
    """The full factorial design of Section 5.3 (162 configurations by default)."""
    configs: list[ExperimentConfig] = []
    for n_clusters in sites:
        for n_databanks in databanks:
            for availability in availabilities:
                for density in densities:
                    name = (
                        f"s{n_clusters:02d}-d{n_databanks:02d}"
                        f"-a{int(round(availability * 100)):02d}"
                        f"-rho{density:g}"
                    )
                    configs.append(
                        ExperimentConfig(
                            name=name,
                            n_clusters=n_clusters,
                            n_databanks=n_databanks,
                            availability=availability,
                            density=density,
                            processors_per_cluster=processors_per_cluster,
                            window=window,
                            max_jobs=max_jobs,
                            replan_policy=replan_policy,
                            incremental_lp=incremental_lp,
                            solver_backend=solver_backend,
                            state_bank=state_bank,
                            speculation=speculation,
                            fault_mtbf=fault_mtbf,
                            fault_mttr=fault_mttr,
                            fault_horizon=fault_horizon,
                            fault_machine_fraction=fault_machine_fraction,
                            fault_loss_model=fault_loss_model,
                            fault_checkpoint_fraction=fault_checkpoint_fraction,
                        )
                    )
    return configs


def figure3_configurations(
    *,
    densities: Iterable[float] = (0.0125, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0,
                                  1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
    n_clusters: int = 3,
    n_databanks: int = 3,
    availability: float = 0.6,
    window: float = SUBMISSION_WINDOW_SECONDS,
    max_jobs: int | None = None,
) -> list[ExperimentConfig]:
    """The density sweep of Section 5.2 (Figure 3).

    The paper sweeps 80 job-size/density combinations between densities
    0.0125 and 4.0 on small platforms; this helper exposes the density axis
    (the quantity plotted) with a configurable resolution.
    """
    configs = []
    for density in densities:
        configs.append(
            ExperimentConfig(
                name=f"fig3-rho{density:g}",
                n_clusters=n_clusters,
                n_databanks=n_databanks,
                availability=availability,
                density=density,
                window=window,
                max_jobs=max_jobs,
            )
        )
    return configs


def small_configurations(
    *,
    window: float = 60.0,
    max_jobs: int | None = 40,
) -> list[ExperimentConfig]:
    """A handful of small configurations used by tests and the quickstart example."""
    return [
        ExperimentConfig(
            name="small-low",
            n_clusters=2,
            n_databanks=2,
            availability=0.6,
            density=0.75,
            processors_per_cluster=4,
            window=window,
            max_jobs=max_jobs,
        ),
        ExperimentConfig(
            name="small-high",
            n_clusters=3,
            n_databanks=3,
            availability=0.6,
            density=1.5,
            processors_per_cluster=4,
            window=window,
            max_jobs=max_jobs,
        ),
    ]
