"""Campaign execution engine: streaming work distribution over long-lived workers.

The paper's Section 5.3 evidence is a factorial campaign of 162
configurations x 200 replicates (~32 000 instances, ~320 000 scheduler
runs).  This module carries campaigns of that scale by splitting the work
into *(configuration, replicate, scheduler)* task units and streaming them
through a pool of long-lived worker processes:

* **Task granularity.**  One task = one scheduler on one instance, so a slow
  LP scheduler on a 20-cluster instance cannot hold the cheap list
  heuristics of the same replicate hostage, and the pool stays busy until
  the very last task.
* **Per-worker instance cache.**  Instances are realized from the derived
  seed inside the worker and kept in a small LRU keyed by
  ``(configuration, replicate, seed)``; the schedulers of one replicate are
  adjacent in task order, so each worker typically generates every instance
  it touches exactly once.  Nothing heavy is ever pickled.
* **Worker-resident solver backend.**  Each worker owns one long-lived
  :class:`~repro.lp.backends.SolverBackend` per backend name, resolved once
  (bindings import, option tables) and injected into every LP scheduler the
  worker runs.  Per-run solver state (live models, transplanted bases) is
  still scoped to the run -- :class:`~repro.lp.incremental.ReplanContext`
  empties the backend at run start -- which is exactly what keeps a sharded
  campaign *bit-identical* to the serial one: results can never depend on
  which tasks previously shared a worker.
* **Replicate-affinity placement + cross-run solver-state bank.**  Each
  worker also holds one :class:`~repro.lp.bank.SolverStateBank`, and tasks
  are dealt to fixed per-worker *lanes* in whole ``(configuration,
  replicate)`` groups (by first appearance, exactly like the
  :class:`~repro.experiments.sharding.ShardPlan` deals instance groups
  across shard legs).  All four on-line LP variants of one replicate thus
  colocate on one worker and share banked solver state keyed by the
  instance's *content* -- and because each content key's bucket history is
  the group's canonical prefix at any worker count, the bank preserves the
  serial/sharded bit-identity invariant instead of breaking it.
* **Group-batched dispatch + packed transport.**  Because lanes already deal
  work in whole ``(configuration, replicate)`` groups, the pool path submits
  each group as *one* :func:`_run_task_group` future covering every
  scheduler of the group: one pickle/IPC round-trip and one instance-cache
  lookup amortized over the ~13 schedulers of a group instead of one per
  record.  The group's records return as one :class:`PackedRecords`
  columnar payload (a single float64 metrics buffer plus one shared
  metadata dict), and its journal lines are written in one batch with a
  single flush at the group boundary.  ``dispatch="task"`` restores the
  historical one-future-per-scheduler granularity; both paths produce
  bit-identical record sets.
* **Streaming collection.**  Dispatch units are submitted through a bounded
  in-flight window per lane and collected as they complete (no head-of-line
  blocking, bounded memory); each completed record is appended to an
  optional :class:`~repro.experiments.io.CampaignCheckpoint` so a killed
  campaign can be resumed without recomputing finished triples.  The
  returned record list is always in canonical task order, independent of
  completion order and of ``n_workers``.
"""

from __future__ import annotations

import json
import math
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.lp.backends import SolverBackend, make_backend, resolve_backend_name
from repro.lp.bank import SolverStateBank
from repro.lp.resilience import make_resilient
from repro.options import DispatchMode
from repro.schedulers.registry import make_scheduler, paper_schedulers
from repro.simulation.engine import simulate
from repro.utils.seeding import derive_seed
from repro.workload.faults import generate_fault_timeline
from repro.workload.generator import generate_instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.io import CampaignCheckpoint

__all__ = [
    "RunRecord",
    "PackedRecords",
    "ExperimentResults",
    "CampaignTask",
    "CampaignProgress",
    "campaign_tasks",
    "campaign_meta",
    "run_configuration",
    "run_campaign",
]

#: Default scheduler set: the paper's Table 1 strategies minus Bender98 (whose
#: overhead restricted it to the smallest platforms even in the paper).
DEFAULT_SCHEDULERS: tuple[str, ...] = tuple(paper_schedulers(include_bender98=False))

#: In-flight submissions per worker.  Large enough that a worker finishing a
#: cheap task never idles waiting for the collector, small enough that a
#: 32k-task campaign does not materialize all its futures at once.
_IN_FLIGHT_PER_WORKER = 4

#: Instances kept alive per worker.  Task order is scheduler-innermost, so a
#: worker normally alternates between at most a handful of live instances
#: even when the pool steals tasks across replicate boundaries.
_INSTANCE_CACHE_SIZE = 8

#: Extra attempts a dispatch unit gets after its worker process dies (OOM
#: kill, SIGKILL, segfault in native code).  A unit whose fresh-worker
#: re-runs also die is genuinely poisonous and aborts the campaign with
#: context rather than looping forever.
_MAX_UNIT_RETRIES = 2


def nan_to_none(values: dict[str, object]) -> dict[str, object]:
    """A copy of ``values`` with non-finite floats replaced by ``None``.

    The single normalization rule shared by :meth:`RunRecord.result_dict`
    and the JSON persistence layer (:mod:`repro.experiments.io`): NaN and
    the infinities have no strict-JSON literal (every sink dumps with
    ``allow_nan=False``), and NaN compares unequal to itself across pickle
    boundaries, so no non-finite value ever leaves a record as a bare
    float.
    """
    return {
        key: None if isinstance(value, float) and not math.isfinite(value) else value
        for key, value in values.items()
    }


@dataclass(frozen=True)
class RunRecord:
    """Raw metrics of one (configuration, replicate, scheduler) run."""

    config: str
    replicate: int
    scheduler: str
    n_jobs: int
    n_clusters: int
    n_databanks: int
    availability: float
    density: float
    max_stretch: float
    sum_stretch: float
    max_flow: float
    sum_flow: float
    makespan: float
    scheduler_time: float
    failed: bool = False

    def as_dict(self) -> dict[str, object]:
        return asdict(self)

    def result_dict(self) -> dict[str, object]:
        """The deterministic result fields (drops the wall-clock measurement).

        ``scheduler_time`` is a timing *measurement*, not a simulation
        result, so it is excluded from the bit-identity comparisons between
        serial and sharded campaign runs.  NaN metrics (failed runs) are
        mapped to ``None``: NaN compares unequal to itself once a record has
        crossed a pickle/JSON boundary (dict equality only short-circuits on
        object identity), which would make identically-failed runs look
        different.
        """
        values = asdict(self)
        del values["scheduler_time"]
        return nan_to_none(values)

    @staticmethod
    def to_packed(records: Sequence["RunRecord"]) -> "PackedRecords":
        """Columnar-encode one group's records (see :class:`PackedRecords`)."""
        return PackedRecords.pack(records)

    @staticmethod
    def from_packed(packed: "PackedRecords") -> list["RunRecord"]:
        """Rebuild the records of a :meth:`to_packed` payload, bit-exactly."""
        return packed.unpack()


#: RunRecord fields shared by every record of one (configuration, replicate)
#: group -- carried once per packed group instead of once per record.
_GROUP_META_FIELDS = (
    "config",
    "replicate",
    "n_jobs",
    "n_clusters",
    "n_databanks",
    "availability",
    "density",
)

#: RunRecord float columns carried as one (k, 6) float64 buffer per group.
_PACKED_METRIC_FIELDS = (
    "max_stretch",
    "sum_stretch",
    "max_flow",
    "sum_flow",
    "makespan",
    "scheduler_time",
)


@dataclass(frozen=True)
class PackedRecords:
    """One (configuration, replicate) group's records in columnar form.

    The pool-transport encoding of the group-batched dispatch: the fields
    every record of the group shares travel once in ``meta``, the per-record
    scheduler display names as a tuple, and the six float metric columns as
    a single ``(k, 6)`` float64 buffer.  Pickling a group therefore moves
    one contiguous numpy buffer (serialized as raw memory, no per-field
    boxing) plus a handful of scalars, instead of ``k`` full dataclass
    objects.  ``pack``/``unpack`` round-trip bit-exactly: float64 columns
    store the records' python floats verbatim (NaN included -- failed runs
    normalize through :func:`nan_to_none` downstream, exactly as before).
    """

    meta: dict[str, object]
    schedulers: tuple[str, ...]
    metrics: np.ndarray
    failed: np.ndarray

    @classmethod
    def pack(cls, records: Sequence[RunRecord]) -> "PackedRecords":
        if not records:
            raise ValueError("cannot pack an empty record group")
        first = records[0]
        meta = {field: getattr(first, field) for field in _GROUP_META_FIELDS}
        metrics = np.empty((len(records), len(_PACKED_METRIC_FIELDS)), dtype=np.float64)
        failed = np.empty(len(records), dtype=np.bool_)
        for i, record in enumerate(records):
            for j, field in enumerate(_PACKED_METRIC_FIELDS):
                metrics[i, j] = getattr(record, field)
            failed[i] = record.failed
        return cls(
            meta=meta,
            schedulers=tuple(record.scheduler for record in records),
            metrics=metrics,
            failed=failed,
        )

    def unpack(self) -> list[RunRecord]:
        rows = self.metrics.tolist()
        flags = self.failed.tolist()
        return [
            RunRecord(
                scheduler=scheduler,
                max_stretch=row[0],
                sum_stretch=row[1],
                max_flow=row[2],
                sum_flow=row[3],
                makespan=row[4],
                scheduler_time=row[5],
                failed=flag,
                **self.meta,
            )
            for scheduler, row, flag in zip(self.schedulers, rows, flags)
        ]

    def __len__(self) -> int:
        return len(self.schedulers)


class ExperimentResults:
    """A flat collection of :class:`RunRecord` with filtering helpers."""

    def __init__(self, records: Iterable[RunRecord] = ()):
        self.records: list[RunRecord] = list(records)
        #: Per-stage wall-clock of the producing campaign run (``dispatch`` /
        #: ``compute`` / ``serialize`` / ``journal``), filled in by
        #: :func:`run_campaign`; empty for derived or merged result sets.
        self.stage_seconds: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self.records.extend(records)

    def schedulers(self) -> list[str]:
        """Scheduler names present, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.scheduler, None)
        return list(seen)

    def filter(self, predicate: Callable[[RunRecord], bool]) -> "ExperimentResults":
        """A new result set containing the records matching ``predicate``."""
        return ExperimentResults(r for r in self.records if predicate(r))

    def by_sites(self, n_clusters: int) -> "ExperimentResults":
        return self.filter(lambda r: r.n_clusters == n_clusters)

    def by_databases(self, n_databanks: int) -> "ExperimentResults":
        return self.filter(lambda r: r.n_databanks == n_databanks)

    def by_availability(self, availability: float) -> "ExperimentResults":
        return self.filter(lambda r: math.isclose(r.availability, availability))

    def by_density(self, density: float) -> "ExperimentResults":
        return self.filter(lambda r: math.isclose(r.density, density))

    def instances(self) -> list[tuple[str, int]]:
        """All (configuration, replicate) pairs present."""
        seen: dict[tuple[str, int], None] = {}
        for record in self.records:
            seen.setdefault((record.config, record.replicate), None)
        return list(seen)

    def result_set(self) -> list[dict[str, object]]:
        """Order-independent deterministic view of the record set.

        Sorted by (configuration, replicate, scheduler) with the timing
        measurements dropped; two campaign runs over the same design are
        *bit-identical* exactly when their ``result_set()`` compare equal,
        regardless of worker count or completion order.
        """
        return sorted(
            (record.result_dict() for record in self.records),
            key=lambda d: (d["config"], d["replicate"], d["scheduler"]),
        )


@dataclass(frozen=True)
class CampaignTask:
    """One unit of campaign work: one scheduler on one realized instance."""

    config: ExperimentConfig
    replicate: int
    scheduler_key: str
    seed: int

    @property
    def triple(self) -> tuple[str, int, str]:
        """The (configuration name, replicate, scheduler key) identity."""
        return (self.config.name, self.replicate, self.scheduler_key)


@dataclass(frozen=True)
class CampaignProgress:
    """Progress snapshot handed to the ``progress`` callback after each task.

    ``rate`` and ``eta_seconds`` are computed over the tasks executed in
    *this* process invocation (checkpoint-restored tasks are excluded so a
    resumed campaign does not report a fantasy throughput).
    ``stage_seconds`` is the run's cumulative per-stage wall-clock so far
    (``dispatch`` / ``compute`` / ``serialize`` / ``journal`` -- the
    breakdown behind ``campaign --profile``).
    """

    completed: int
    total: int
    triple: tuple[str, int, str]
    elapsed_seconds: float
    rate: float
    eta_seconds: float
    stage_seconds: Mapping[str, float] | None = None

    def __str__(self) -> str:
        config, replicate, scheduler = self.triple
        return (
            f"[{self.completed}/{self.total}] {config} r{replicate} {scheduler} "
            f"({self.rate:.1f} tasks/s, eta {self.eta_seconds:.0f}s)"
        )


def campaign_tasks(
    configs: Sequence[ExperimentConfig],
    scheduler_keys: Sequence[str] = DEFAULT_SCHEDULERS,
    replicates: int = 5,
    base_seed: int = 2006,
) -> list[CampaignTask]:
    """The campaign's task list in canonical order.

    Scheduler-innermost, so the tasks sharing one realized instance are
    adjacent (maximizing the per-worker instance-cache hit rate) and the
    canonical record order matches the historical serial runner.
    """
    tasks: list[CampaignTask] = []
    for config in configs:
        for replicate in range(replicates):
            seed = derive_seed(base_seed, config.name, replicate)
            for key in scheduler_keys:
                tasks.append(CampaignTask(config, replicate, key, seed))
    return tasks


def campaign_meta(
    configs: Sequence[ExperimentConfig],
    scheduler_keys: Sequence[str] = DEFAULT_SCHEDULERS,
    replicates: int = 5,
    base_seed: int = 2006,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
) -> dict[str, object]:
    """The campaign's identity header, shared by checkpoints and shard journals.

    The full design, not just names: two campaigns sharing config names but
    differing in window/max_jobs/replan knobs produce different records, and
    resuming (or merging) across them must be rejected.  Backends are
    recorded *resolved* ("auto" -> what actually runs here), so a journal
    started without HiGHS bindings cannot be silently continued with them
    (or vice versa).  The result is normalized through JSON so a comparison
    against a reloaded header cannot reject its own campaign (e.g. tuples
    becoming lists).
    """
    meta = {
        "base_seed": int(base_seed),
        "replicates": int(replicates),
        "scheduler_keys": list(scheduler_keys),
        "configs": [config.as_dict() for config in configs],
        "resolved_backends": sorted(
            {resolve_backend_name(config.solver_backend) for config in configs}
        ),
        "scheduler_options": (
            {key: dict(value) for key, value in scheduler_options.items()}
            if scheduler_options
            else None
        ),
    }
    try:
        return json.loads(json.dumps(meta, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise ReproError(
            "campaign checkpoints require JSON-serializable "
            f"scheduler_options: {exc}"
        ) from None


# -- per-worker state ---------------------------------------------------------------


class _WorkerState:
    """Long-lived state owned by one worker process (or the serial caller).

    Holds the instance LRU and one resolved solver backend per backend name.
    The backend *handle* (imported bindings, model cache object, counters)
    survives across tasks; per-run solver state is emptied by the schedulers
    at run start, so sharing a worker never changes a task's result.
    """

    def __init__(self, *, instance_cache_size: int = _INSTANCE_CACHE_SIZE):
        self._instance_cache_size = max(1, int(instance_cache_size))
        self._instances: OrderedDict[tuple, object] = OrderedDict()
        self._backends: dict[str, SolverBackend] = {}
        #: The worker's cross-run solver-state bank (content-addressed, see
        #: :mod:`repro.lp.bank`); handed to schedulers whose configuration
        #: enables ``state_bank``.
        self.bank = SolverStateBank()
        #: Exposed for tests/benchmarks: instance generations vs cache hits.
        self.n_instance_builds = 0
        self.n_instance_hits = 0

    def instance_for(self, config: ExperimentConfig, seed: int):
        """The realized instance of (config, derived seed), generated once.

        Keyed by the instance-shaping inputs themselves -- the platform and
        workload specs plus the derived seed -- so two configurations that
        merely share a name (e.g. across separate campaigns run in the same
        process) can never alias each other's instances.
        """
        key = (config.platform_spec(), config.workload_spec(), seed)
        instance = self._instances.get(key)
        if instance is None:
            instance = generate_instance(key[0], key[1], rng=seed)
            self._instances[key] = instance
            self.n_instance_builds += 1
        else:
            self.n_instance_hits += 1
        self._instances.move_to_end(key)
        while len(self._instances) > self._instance_cache_size:
            self._instances.popitem(last=False)
        return instance

    def backend_for(self, spec: object) -> object:
        """Resolve a backend spec to this worker's resident instance.

        Names are resolved through :func:`~repro.lp.backends.make_backend`
        once and cached, so every LP scheduler this worker runs shares the
        same live backend handle.  Persistent backends are wrapped in the
        scipy-downgrade :func:`~repro.lp.resilience.make_resilient` shell,
        so one pathological probe degrades that probe, not the worker.
        Non-string specs (``None`` or an explicit
        :class:`~repro.lp.backends.SolverBackend`) pass through untouched.
        """
        if not isinstance(spec, str):
            return spec
        backend = self._backends.get(spec)
        if backend is None:
            backend = make_resilient(make_backend(spec))
            self._backends[spec] = backend
        return backend

    def close(self) -> None:
        self._instances.clear()
        for backend in self._backends.values():
            backend.close()
        self._backends.clear()
        self.bank.clear()


_WORKER: _WorkerState | None = None


def _worker_state() -> _WorkerState:
    """The calling process's :class:`_WorkerState` (created on first use)."""
    global _WORKER
    if _WORKER is None:
        _WORKER = _WorkerState()
    return _WORKER


def _init_worker() -> None:
    """Pool initializer: give the worker its long-lived state up front."""
    _worker_state()


def _run_one(
    state: _WorkerState,
    config: ExperimentConfig,
    replicate: int,
    scheduler_key: str,
    seed: int,
    scheduler_options: Mapping[str, Mapping[str, object]] | None,
) -> RunRecord:
    """Run one scheduler on the (cached) realized instance of ``state``."""
    instance = state.instance_for(config, seed)
    # Configuration-level replanning knobs first, then explicit per-key
    # options so callers can still override them.
    options = config.scheduler_options_for(scheduler_key)
    options.update((scheduler_options or {}).get(scheduler_key, {}))
    if "solver_backend" in options:
        options["solver_backend"] = state.backend_for(options["solver_backend"])
    # The configuration carries the bank toggle as a plain bool; the worker
    # is the only place a live bank exists, so translate it here.
    bank_flag = options.get("state_bank")
    if isinstance(bank_flag, bool):
        options["state_bank"] = state.bank if bank_flag else None
    scheduler = make_scheduler(scheduler_key, **options)
    # The availability axis: a seeded fault timeline derived from the
    # replicate seed, regenerated identically wherever the task runs.  With
    # the axis off, `faults` stays None and the engine path is untouched.
    faults = None
    fault_spec = config.fault_spec()
    if fault_spec is not None:
        faults = generate_fault_timeline(
            instance.platform, fault_spec, rng=derive_seed(seed, "faults")
        )
    failed = False
    try:
        result = simulate(instance, scheduler, faults=faults)
        values = result.metrics_row()
        values["scheduler_time"] = result.scheduler_time
    except ReproError:
        # A scheduler failure -- an LP numerical breakdown on a corner case,
        # a terminal SolverError that survived the retry/downgrade chain, or
        # a fault axis paired with a non-fault-aware scheduler -- is
        # recorded as a NaN-metrics `failed` record instead of aborting the
        # whole campaign (or this worker's group future).
        failed = True
        values = dict(
            max_stretch=math.nan,
            sum_stretch=math.nan,
            max_flow=math.nan,
            sum_flow=math.nan,
            makespan=math.nan,
            scheduler_time=math.nan,
        )
    return RunRecord(
        config=config.name,
        replicate=replicate,
        scheduler=scheduler.name,
        n_jobs=instance.n_jobs,
        n_clusters=config.n_clusters,
        n_databanks=config.n_databanks,
        availability=config.availability,
        density=config.density,
        failed=failed,
        **values,
    )


def _run_task(
    config: ExperimentConfig,
    replicate: int,
    scheduler_key: str,
    seed: int,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
) -> RunRecord:
    """Worker body: run one scheduler on the (cached) realized instance."""
    return _run_one(
        _worker_state(), config, replicate, scheduler_key, seed, scheduler_options
    )


def _run_task_group(
    config: ExperimentConfig,
    replicate: int,
    seed: int,
    scheduler_keys: Sequence[str],
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
) -> tuple[PackedRecords, float, float]:
    """Worker body: run a whole (configuration, replicate) group in one call.

    One pool round-trip covers every scheduler of the group: the instance is
    realized (or LRU-hit) once, each scheduler runs back to back in the
    historical canonical order, and the records return as one packed
    columnar payload.  Returns ``(packed, compute_seconds, pack_seconds)``
    so the collector can account wall-clock to the right profile stage.
    """
    state = _worker_state()
    t_compute = time.perf_counter()
    records = [
        _run_one(state, config, replicate, key, seed, scheduler_options)
        for key in scheduler_keys
    ]
    compute_seconds = time.perf_counter() - t_compute
    t_pack = time.perf_counter()
    packed = RunRecord.to_packed(records)
    return packed, compute_seconds, time.perf_counter() - t_pack


def run_configuration(
    config: ExperimentConfig,
    *,
    scheduler_keys: Sequence[str] = DEFAULT_SCHEDULERS,
    replicates: int = 5,
    base_seed: int = 2006,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
) -> ExperimentResults:
    """Run one configuration for the requested number of replicates (serial).

    A thin wrapper over :func:`run_campaign` with a single configuration, so
    both entry points share one worker-state lifecycle.
    """
    return run_campaign(
        [config],
        scheduler_keys=scheduler_keys,
        replicates=replicates,
        base_seed=base_seed,
        scheduler_options=scheduler_options,
    )


class _CampaignRun:
    """Bookkeeping of one :func:`run_campaign` invocation (streaming collection)."""

    def __init__(
        self,
        tasks: Sequence[CampaignTask],
        checkpoint: "CampaignCheckpoint | None",
        progress: Callable[[CampaignProgress], None] | None,
    ):
        self.tasks = tasks
        self.checkpoint = checkpoint
        self.progress = progress
        self.slots: list[RunRecord | None] = [None] * len(tasks)
        self.completed = 0
        self.completed_live = 0
        self.started = time.perf_counter()
        #: Cumulative per-stage wall-clock of this run (the ``--profile``
        #: breakdown): ``dispatch`` = submitting futures, ``compute`` =
        #: worker-side scheduler runs, ``serialize`` = packing + unpacking
        #: the columnar payloads, ``journal`` = checkpoint writes.
        self.stage_seconds: dict[str, float] = {
            "dispatch": 0.0,
            "compute": 0.0,
            "serialize": 0.0,
            "journal": 0.0,
        }

    def restore(self, index: int, record: RunRecord) -> None:
        """Adopt a checkpoint-restored record (not re-announced per task)."""
        self.slots[index] = record
        self.completed += 1

    def _announce(self, index: int, record: RunRecord) -> None:
        self.slots[index] = record
        self.completed += 1
        self.completed_live += 1
        if self.progress is not None:
            elapsed = time.perf_counter() - self.started
            rate = self.completed_live / elapsed if elapsed > 0 else 0.0
            remaining = len(self.tasks) - self.completed
            self.progress(
                CampaignProgress(
                    completed=self.completed,
                    total=len(self.tasks),
                    triple=self.tasks[index].triple,
                    elapsed_seconds=elapsed,
                    rate=rate,
                    eta_seconds=remaining / rate if rate > 0 else math.inf,
                    stage_seconds=dict(self.stage_seconds),
                )
            )

    def finish(self, index: int, record: RunRecord) -> None:
        """Adopt a freshly computed record: store, checkpoint, announce."""
        if self.checkpoint is not None:
            t_journal = time.perf_counter()
            self.checkpoint.append(self.tasks[index].scheduler_key, record)
            self.stage_seconds["journal"] += time.perf_counter() - t_journal
        self._announce(index, record)

    def finish_group(
        self,
        indices: Sequence[int],
        packed: PackedRecords,
        compute_seconds: float,
        pack_seconds: float,
    ) -> None:
        """Adopt one group's packed records: unpack, journal once, announce.

        The group's journal lines are written in one batch with a single
        flush (:meth:`~repro.experiments.io.CampaignCheckpoint.append_batch`)
        -- the group boundary is the durability boundary, and the
        truncated-line sealing of ``open_append`` keeps a kill mid-batch
        resumable exactly once.
        """
        t_unpack = time.perf_counter()
        records = RunRecord.from_packed(packed)
        self.stage_seconds["serialize"] += (
            pack_seconds + time.perf_counter() - t_unpack
        )
        self.stage_seconds["compute"] += compute_seconds
        if self.checkpoint is not None:
            t_journal = time.perf_counter()
            self.checkpoint.append_batch(
                [
                    (self.tasks[index].scheduler_key, record)
                    for index, record in zip(indices, records)
                ]
            )
            self.stage_seconds["journal"] += time.perf_counter() - t_journal
        for index, record in zip(indices, records):
            self._announce(index, record)

    def results(self) -> ExperimentResults:
        assert all(record is not None for record in self.slots)
        results = ExperimentResults(self.slots)  # type: ignore[arg-type]
        results.stage_seconds = dict(self.stage_seconds)
        return results


def run_campaign(
    configs: Sequence[ExperimentConfig],
    *,
    scheduler_keys: Sequence[str] = DEFAULT_SCHEDULERS,
    replicates: int = 5,
    base_seed: int = 2006,
    n_workers: int = 1,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
    progress: Callable[[CampaignProgress], None] | None = None,
    checkpoint: "CampaignCheckpoint | str | Path | None" = None,
    resume: bool = False,
    max_in_flight: int | None = None,
    shard: "object | str | None" = None,
    dispatch: "DispatchMode | str" = DispatchMode.GROUP,
) -> ExperimentResults:
    """Run a whole campaign (all configurations x replicates x schedulers).

    Parameters
    ----------
    configs:
        The experimental design (e.g. :func:`paper_configurations`).
    scheduler_keys:
        Registry keys of the strategies to evaluate.
    replicates:
        Number of random instances per configuration.
    base_seed:
        Root of the seed derivation; the same (configuration, replicate)
        always sees the same instance.
    n_workers:
        Number of worker processes.  ``1`` (default) runs everything in the
        calling process; larger values stream (configuration, replicate,
        scheduler) tasks over per-worker *lanes* (one single-process pool
        each) with whole ``(configuration, replicate)`` groups dealt to a
        fixed lane by first appearance -- so every worker keeps its
        instance cache, solver backend and cross-run solver-state bank
        effective across the schedulers of its replicates.  The returned
        record set is bit-identical (up to the ``scheduler_time``
        measurement) for every worker count, bank on or off.
    scheduler_options:
        Optional per-scheduler-key constructor options (e.g.
        ``{"bender98": {"max_jobs_per_resolution": 30}}``).  Must be
        picklable when ``n_workers > 1``.
    progress:
        Optional callback invoked with a :class:`CampaignProgress` (renders
        as a short ``[done/total] ... eta`` message) after each completed
        task.
    checkpoint:
        Optional :class:`~repro.experiments.io.CampaignCheckpoint` (or a
        path) to which completed records are appended as they stream in.
    resume:
        With a ``checkpoint`` whose file already exists, load it and skip
        every (configuration, replicate, scheduler) triple it already
        contains.  Without ``resume``, an existing checkpoint file is an
        error (never silently overwritten or duplicated).
    max_in_flight:
        Bound on concurrently submitted dispatch units (default: 4 per
        worker).  Under group dispatch a unit is a whole (configuration,
        replicate) group; under per-task dispatch it is a single task.
    shard:
        Optional :class:`~repro.experiments.sharding.ShardPlan` (or an
        ``"i/N"`` spec string) restricting this invocation to one
        deterministic slice of the design.  The checkpoint header records
        the shard identity, so a shard journal can only resume its own
        slice; :func:`~repro.experiments.merge.merge_journals` reunites the
        N slices into the full record set.
    dispatch:
        ``"group"`` (default) runs each (configuration, replicate) group as
        one dispatch unit -- one pool round-trip, one packed payload and one
        batched journal flush per group.  ``"task"`` restores the historical
        one-unit-per-scheduler granularity (useful as the amortization
        baseline in benchmarks).  Both produce bit-identical record sets at
        every worker count.
    """
    try:
        dispatch = DispatchMode.coerce(dispatch, param="dispatch")
    except ValueError:
        raise ReproError(f"unknown dispatch mode {dispatch!r} (group or task)") from None
    tasks = campaign_tasks(configs, scheduler_keys, replicates, base_seed)

    plan = None
    if shard is not None:
        # Imported here: sharding imports CampaignTask from this module.
        from repro.experiments.sharding import ShardPlan

        plan = shard if isinstance(shard, ShardPlan) else ShardPlan.parse(shard)
        tasks = plan.select(tasks)

    ckpt: "CampaignCheckpoint | None" = None
    restored: dict[tuple[str, int, str], RunRecord] = {}
    meta: dict[str, object] | None = None
    if checkpoint is not None:
        # The journal identifies work by triple, so a checkpointed design
        # must be triple-unique; plain runs tolerate duplicates (they just
        # produce duplicate records, as the historical runner did).
        if len({task.triple for task in tasks}) != len(tasks):
            raise ReproError(
                "campaign design contains duplicate (config, replicate, "
                "scheduler) triples: configuration names and scheduler keys "
                "must each be unique when checkpointing"
            )
        # Imported here: experiments.io imports RunRecord from this module.
        from repro.experiments.io import CampaignCheckpoint

        ckpt = (
            checkpoint
            if isinstance(checkpoint, CampaignCheckpoint)
            else CampaignCheckpoint(checkpoint)
        )
        meta = campaign_meta(
            configs, scheduler_keys, replicates, base_seed, scheduler_options
        )
        if plan is not None:
            meta["shard"] = plan.meta_entry()
        # A file holding nothing restorable (missing, empty, or a header
        # truncated by a kill) is started over; only a populated journal
        # demands the explicit resume opt-in.
        if resume:
            restored = ckpt.load(expect_meta=meta)  # {} when nothing restorable
        elif not ckpt.effectively_empty():
            raise ReproError(
                f"checkpoint {ckpt.path} already exists; pass resume=True "
                "(CLI: --resume) to continue it, or remove the file"
            )
    elif resume:
        raise ReproError("resume=True requires a checkpoint")

    run = _CampaignRun(tasks, ckpt, progress)
    pending: list[int] = []
    for i, task in enumerate(tasks):
        record = restored.get(task.triple)
        if record is not None:
            run.restore(i, record)
        else:
            pending.append(i)

    if ckpt is not None:
        if pending or ckpt.effectively_empty():
            # A fresh journal gets its header even when there is nothing to
            # run (an empty shard leg must still leave a mergeable journal
            # accounting for its slice).
            ckpt.open_append(meta)
        else:
            # The journal is already complete: nothing will be appended, so
            # leave the file untouched (callers detect the no-op through the
            # absence of progress events and report "nothing to do").
            run.checkpoint = None

    try:
        if n_workers <= 1:
            try:
                if dispatch == "group":
                    for indices in _group_pending(tasks, pending):
                        first = tasks[indices[0]]
                        packed, compute_seconds, pack_seconds = _run_task_group(
                            first.config,
                            first.replicate,
                            first.seed,
                            tuple(tasks[i].scheduler_key for i in indices),
                            scheduler_options,
                        )
                        run.finish_group(indices, packed, compute_seconds, pack_seconds)
                else:
                    for i in pending:
                        task = tasks[i]
                        run.finish(
                            i,
                            _run_task(
                                task.config, task.replicate, task.scheduler_key,
                                task.seed, scheduler_options,
                            ),
                        )
            finally:
                # Pool workers die with the pool; the serial path runs in the
                # caller's process, so drop the cached instances and live
                # solver models instead of pinning them until process exit.
                if _WORKER is not None:
                    _WORKER.close()
        elif pending:  # a fully-restored resume never pays for a pool
            window = (
                max_in_flight
                if max_in_flight is not None
                else n_workers * _IN_FLIGHT_PER_WORKER
            )
            _run_pooled(run, pending, n_workers, scheduler_options, window, dispatch)
    finally:
        if ckpt is not None:
            ckpt.close()
    return run.results()


def _group_pending(
    tasks: Sequence[CampaignTask], pending: Sequence[int]
) -> list[list[int]]:
    """Contiguous runs of pending indices sharing one (configuration, replicate).

    ``pending`` is in canonical (scheduler-innermost) order, so the not-yet-
    computed tasks of one realized instance are adjacent; after a resume, a
    partially-journaled group simply yields a shorter run covering only its
    missing schedulers.
    """
    groups: list[list[int]] = []
    current_key: tuple[str, int] | None = None
    for index in pending:
        task = tasks[index]
        key = (task.config.name, task.replicate)
        if key != current_key:
            groups.append([])
            current_key = key
        groups[-1].append(index)
    return groups


def _lane_assignments(tasks: Sequence[CampaignTask], n_workers: int) -> list[int]:
    """The worker lane of every task: whole instance groups, dealt round-robin.

    Groups are ``(configuration name, replicate)`` -- one realized instance
    each -- numbered by first appearance over the *full* canonical task list
    and dealt modulo ``n_workers`` (the same rule
    :class:`~repro.experiments.sharding.ShardPlan` uses across shard legs,
    so placement is resume-stable: restored tasks still consume their
    group's position).  Keeping a group whole on one lane is what gives the
    worker's instance cache, backend state and solver bank their hit rate,
    and what makes every bank bucket's history independent of the worker
    count.
    """
    lanes: list[int] = []
    group_lane: dict[tuple[str, int], int] = {}
    for task in tasks:
        group = (task.config.name, task.replicate)
        lane = group_lane.get(group)
        if lane is None:
            lane = len(group_lane) % n_workers
            group_lane[group] = lane
        lanes.append(lane)
    return lanes


def _run_pooled(
    run: _CampaignRun,
    pending: Sequence[int],
    n_workers: int,
    scheduler_options: Mapping[str, Mapping[str, object]] | None,
    max_in_flight: int,
    dispatch: str,
) -> None:
    """Stream ``pending`` dispatch units through per-lane single-worker pools.

    Each lane is a dedicated one-process pool fed in canonical order from
    its own FIFO queue, so a lane's tasks execute exactly in serial order on
    one long-lived worker (replicate affinity).  Under group dispatch a unit
    is a whole (configuration, replicate) group submitted as one
    :func:`_run_task_group` future returning one packed payload; under
    per-task dispatch each unit is a single task.  Submission is windowed
    per lane (bounded memory, and the worker never idles waiting for the
    collector) and collection uses ``wait(FIRST_COMPLETED)`` across all
    lanes, so records are checkpointed and reported the moment their unit
    finishes -- a straggler lane blocks neither the progress stream nor the
    other lanes.

    A lane whose worker process dies (OOM killer, SIGKILL, native crash)
    surfaces as :class:`BrokenProcessPool` on its in-flight futures.  The
    lane is rebuilt: the broken pool is discarded, every unit that was in
    flight on it is requeued at the front of the lane's FIFO in canonical
    order, and a fresh single-process pool takes over.  Results are
    unaffected -- units are deterministic in the replicate seed and the
    bank only ever reuses exact optima -- so recovery preserves the
    any-worker-count bit-identity invariant; each unit gets at most
    ``_MAX_UNIT_RETRIES`` fresh-worker re-runs before the campaign aborts
    with the poisonous unit named.
    """
    tasks = run.tasks
    lanes = _lane_assignments(tasks, n_workers)
    if dispatch == "group":
        # Every index of a group shares its lane by construction (lanes are
        # dealt per (configuration, replicate) group).
        units = _group_pending(tasks, pending)
    else:
        units = [[index] for index in pending]
    queues: list[deque[list[int]]] = [deque() for _ in range(n_workers)]
    for unit in units:
        queues[lanes[unit[0]]].append(unit)
    window = max(1, max_in_flight // n_workers)
    stage_seconds = run.stage_seconds

    pools: dict[int, ProcessPoolExecutor] = {}
    in_flight: dict[object, list[int]] = {}
    try:

        def submit_next(lane: int) -> None:
            queue = queues[lane]
            if not queue:
                return
            unit = queue.popleft()
            first = tasks[unit[0]]
            pool = pools.get(lane)
            if pool is None:
                # Lazily created: an empty lane (fewer pending groups than
                # workers, or a mostly-restored resume) costs no process.
                pool = ProcessPoolExecutor(max_workers=1, initializer=_init_worker)
                pools[lane] = pool
            t_submit = time.perf_counter()
            if dispatch == "group":
                future = pool.submit(
                    _run_task_group, first.config, first.replicate, first.seed,
                    tuple(tasks[index].scheduler_key for index in unit),
                    scheduler_options,
                )
            else:
                future = pool.submit(
                    _run_task, first.config, first.replicate, first.scheduler_key,
                    first.seed, scheduler_options,
                )
            stage_seconds["dispatch"] += time.perf_counter() - t_submit
            in_flight[future] = unit

        retries: dict[int, int] = {}

        def recover_lane(lane: int, unit: list[int]) -> None:
            """Rebuild a lane whose worker died; requeue its in-flight units."""
            stranded = [unit]
            for future in [f for f, u in in_flight.items() if lanes[u[0]] == lane]:
                stranded.append(in_flight.pop(future))
            stranded.sort(key=lambda u: u[0])
            for retried in stranded:
                count = retries.get(retried[0], 0) + 1
                if count > _MAX_UNIT_RETRIES:
                    first = tasks[retried[0]]
                    raise ReproError(
                        f"campaign unit {first.triple} crashed its worker "
                        f"{count} times; aborting (raise _MAX_UNIT_RETRIES "
                        "or investigate the instance)"
                    )
                retries[retried[0]] = count
            queues[lane].extendleft(reversed(stranded))
            broken = pools.pop(lane, None)
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)
            for _ in range(window):
                submit_next(lane)

        for lane in range(n_workers):
            for _ in range(window):
                submit_next(lane)
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                unit = in_flight.pop(future, None)
                if unit is None:
                    continue  # already requeued by a lane recovery this round
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    recover_lane(lanes[unit[0]], unit)
                    continue
                submit_next(lanes[unit[0]])
                if dispatch == "group":
                    packed, compute_seconds, pack_seconds = payload
                    run.finish_group(unit, packed, compute_seconds, pack_seconds)
                else:
                    run.finish(unit[0], payload)
    finally:
        for pool in pools.values():
            pool.shutdown(wait=True, cancel_futures=True)
