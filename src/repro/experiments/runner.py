"""Experiment runner: simulate heuristics over randomized configurations.

The runner realizes, for each :class:`~repro.experiments.config.ExperimentConfig`
and each replicate, a random instance (platform + workload), runs every
requested scheduler on it, and records the raw metrics.  Replicates can be
distributed over a process pool (`n_workers > 1`); each worker regenerates
its instance from the configuration and a derived seed, so nothing heavy is
pickled and results are reproducible regardless of the degree of parallelism.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.schedulers.registry import make_scheduler, paper_schedulers
from repro.simulation.engine import simulate
from repro.utils.seeding import derive_seed
from repro.workload.generator import generate_instance

__all__ = ["RunRecord", "ExperimentResults", "run_configuration", "run_campaign"]

#: Default scheduler set: the paper's Table 1 strategies minus Bender98 (whose
#: overhead restricted it to the smallest platforms even in the paper).
DEFAULT_SCHEDULERS: tuple[str, ...] = tuple(paper_schedulers(include_bender98=False))


@dataclass(frozen=True)
class RunRecord:
    """Raw metrics of one (configuration, replicate, scheduler) run."""

    config: str
    replicate: int
    scheduler: str
    n_jobs: int
    n_clusters: int
    n_databanks: int
    availability: float
    density: float
    max_stretch: float
    sum_stretch: float
    max_flow: float
    sum_flow: float
    makespan: float
    scheduler_time: float
    failed: bool = False

    def as_dict(self) -> dict[str, object]:
        return asdict(self)


class ExperimentResults:
    """A flat collection of :class:`RunRecord` with filtering helpers."""

    def __init__(self, records: Iterable[RunRecord] = ()):
        self.records: list[RunRecord] = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self.records.extend(records)

    def schedulers(self) -> list[str]:
        """Scheduler names present, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.scheduler, None)
        return list(seen)

    def filter(self, predicate: Callable[[RunRecord], bool]) -> "ExperimentResults":
        """A new result set containing the records matching ``predicate``."""
        return ExperimentResults(r for r in self.records if predicate(r))

    def by_sites(self, n_clusters: int) -> "ExperimentResults":
        return self.filter(lambda r: r.n_clusters == n_clusters)

    def by_databases(self, n_databanks: int) -> "ExperimentResults":
        return self.filter(lambda r: r.n_databanks == n_databanks)

    def by_availability(self, availability: float) -> "ExperimentResults":
        return self.filter(lambda r: math.isclose(r.availability, availability))

    def by_density(self, density: float) -> "ExperimentResults":
        return self.filter(lambda r: math.isclose(r.density, density))

    def instances(self) -> list[tuple[str, int]]:
        """All (configuration, replicate) pairs present."""
        seen: dict[tuple[str, int], None] = {}
        for record in self.records:
            seen.setdefault((record.config, record.replicate), None)
        return list(seen)


def _run_single_replicate(
    config: ExperimentConfig,
    replicate: int,
    scheduler_keys: Sequence[str],
    seed: int,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
) -> list[RunRecord]:
    """Worker body: generate one instance, run every scheduler on it."""
    instance = generate_instance(
        config.platform_spec(), config.workload_spec(), rng=seed
    )
    records: list[RunRecord] = []
    for key in scheduler_keys:
        # Configuration-level replanning knobs first, then explicit per-key
        # options so callers can still override them.
        options = config.scheduler_options_for(key)
        options.update((scheduler_options or {}).get(key, {}))
        scheduler = make_scheduler(key, **options)
        failed = False
        try:
            result = simulate(instance, scheduler)
            metrics = result.report()
            values = dict(
                max_stretch=metrics.max_stretch,
                sum_stretch=metrics.sum_stretch,
                max_flow=metrics.max_flow,
                sum_flow=metrics.sum_flow,
                makespan=metrics.makespan,
                scheduler_time=result.scheduler_time,
            )
        except ReproError:
            # A scheduler failure (e.g. an LP numerical breakdown on a corner
            # case) is recorded instead of aborting the whole campaign.
            failed = True
            values = dict(
                max_stretch=math.nan,
                sum_stretch=math.nan,
                max_flow=math.nan,
                sum_flow=math.nan,
                makespan=math.nan,
                scheduler_time=math.nan,
            )
        records.append(
            RunRecord(
                config=config.name,
                replicate=replicate,
                scheduler=scheduler.name,
                n_jobs=instance.n_jobs,
                n_clusters=config.n_clusters,
                n_databanks=config.n_databanks,
                availability=config.availability,
                density=config.density,
                failed=failed,
                **values,
            )
        )
    return records


def run_configuration(
    config: ExperimentConfig,
    *,
    scheduler_keys: Sequence[str] = DEFAULT_SCHEDULERS,
    replicates: int = 5,
    base_seed: int = 2006,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
) -> ExperimentResults:
    """Run one configuration for the requested number of replicates (serial)."""
    results = ExperimentResults()
    for replicate in range(replicates):
        seed = derive_seed(base_seed, config.name, replicate)
        results.extend(
            _run_single_replicate(config, replicate, scheduler_keys, seed, scheduler_options)
        )
    return results


def run_campaign(
    configs: Sequence[ExperimentConfig],
    *,
    scheduler_keys: Sequence[str] = DEFAULT_SCHEDULERS,
    replicates: int = 5,
    base_seed: int = 2006,
    n_workers: int = 1,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResults:
    """Run a whole campaign (all configurations x replicates x schedulers).

    Parameters
    ----------
    configs:
        The experimental design (e.g. :func:`paper_configurations`).
    scheduler_keys:
        Registry keys of the strategies to evaluate.
    replicates:
        Number of random instances per configuration.
    base_seed:
        Root of the seed derivation; the same (configuration, replicate)
        always sees the same instance.
    n_workers:
        Number of worker processes.  ``1`` (default) runs everything in the
        calling process; larger values distribute (configuration, replicate)
        pairs over a :class:`concurrent.futures.ProcessPoolExecutor`.
    scheduler_options:
        Optional per-scheduler-key constructor options (e.g.
        ``{"bender98": {"max_jobs_per_resolution": 30}}``).
    progress:
        Optional callback invoked with a short message after each completed
        (configuration, replicate) pair.
    """
    tasks = []
    for config in configs:
        for replicate in range(replicates):
            seed = derive_seed(base_seed, config.name, replicate)
            tasks.append((config, replicate, seed))

    results = ExperimentResults()
    if n_workers <= 1:
        for config, replicate, seed in tasks:
            records = _run_single_replicate(
                config, replicate, scheduler_keys, seed, scheduler_options
            )
            results.extend(records)
            if progress is not None:
                progress(f"{config.name} replicate {replicate} done")
        return results

    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(
                _run_single_replicate, config, replicate, tuple(scheduler_keys), seed,
                scheduler_options,
            )
            for config, replicate, seed in tasks
        ]
        for (config, replicate, _), future in zip(tasks, futures):
            results.extend(future.result())
            if progress is not None:
                progress(f"{config.name} replicate {replicate} done")
    return results
