"""The paper's experimental campaign (Section 5).

* :mod:`repro.experiments.config` -- experiment configurations: the 162-point
  factorial design of Section 5.3 and the density sweep of Section 5.2.
* :mod:`repro.experiments.runner` -- the campaign execution engine: streams
  (configuration, replicate, scheduler) tasks over long-lived worker
  processes (per-worker instance cache + resident solver backend), with
  progress/ETA reporting and checkpoint/resume.
* :mod:`repro.experiments.ab` -- the campaign-scale solver-backend A/B
  harness (the equivalence gate behind the ``auto`` backend default).
* :mod:`repro.experiments.statistics` -- per-instance normalization
  (degradation w.r.t. the best heuristic) and mean/SD/max aggregation.
* :mod:`repro.experiments.tables` -- regenerates Tables 1-16.
* :mod:`repro.experiments.figures` -- regenerates Figures 3(a) and 3(b).
* :mod:`repro.experiments.overhead` -- the scheduling-overhead comparison of
  Section 5.3.
* :mod:`repro.experiments.io` -- CSV/JSON persistence of result records and
  the streaming JSONL campaign checkpoints.
* :mod:`repro.experiments.sharding` -- deterministic shard plans: split the
  (configuration, replicate, scheduler) design into ``i/N`` slices that
  independent jobs (CI matrix legs) run with their own journals.
* :mod:`repro.experiments.merge` -- the inverse: union N shard journals
  into one validated record set (exactly-once coverage, conflict and gap
  detection) and regenerate Tables 1-16 plus ``CAMPAIGN_summary.json``.
"""

from repro.experiments.config import (
    ExperimentConfig,
    figure3_configurations,
    paper_configurations,
    small_configurations,
)
from repro.experiments.runner import (
    CampaignProgress,
    CampaignTask,
    ExperimentResults,
    RunRecord,
    campaign_meta,
    campaign_tasks,
    run_campaign,
    run_configuration,
)
from repro.experiments.sharding import ShardPlan, parse_shard_spec
from repro.experiments.merge import (
    JournalLeg,
    MergeReport,
    generate_campaign_report,
    merge_journals,
    write_merged_journal,
)
from repro.experiments.ab import BackendABReport, compare_record_sets, run_backend_ab
from repro.experiments.statistics import (
    AggregateRow,
    DegradationRecord,
    compute_degradations,
    summarize,
)
from repro.experiments.tables import (
    render_aggregate_table,
    table1,
    tables_by_availability,
    tables_by_databases,
    tables_by_density,
    tables_by_sites,
)
from repro.experiments.figures import Figure3Point, figure3a, figure3b
from repro.experiments.overhead import OverheadRecord, scheduling_overhead
from repro.experiments.io import (
    CampaignCheckpoint,
    load_records_csv,
    load_records_json,
    save_records_csv,
    save_records_json,
)

__all__ = [
    "ExperimentConfig",
    "paper_configurations",
    "figure3_configurations",
    "small_configurations",
    "RunRecord",
    "ExperimentResults",
    "CampaignTask",
    "CampaignProgress",
    "campaign_tasks",
    "campaign_meta",
    "run_configuration",
    "run_campaign",
    "ShardPlan",
    "parse_shard_spec",
    "JournalLeg",
    "MergeReport",
    "merge_journals",
    "write_merged_journal",
    "generate_campaign_report",
    "BackendABReport",
    "compare_record_sets",
    "run_backend_ab",
    "DegradationRecord",
    "AggregateRow",
    "compute_degradations",
    "summarize",
    "table1",
    "tables_by_sites",
    "tables_by_density",
    "tables_by_databases",
    "tables_by_availability",
    "render_aggregate_table",
    "Figure3Point",
    "figure3a",
    "figure3b",
    "OverheadRecord",
    "scheduling_overhead",
    "CampaignCheckpoint",
    "save_records_csv",
    "save_records_json",
    "load_records_csv",
    "load_records_json",
]
