"""Checkpoint-journal merging and the campaign ``report`` stage.

The inverse of :mod:`repro.experiments.sharding`: N shard legs each leave a
:class:`~repro.experiments.io.CampaignCheckpoint` JSONL journal, and
:func:`merge_journals` unions them back into one validated record set --

* every journal must carry the *same full-design header* (seed, replicates,
  scheduler keys, configurations, resolved backends); journals from
  different campaigns are rejected, never silently mixed;
* a journal claiming shard ``i/N`` may only contain triples that plan
  actually owns (a record outside its slice means the journal was produced
  by a different partition and the exactly-once accounting is void);
* the same (config, replicate, scheduler) triple journaled twice with the
  *same* result (timing measurements aside) is a benign duplicate (e.g. an
  overlapping re-run of a leg) and is counted; the same triple with a
  *different* result is a hard error -- two jobs disagreeing on a
  deterministic computation is corruption, not noise;
* triples of the design missing from every journal are reported as gaps,
  grouped by the shard that owns them, so an interrupted campaign knows
  exactly which legs to re-run with ``--resume``.

The ``report`` stage (:func:`generate_campaign_report`) feeds the merged
:class:`~repro.experiments.runner.ExperimentResults` through
:mod:`repro.experiments.tables` to regenerate Tables 1-16 and writes a
machine-readable ``CAMPAIGN_summary.json`` next to them -- the canonical
artifact of a CI-scale campaign run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.core.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.io import CampaignCheckpoint, save_records_json
from repro.experiments.runner import (
    CampaignTask,
    ExperimentResults,
    RunRecord,
    campaign_tasks,
)
from repro.experiments.sharding import ShardPlan
from repro.experiments.statistics import compute_degradations, summarize
from repro.experiments.tables import PAPER_ROW_ORDER, breakdown_tables, table1

__all__ = [
    "JournalLeg",
    "MergeReport",
    "design_tasks_from_meta",
    "merge_journals",
    "write_merged_journal",
    "generate_campaign_report",
]

Triple = tuple[str, int, str]


def design_tasks_from_meta(meta: dict[str, object]) -> list[CampaignTask]:
    """Rebuild the full canonical task list from a journal header.

    The header records the complete design (configuration dicts, scheduler
    keys, replicates, base seed), so the expected triple set -- and each
    shard's slice of it -- is recomputed rather than trusted from the
    journals themselves.
    """
    try:
        configs = [ExperimentConfig(**values) for values in meta["configs"]]
        return campaign_tasks(
            configs,
            tuple(meta["scheduler_keys"]),
            int(meta["replicates"]),
            int(meta["base_seed"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(
            f"checkpoint header does not describe a campaign design: {exc}"
        ) from None


def _base_meta(meta: dict[str, object]) -> dict[str, object]:
    """The campaign identity of a header, with the per-leg shard entry stripped."""
    return {key: value for key, value in meta.items() if key != "shard"}


@dataclass(frozen=True)
class JournalLeg:
    """What one merged journal contributed."""

    path: Path
    shard: ShardPlan | None  #: None for an unsharded (serial) journal.
    n_entries: int  #: Task lines read (including duplicates).


@dataclass
class MergeReport:
    """Outcome of :func:`merge_journals` over N shard journals."""

    meta: dict[str, object]  #: Shared full-design header (shard-stripped).
    legs: list[JournalLeg]
    results: ExperimentResults  #: Merged records in canonical task order.
    n_expected: int
    n_duplicates: int  #: Benign duplicates (same triple, same result).
    missing: list[Triple] = field(default_factory=list)
    #: Gap ownership: shard spec -> number of its triples missing (only
    #: populated when the journals are sharded).
    missing_by_shard: dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every design triple is covered exactly once."""
        return not self.missing

    def summary(self) -> dict[str, object]:
        """Machine-readable coverage summary (embedded in CAMPAIGN_summary.json)."""
        return {
            "n_journals": len(self.legs),
            "shards": [leg.shard.spec if leg.shard else None for leg in self.legs],
            "n_expected": self.n_expected,
            "n_records": len(self.results),
            "n_duplicates": self.n_duplicates,
            "n_missing": len(self.missing),
            "missing_by_shard": dict(self.missing_by_shard),
            "complete": self.complete,
        }

    def render(self) -> str:
        """Human-readable merge report (printed by the ``merge`` subcommand)."""
        design = self.meta
        lines = [
            f"merged {len(self.legs)} journal(s): "
            f"{len(self.results)} unique records, "
            f"{self.n_duplicates} benign duplicate(s)",
            f"  design: {len(design['configs'])} configurations x "
            f"{design['replicates']} replicates x "
            f"{len(design['scheduler_keys'])} schedulers = "
            f"{self.n_expected} records expected",
        ]
        for leg in self.legs:
            shard = f"shard {leg.shard.spec}" if leg.shard else "unsharded"
            lines.append(f"  {leg.path}: {shard}, {leg.n_entries} entries")
        if self.complete:
            lines.append("  coverage: complete, every triple exactly once")
        else:
            lines.append(f"  coverage: INCOMPLETE, {len(self.missing)} record(s) missing")
            for spec, count in sorted(self.missing_by_shard.items()):
                lines.append(
                    f"    shard {spec}: {count} missing "
                    f"(re-run its leg with --shard {spec} --resume)"
                )
            preview = ", ".join(
                f"{c}/r{r}/{s}" for c, r, s in self.missing[:5]
            )
            suffix = ", ..." if len(self.missing) > 5 else ""
            lines.append(f"    first gaps: {preview}{suffix}")
        return "\n".join(lines)


def merge_journals(paths: Sequence[str | Path]) -> MergeReport:
    """Union N checkpoint journals into one validated record set.

    Raises :class:`ReproError` on any integrity violation: unreadable or
    foreign journals, mismatched shard partitions, out-of-slice records, or
    the same triple journaled with two different results.  Gaps (triples no
    journal covers) are *not* an error here -- the report carries them so a
    partial campaign can be diagnosed and resumed; callers that need full
    coverage check :attr:`MergeReport.complete`.
    """
    if not paths:
        raise ReproError("merge requires at least one checkpoint journal")

    reference: dict[str, object] | None = None
    reference_path: Path | None = None
    legs: list[JournalLeg] = []
    entries_per_leg: list[list[tuple[Triple, RunRecord]]] = []
    shard_count: int | None = None
    for raw in paths:
        path = Path(raw)
        meta, entries = CampaignCheckpoint(path).read_entries()
        base = _base_meta(meta)
        if reference is None:
            reference, reference_path = base, path
        elif base != reference:
            raise ReproError(
                f"cannot merge {path}: its campaign header (seed, design, "
                f"schedulers or backends) differs from {reference_path}"
            )
        shard = (
            ShardPlan.from_meta_entry(meta["shard"]) if "shard" in meta else None
        )
        if shard is not None:
            if shard_count is None:
                shard_count = shard.count
            elif shard.count != shard_count:
                raise ReproError(
                    f"cannot merge {path}: it was sharded {shard.spec} but "
                    f"other journals use a /{shard_count} partition"
                )
        legs.append(JournalLeg(path=path, shard=shard, n_entries=len(entries)))
        entries_per_leg.append(entries)

    assert reference is not None
    tasks = design_tasks_from_meta(reference)
    expected: dict[Triple, int] = {
        task.triple: position for position, task in enumerate(tasks)
    }
    if len(expected) != len(tasks):
        raise ReproError(
            "campaign design contains duplicate (config, replicate, "
            "scheduler) triples; its journals cannot be merged"
        )

    merged: dict[Triple, RunRecord] = {}
    n_duplicates = 0
    for leg, entries in zip(legs, entries_per_leg):
        allowed = leg.shard.selects_triple(tasks) if leg.shard else None
        for triple, record in entries:
            if triple not in expected:
                raise ReproError(
                    f"journal {leg.path} contains {triple!r}, which is not "
                    "part of the campaign design in its own header"
                )
            if allowed is not None and triple not in allowed:
                raise ReproError(
                    f"journal {leg.path} claims shard {leg.shard.spec} but "
                    f"contains {triple!r}, which that plan does not own -- "
                    "the journal was produced by a mismatched sharding plan"
                )
            previous = merged.get(triple)
            if previous is None:
                merged[triple] = record
            elif previous.result_dict() == record.result_dict():
                n_duplicates += 1
            else:
                raise ReproError(
                    f"merge conflict on {triple!r}: {leg.path} journaled a "
                    "different result than an earlier journal (deterministic "
                    "runs may never disagree; one of the journals is corrupt "
                    "or was produced by a different code/solver revision)"
                )

    missing = [task.triple for task in tasks if task.triple not in merged]
    missing_by_shard: dict[str, int] = {}
    if shard_count is not None and missing:
        missing_set = set(missing)
        for plan in ShardPlan(1, shard_count).siblings():
            owned = plan.selects_triple(tasks) & missing_set
            if owned:
                missing_by_shard[plan.spec] = len(owned)

    results = ExperimentResults(
        merged[task.triple] for task in tasks if task.triple in merged
    )
    return MergeReport(
        meta=reference,
        legs=legs,
        results=results,
        n_expected=len(tasks),
        n_duplicates=n_duplicates,
        missing=missing,
        missing_by_shard=missing_by_shard,
    )


def write_merged_journal(report: MergeReport, path: str | Path) -> Path:
    """Write the merged record set as one unsharded checkpoint journal.

    The output carries the shared full-design header (shard entry stripped)
    and the records in canonical task order, so it is indistinguishable from
    the journal of an uninterrupted serial run: ``report`` consumes it, and
    a ``campaign --resume`` pointed at it correctly finds nothing to do.
    An existing non-empty file is never overwritten.
    """
    path = Path(path)
    ckpt = CampaignCheckpoint(path)
    if not ckpt.effectively_empty():
        raise ReproError(
            f"refusing to overwrite existing file {path}; remove it first"
        )
    # The merged results are in canonical task order, so zipping them with
    # the covered slice of the design recovers each record's scheduler *key*
    # (journal lines carry the registry key, not the display name).
    missing = set(report.missing)
    covered = [
        task
        for task in design_tasks_from_meta(report.meta)
        if task.triple not in missing
    ]
    assert len(covered) == len(report.results)
    with ckpt:
        ckpt.open_append(dict(report.meta))
        for task, record in zip(covered, report.results):
            ckpt.append(task.scheduler_key, record)
    return path


def generate_campaign_report(
    results: ExperimentResults,
    output_dir: str | Path,
    *,
    meta: dict[str, object] | None = None,
    coverage: dict[str, object] | None = None,
) -> dict[str, object]:
    """The ``report`` stage: regenerate Tables 1-16 and the campaign summary.

    Writes into ``output_dir``:

    * ``TABLE_01.txt`` -- the aggregate Table 1;
    * ``TABLES_02_16.txt`` -- the per-factor breakdowns (sites, density,
      databases, availability), in the paper's numbering;
    * ``records.json`` -- the merged raw records (strict JSON, re-loadable
      with :func:`~repro.experiments.io.load_records_json`);
    * ``CAMPAIGN_summary.json`` -- the machine-readable summary returned by
      this function: design identity, coverage accounting, and the
      Mean/SD/Max degradation rows of every table.

    Returns the summary dict (also useful without touching the filesystem
    consumers: the benchmark harness embeds it in its baselines).
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    def rows_for(subset: ExperimentResults) -> list[dict[str, object]]:
        return [
            {
                "scheduler": row.scheduler,
                "max_stretch": {
                    "mean": row.max_stretch_mean,
                    "sd": row.max_stretch_sd,
                    "max": row.max_stretch_max,
                },
                "sum_stretch": {
                    "mean": row.sum_stretch_mean,
                    "sd": row.sum_stretch_sd,
                    "max": row.sum_stretch_max,
                },
                "n_instances": row.n_instances,
            }
            for row in summarize(
                compute_degradations(subset), scheduler_order=PAPER_ROW_ORDER
            )
        ]

    breakdowns: dict[str, dict[str, list[dict[str, object]]]] = {}
    for axis, attribute, selector in (
        ("sites", "n_clusters", results.by_sites),
        ("density", "density", results.by_density),
        ("databases", "n_databanks", results.by_databases),
        ("availability", "availability", results.by_availability),
    ):
        values = sorted({getattr(r, attribute) for r in results})
        breakdowns[axis] = {
            f"{value:g}": rows_for(selector(value)) for value in values
        }

    summary: dict[str, object] = {
        "kind": "repro-campaign-summary",
        "version": 1,
        "design": (
            {
                "base_seed": meta.get("base_seed"),
                "replicates": meta.get("replicates"),
                "n_configs": len(meta.get("configs", [])),
                "scheduler_keys": meta.get("scheduler_keys"),
                "resolved_backends": meta.get("resolved_backends"),
            }
            if meta is not None
            else None
        ),
        "coverage": coverage,
        "n_records": len(results),
        "n_failed": sum(1 for r in results if r.failed),
        "table1": rows_for(results),
        "breakdowns": breakdowns,
    }

    (output_dir / "TABLE_01.txt").write_text(table1(results).render() + "\n")
    rendered = [table.render() for table in breakdown_tables(results)]
    (output_dir / "TABLES_02_16.txt").write_text("\n\n".join(rendered) + "\n")
    save_records_json(results, output_dir / "records.json")
    (output_dir / "CAMPAIGN_summary.json").write_text(
        json.dumps(summary, indent=2, allow_nan=False, sort_keys=True) + "\n"
    )
    return summary
