"""Scheduling-overhead comparison (Section 5.3, last paragraph).

The paper reports the wall-clock time spent *inside the scheduler* for a
15-minute workload on 3-cluster platforms: under 0.28 s for the on-line
heuristics, 0.54 s for the off-line algorithm, 0.23 s for Bender02 and
19.76 s for Bender98 (which solves a full off-line optimal problem at every
release date).  This module reproduces the comparison: it runs each strategy
on the same instances and reports the average scheduler time and the number
of scheduling decisions.  Absolute times differ from the paper (pure Python
and scipy's LP solver versus the authors' C implementation) but the ordering
and the orders of magnitude between strategies are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.lp.backends import LPProbeStats
from repro.lp.bank import SolverStateBank
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.utils.seeding import derive_seed
from repro.workload.generator import generate_instance

__all__ = [
    "OverheadRecord",
    "scheduling_overhead",
    "DEFAULT_OVERHEAD_SCHEDULERS",
    "OVERHEAD_TABLE_HEADERS",
]

#: Strategies compared in the paper's overhead experiment.
DEFAULT_OVERHEAD_SCHEDULERS: tuple[str, ...] = (
    "online",
    "online-edf",
    "online-egdf",
    "offline",
    "bender02",
    "bender98",
)


#: Table headers matching :meth:`OverheadRecord.cells` (shared by the CLI
#: ``overhead`` sub-command and ``benchmarks/bench_overhead.py``).
OVERHEAD_TABLE_HEADERS: tuple[str, ...] = (
    "Scheduler",
    "mean sched time (s)",
    "max sched time (s)",
    "mean decisions",
    "LP solved",
    "LP skipped",
    "basis reused",
    "bank hits",
    "primal reused",
    "p50 replan (s)",
    "p95 replan (s)",
    "spec hit rate",
    "instances",
)


@dataclass(frozen=True)
class OverheadRecord:
    """Average scheduling cost of one strategy over the overhead experiment.

    ``mean_lp_solved`` / ``mean_lp_skipped`` / ``mean_basis_reused`` carry
    the per-run probe-elimination histogram of the certificate-guided
    milestone search (all zero for LP-free strategies): LP probes actually
    solved, milestone candidates eliminated without a solve, and solved
    probes served from warm persistent-solver state.  ``mean_bank_hits`` /
    ``mean_primal_reused`` count warm lookups in the cross-run solver-state
    bank and whole LP solutions answered from a carried primal (both zero
    unless a bank is threaded in via ``state_bank=True``).
    ``p50_replan_latency`` / ``p95_replan_latency`` are nearest-rank
    percentiles of the per-replan wall-clock (arrival to refreshed plan),
    pooled over the strategy's runs; ``speculation_hit_rate`` is the
    fraction of consumed speculative pre-solves whose prediction matched
    the live replan (0 with speculation off or for LP-free strategies).
    """

    scheduler: str
    mean_scheduler_time: float
    max_scheduler_time: float
    mean_decisions: float
    n_instances: int
    mean_lp_solved: float = 0.0
    mean_lp_skipped: float = 0.0
    mean_basis_reused: float = 0.0
    mean_bank_hits: float = 0.0
    mean_primal_reused: float = 0.0
    p50_replan_latency: float = 0.0
    p95_replan_latency: float = 0.0
    speculation_hit_rate: float = 0.0

    def cells(self) -> list[object]:
        return [
            self.scheduler,
            self.mean_scheduler_time,
            self.max_scheduler_time,
            self.mean_decisions,
            self.mean_lp_solved,
            self.mean_lp_skipped,
            self.mean_basis_reused,
            self.mean_bank_hits,
            self.mean_primal_reused,
            self.p50_replan_latency,
            self.p95_replan_latency,
            self.speculation_hit_rate,
            self.n_instances,
        ]


def scheduling_overhead(
    *,
    scheduler_keys: Sequence[str] = DEFAULT_OVERHEAD_SCHEDULERS,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
    n_clusters: int = 3,
    n_databanks: int = 3,
    availability: float = 0.6,
    density: float = 1.0,
    window: float = 60.0,
    max_jobs: int | None = 40,
    replicates: int = 3,
    base_seed: int = 53,
    replan_policy: str = "on-arrival",
    incremental_lp: bool = True,
    solver_backend: str = "scipy",
    state_bank: bool = False,
    speculation: bool = False,
) -> list[OverheadRecord]:
    """Measure the scheduler-side wall-clock cost of each strategy.

    Defaults mirror the paper's setup (3-cluster platforms) with a reduced
    submission window so that Bender98 remains tractable; the window and job
    cap are configurable for larger runs.  ``replan_policy``,
    ``incremental_lp`` and ``solver_backend`` select the replanning pipeline
    of the on-line LP heuristics, so the overhead tables can compare
    cadences, the incremental vs from-scratch LP paths, and the scipy vs
    persistent-HiGHS solver backends.

    ``solver_backend`` stays pinned to ``"scipy"`` here even though the
    campaign surface defaults to ``"auto"``: the overhead regression gates
    in ``benchmarks/bench_overhead.py`` track the historical one-shot-scipy
    reference path so their trajectory stays comparable across PRs and
    environments with/without HiGHS bindings (the CLI threads the session's
    ``--solver-backend`` through explicitly).

    ``state_bank=True`` threads one live :class:`SolverStateBank` per
    replicate across all strategies of that replicate -- the same
    affinity the campaign runner realizes per (config, replicate) group --
    so the table's "bank hits" / "primal reused" columns show the
    cross-run reuse effect.  The default ``False`` keeps the historical
    bank-less measurement.
    """
    config = ExperimentConfig(
        name="overhead",
        n_clusters=n_clusters,
        n_databanks=n_databanks,
        availability=availability,
        density=density,
        window=window,
        max_jobs=max_jobs,
        replan_policy=replan_policy,
        incremental_lp=incremental_lp,
        solver_backend=solver_backend,
        speculation=speculation,
    )
    times: dict[str, list[float]] = {key: [] for key in scheduler_keys}
    decisions: dict[str, list[int]] = {key: [] for key in scheduler_keys}
    lp_solved: dict[str, list[int]] = {key: [] for key in scheduler_keys}
    lp_skipped: dict[str, list[int]] = {key: [] for key in scheduler_keys}
    lp_reused: dict[str, list[int]] = {key: [] for key in scheduler_keys}
    bank_hits: dict[str, list[int]] = {key: [] for key in scheduler_keys}
    primal_reused: dict[str, list[int]] = {key: [] for key in scheduler_keys}
    replan_latencies: dict[str, list[float]] = {key: [] for key in scheduler_keys}
    spec_hits: dict[str, int] = {key: 0 for key in scheduler_keys}
    spec_misses: dict[str, int] = {key: 0 for key in scheduler_keys}
    names: dict[str, str] = {}
    for replicate in range(replicates):
        seed = derive_seed(base_seed, "overhead", replicate)
        instance = generate_instance(
            config.platform_spec(), config.workload_spec(), rng=seed
        )
        bank = SolverStateBank() if state_bank else None
        for key in scheduler_keys:
            options = config.scheduler_options_for(key)
            options.update((scheduler_options or {}).get(key, {}))
            if bank is not None and isinstance(options.get("state_bank"), bool):
                options["state_bank"] = bank if options["state_bank"] else None
            scheduler = make_scheduler(key, **options)
            names.setdefault(key, scheduler.name)
            try:
                result = simulate(instance, scheduler)
            except ReproError:
                continue
            times[key].append(result.scheduler_time)
            decisions[key].append(result.n_decisions)
            lp_solved[key].append(result.lp_probes.n_probes)
            lp_skipped[key].append(result.lp_probes.n_certificate_skipped)
            lp_reused[key].append(result.lp_probes.n_basis_reused)
            bank_hits[key].append(result.lp_probes.n_bank_hits)
            primal_reused[key].append(result.lp_probes.n_primal_reuses)
            replan_latencies[key].extend(result.lp_probes.replan_latencies)
            spec_hits[key] += result.lp_probes.n_spec_hits
            spec_misses[key] += result.lp_probes.n_spec_misses

    records: list[OverheadRecord] = []
    for key in scheduler_keys:
        if not times[key]:
            continue
        # The percentile definition (nearest rank) lives on LPProbeStats;
        # pooling the runs' latencies into one stats object reuses it.
        pooled = LPProbeStats(replan_latencies=replan_latencies[key])
        n_spec = spec_hits[key] + spec_misses[key]
        records.append(
            OverheadRecord(
                scheduler=names[key],
                mean_scheduler_time=float(np.mean(times[key])),
                max_scheduler_time=float(np.max(times[key])),
                mean_decisions=float(np.mean(decisions[key])),
                n_instances=len(times[key]),
                mean_lp_solved=float(np.mean(lp_solved[key])),
                mean_lp_skipped=float(np.mean(lp_skipped[key])),
                mean_basis_reused=float(np.mean(lp_reused[key])),
                mean_bank_hits=float(np.mean(bank_hits[key])),
                mean_primal_reused=float(np.mean(primal_reused[key])),
                p50_replan_latency=pooled.replan_percentile(50),
                p95_replan_latency=pooled.replan_percentile(95),
                speculation_hit_rate=spec_hits[key] / n_spec if n_spec else 0.0,
            )
        )
    return records
