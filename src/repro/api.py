"""The stable public API of the reproduction: ``repro.api``.

Downstream code -- the examples, the ``repro-stretch`` CLI, notebooks,
external callers -- should program against this module rather than the
internal packages.  The five entry points cover the whole lifecycle:

=================== ============================================= =========================
entry point          what it does                                  returns
=================== ============================================= =========================
:func:`simulate`     one scheduler on one instance                 ``SimulationResult``
:func:`run_campaign` a factorial campaign (parallel, resumable)    ``ExperimentResults``
:func:`merge`        union shard journals, validate coverage       ``MergeReport``
:func:`report`       regenerate Tables 1-16 + summary JSON         :class:`CampaignReport`
:func:`serve`        boot the streaming-arrival scheduler daemon   ``ServiceServer``
=================== ============================================= =========================

Everything here is re-exported from the top-level :mod:`repro` package, and
the signatures are covenants: new keyword-only parameters may appear, but
existing ones keep their meaning and defaults across versions.  The result
objects (:class:`~repro.simulation.result.SimulationResult`,
:class:`~repro.experiments.runner.ExperimentResults`,
:class:`~repro.experiments.merge.MergeReport`, :class:`CampaignReport`,
:class:`~repro.service.http.ServiceServer`) are part of the same covenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.core.instance import Instance
from repro.core.platform import Platform
from repro.experiments.config import ExperimentConfig
from repro.experiments.merge import (
    MergeReport,
    generate_campaign_report,
    merge_journals,
    write_merged_journal,
)
from repro.experiments.runner import DEFAULT_SCHEDULERS, ExperimentResults
from repro.experiments.runner import run_campaign as _run_campaign
from repro.options import DispatchMode, OnOff, SolverBackendChoice
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate as _simulate
from repro.simulation.result import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedulers.base import Scheduler
    from repro.service.daemon import ServiceConfig
    from repro.service.http import ServiceServer

__all__ = [
    "simulate",
    "run_campaign",
    "merge",
    "report",
    "serve",
    "CampaignReport",
    "SimulationResult",
    "ExperimentResults",
    "MergeReport",
    "ExperimentConfig",
]


def simulate(
    instance: Instance,
    scheduler: "Scheduler | str" = "swrpt",
    *,
    scheduler_options: Mapping[str, Any] | None = None,
    record_events: bool = False,
    faults: "object | None" = None,
) -> SimulationResult:
    """Run one scheduler on one instance and return the full result.

    Parameters
    ----------
    instance:
        The :class:`~repro.core.instance.Instance` to schedule (jobs +
        platform).
    scheduler:
        Either a registry key (``"swrpt"``, ``"online"``, ... -- see
        :func:`repro.schedulers.available_schedulers`) or an already
        constructed :class:`~repro.schedulers.base.Scheduler`.
    scheduler_options:
        Constructor options forwarded to the registry factory when
        ``scheduler`` is a key (e.g. ``{"policy": "batched:5"}`` for the
        on-line LP heuristics); rejected when a scheduler instance is
        passed.
    record_events:
        Keep the arrival/decision/completion trace on the result.
    faults:
        Optional machine-availability timeline: a
        :class:`~repro.simulation.faults.FaultTimeline`, a path to a saved
        JSONL fault trace, or a sequence of ``(machine, down, up)``
        triples.  ``None`` (default) is the fault-free engine,
        bit-identical to every previous release.

    Returns
    -------
    SimulationResult
        Realized schedule, completion dates, metric report
        (``result.report()``), scheduler wall-clock and LP probe
        statistics; jobs stranded by permanent outages are in
        ``result.parked``.
    """
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler, **dict(scheduler_options or {}))
    elif scheduler_options:
        raise TypeError(
            "scheduler_options only applies when 'scheduler' is a registry key"
        )
    if faults is not None:
        from repro.simulation.faults import _coerce_timeline

        faults = _coerce_timeline(faults)
    return _simulate(instance, scheduler, record_events=record_events, faults=faults)


def run_campaign(
    configs: Sequence[ExperimentConfig],
    *,
    scheduler_keys: Sequence[str] = DEFAULT_SCHEDULERS,
    replicates: int = 5,
    base_seed: int = 2006,
    n_workers: int = 1,
    scheduler_options: Mapping[str, Mapping[str, object]] | None = None,
    progress: Callable[..., None] | None = None,
    checkpoint: "str | Path | None" = None,
    resume: bool = False,
    max_in_flight: int | None = None,
    shard: "str | None" = None,
    dispatch: "DispatchMode | str" = DispatchMode.GROUP,
) -> ExperimentResults:
    """Run a whole campaign: every configuration x replicate x scheduler.

    The execution engine streams tasks over ``n_workers`` long-lived worker
    processes (instance cache, resident solver backend and cross-run
    solver-state bank per worker; results are bit-identical at any worker
    count), journals completed records to ``checkpoint`` and can ``resume``
    a killed run.  ``shard="i/N"`` restricts the run to one deterministic
    slice of the design so N independent jobs can split a campaign; their
    journals are reunited by :func:`merge`.

    See :func:`repro.experiments.runner.run_campaign` for the full
    parameter reference; this facade forwards verbatim.

    Returns
    -------
    ExperimentResults
        The record set: per-run metrics plus aggregation/table helpers.
    """
    return _run_campaign(
        configs,
        scheduler_keys=scheduler_keys,
        replicates=replicates,
        base_seed=base_seed,
        n_workers=n_workers,
        scheduler_options=scheduler_options,
        progress=progress,
        checkpoint=checkpoint,
        resume=resume,
        max_in_flight=max_in_flight,
        shard=shard,
        dispatch=dispatch,
    )


def merge(
    journals: Sequence[str | Path], *, output: "str | Path | None" = None
) -> MergeReport:
    """Union N campaign shard journals into one validated record set.

    Validates exactly-once coverage (duplicates and conflicting records are
    hard errors), reports gaps, and -- when ``output`` is given -- writes
    the merged set as a single unsharded journal consumable by
    :func:`report` and by ``run_campaign(..., resume=True)``.

    Returns
    -------
    MergeReport
        ``report.results`` (the merged ``ExperimentResults``),
        ``report.complete``, ``report.missing`` and a printable
        ``report.render()``.
    """
    merged = merge_journals(list(journals))
    if output is not None:
        write_merged_journal(merged, output)
    return merged


@dataclass
class CampaignReport:
    """Outcome of the :func:`report` stage.

    ``summary`` is the machine-readable ``CAMPAIGN_summary.json`` content
    (design identity, coverage, per-table degradation rows); ``output_dir``
    holds the written artifacts (``TABLE_01.txt``, ``TABLES_02_16.txt``,
    ``records.json``, ``CAMPAIGN_summary.json``); ``merged`` carries the
    underlying record set for further analysis.
    """

    summary: dict[str, Any]
    output_dir: Path
    merged: MergeReport = field(repr=False)


def report(
    journal: "str | Path | MergeReport",
    output_dir: "str | Path" = "campaign-report",
    *,
    allow_gaps: bool = False,
) -> CampaignReport:
    """Regenerate Tables 1-16 and the campaign summary from a journal.

    ``journal`` is a complete campaign checkpoint (serial or produced by
    :func:`merge`), or an already-merged :class:`MergeReport` when the
    caller has one in hand.  Raises
    :class:`~repro.core.errors.ReproError` when the record set does not
    cover the full design, unless ``allow_gaps`` is set.

    Returns
    -------
    CampaignReport
        The summary dict, the output directory and the merged record set.
    """
    from repro.core.errors import ReproError

    if isinstance(journal, MergeReport):
        merged = journal
    else:
        merged = merge_journals([Path(journal)])
    if not merged.complete and not allow_gaps:
        raise ReproError(
            f"journal {journal} does not cover the full design "
            f"({len(merged.missing)} triples missing); merge all shard legs "
            "first, or pass allow_gaps=True"
        )
    summary = generate_campaign_report(
        merged.results,
        output_dir,
        meta=merged.meta,
        coverage=merged.summary(),
    )
    return CampaignReport(
        summary=summary, output_dir=Path(output_dir), merged=merged
    )


def serve(
    platform: Platform,
    *,
    scheduler: str = "online",
    replan_policy: str = "on-arrival",
    incremental_lp: bool = True,
    solver_backend: "SolverBackendChoice | str" = SolverBackendChoice.AUTO,
    speculation: "OnOff | bool | str" = OnOff.OFF,
    time_scale: float = 0.0,
    journal: "str | Path | None" = None,
    record_events: bool = False,
    host: str = "127.0.0.1",
    port: int = 0,
    max_pending: int | None = None,
    shed_replan_p99: float | None = None,
    retry_after: float = 1.0,
) -> "ServiceServer":
    """Boot the streaming-arrival scheduler daemon behind its HTTP surface.

    Starts the engine thread (on a fresh
    :class:`~repro.core.instance.LiveInstance` over ``platform``) and an
    HTTP listener serving ``POST /submit``, ``POST /stream`` (a JSONL
    window with per-record error accounting), ``GET /telemetry`` (current
    ``S*``, LP probe histogram, per-databank queue depths, replan-latency
    percentiles), ``GET /healthz`` (accepting/draining/stopped/failed)
    and ``POST /drain``.

    Parameters
    ----------
    platform:
        The machine park the daemon schedules onto.
    scheduler:
        A service-safe registry key
        (:data:`repro.schedulers.registry.SERVICE_SCHEDULERS`); the
        clairvoyant strategies are rejected.
    replan_policy, incremental_lp, solver_backend, speculation:
        The replanning knobs of the on-line LP heuristics, as in
        :class:`~repro.experiments.config.ExperimentConfig`.
    time_scale:
        Virtual seconds per wall-clock second; ``0`` (default) free-runs.
    journal:
        Path receiving the replayable submission trace; replaying it
        through :func:`repro.service.replay_trace` is bit-identical to
        batch :func:`simulate` on the reconstructed instance.
    host, port:
        Bind address; ``port=0`` picks a free port (see ``server.port`` /
        ``server.url``).
    max_pending, shed_replan_p99, retry_after:
        The admission valve (both triggers default off): shed submissions
        with ``503`` + ``Retry-After: retry_after`` once ``max_pending``
        admitted jobs await delivery, or once the live replan-latency p99
        exceeds ``shed_replan_p99`` seconds.

    Returns
    -------
    ServiceServer
        The started server; use it as a context manager, or call
        ``server.shutdown()`` and ``server.daemon.stop()`` when done.
    """
    from repro.service.daemon import SchedulerDaemon, ServiceConfig
    from repro.service.http import ServiceServer

    config = ServiceConfig(
        scheduler=scheduler,
        replan_policy=replan_policy,
        incremental_lp=incremental_lp,
        solver_backend=solver_backend,
        speculation=speculation,
        time_scale=time_scale,
        journal=None if journal is None else str(journal),
        record_events=record_events,
        max_pending=max_pending,
        shed_replan_p99=shed_replan_p99,
        retry_after=retry_after,
    )
    server = ServiceServer(SchedulerDaemon(platform, config), host=host, port=port)
    server.start()
    return server
