"""Machine availability timelines for fault injection.

A :class:`FaultTimeline` is the exogenous description of when machines leave
and rejoin the platform.  It is deliberately *dumb* data: a sorted list of
per-machine DOWN/UP transitions plus a loss model describing what happens to
work that was in flight on a machine when it failed.  The simulation engine
delivers the transitions through the kernel's ``WAKEUP`` event seam (see
``simulation/clock.py``) so that availability changes ride the exact same
batched event path as job arrivals.

Two loss models are supported:

``resume``
    The machine's in-flight work survives the outage (think checkpoint on
    every byte, or a disconnect that merely pauses the CPU).  Remaining work
    is unchanged; the job simply continues elsewhere or waits.

``restart``
    Progress beyond the last checkpoint is lost.  With checkpoint fraction
    ``f`` in ``[0, 1]`` a job that had processed ``p`` units of its size
    ``w`` keeps only ``f * p`` of that progress, i.e. its remaining work is
    reset to ``w - f * p``.  ``f = 0`` is a full restart; ``f = 1`` is
    equivalent to ``resume``.

The on-disk format is JSONL, one *interval* per line::

    {"machine": 3, "down": 12.5, "up": 40.0}
    {"machine": 0, "down": 55.0, "up": null}

``up: null`` (or a missing ``up`` key) means the machine never returns.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.core.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "LOSS_MODELS",
    "FaultEvent",
    "FaultTimeline",
    "apply_loss",
    "load_fault_timeline",
    "save_fault_timeline",
]

#: Supported in-flight work loss models.
LOSS_MODELS = ("resume", "restart")


@dataclass(frozen=True)
class FaultEvent:
    """One availability transition: machine ``machine_id`` goes down or up."""

    time: float
    machine_id: int
    up: bool

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0.0:
            raise ModelError(f"fault transition time must be finite and >= 0, got {self.time}")


def apply_loss(
    remaining: float,
    size: float,
    *,
    loss_model: str = "resume",
    checkpoint_fraction: float = 0.0,
) -> float:
    """Remaining work of a job after the machine processing it failed.

    ``remaining`` is the job's remaining work at the instant of the failure
    and ``size`` its total work.  Under ``resume`` the value is returned
    unchanged; under ``restart`` the uncheckpointed progress is added back.
    """
    if loss_model == "resume":
        return remaining
    if loss_model != "restart":
        raise ModelError(f"unknown loss model {loss_model!r}; expected one of {LOSS_MODELS}")
    processed = max(0.0, size - remaining)
    restored = size - checkpoint_fraction * processed
    # Guard against float drift: never report more work than the job's size
    # nor less than it actually had left.
    return min(size, max(remaining, restored))


class FaultTimeline:
    """A sorted collection of machine availability transitions.

    The timeline is immutable after construction.  An empty timeline is
    falsy, which the engine uses to keep the no-faults fast path bit-identical
    to a fault-unaware run.
    """

    __slots__ = ("_events", "loss_model", "checkpoint_fraction")

    def __init__(
        self,
        events: Iterable[FaultEvent] = (),
        *,
        loss_model: str = "resume",
        checkpoint_fraction: float = 0.0,
    ) -> None:
        if loss_model not in LOSS_MODELS:
            raise ModelError(f"unknown loss model {loss_model!r}; expected one of {LOSS_MODELS}")
        if not (0.0 <= checkpoint_fraction <= 1.0):
            raise ModelError(f"checkpoint_fraction must lie in [0, 1], got {checkpoint_fraction}")
        ordered = sorted(events, key=lambda e: (e.time, e.machine_id, e.up))
        self._events: tuple[FaultEvent, ...] = tuple(ordered)
        self.loss_model = loss_model
        self.checkpoint_fraction = checkpoint_fraction
        self._validate_alternation()

    def _validate_alternation(self) -> None:
        state: dict[int, bool] = {}  # machine -> currently down?
        for event in self._events:
            down_now = state.get(event.machine_id, False)
            if event.up and not down_now:
                raise ModelError(
                    f"machine {event.machine_id} comes UP at t={event.time} without being down"
                )
            if not event.up and down_now:
                raise ModelError(
                    f"machine {event.machine_id} goes DOWN at t={event.time} while already down"
                )
            state[event.machine_id] = not event.up

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self):
        return iter(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultTimeline({len(self._events)} transitions, "
            f"loss_model={self.loss_model!r}, checkpoint_fraction={self.checkpoint_fraction})"
        )

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def machine_ids(self) -> tuple[int, ...]:
        return tuple(sorted({e.machine_id for e in self._events}))

    def restrict_to(self, machine_ids: Iterable[int]) -> "FaultTimeline":
        """Timeline containing only transitions of ``machine_ids``."""
        keep = set(machine_ids)
        return FaultTimeline(
            (e for e in self._events if e.machine_id in keep),
            loss_model=self.loss_model,
            checkpoint_fraction=self.checkpoint_fraction,
        )

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_intervals(
        cls,
        intervals: Iterable[tuple[int, float, float | None]],
        *,
        loss_model: str = "resume",
        checkpoint_fraction: float = 0.0,
    ) -> "FaultTimeline":
        """Build from ``(machine_id, down_time, up_time_or_None)`` triples."""
        events: list[FaultEvent] = []
        for machine_id, down, up in intervals:
            events.append(FaultEvent(time=float(down), machine_id=int(machine_id), up=False))
            if up is not None:
                if up <= down:
                    raise ModelError(
                        f"machine {machine_id} outage must end after it starts "
                        f"(down={down}, up={up})"
                    )
                events.append(FaultEvent(time=float(up), machine_id=int(machine_id), up=True))
        return cls(events, loss_model=loss_model, checkpoint_fraction=checkpoint_fraction)

    def intervals(self) -> list[tuple[int, float, float | None]]:
        """Inverse of :meth:`from_intervals` (open outages get ``None``)."""
        open_down: dict[int, float] = {}
        rows: list[tuple[int, float, float | None]] = []
        for event in self._events:
            if event.up:
                rows.append((event.machine_id, open_down.pop(event.machine_id), event.time))
            else:
                open_down[event.machine_id] = event.time
        for machine_id, down in sorted(open_down.items()):
            rows.append((machine_id, down, None))
        rows.sort(key=lambda r: (r[1], r[0]))
        return rows

    # -- engine-facing queries ---------------------------------------------

    def initial_down(self, start: float = 0.0) -> set[int]:
        """Machines already down at ``start`` (transition at ``start`` excluded)."""
        down: set[int] = set()
        for event in self._events:
            if event.time >= start:
                break
            if event.up:
                down.discard(event.machine_id)
            else:
                down.add(event.machine_id)
        return down

    def transitions_after(self, start: float = 0.0) -> tuple[FaultEvent, ...]:
        """Transitions at or after ``start``, in delivery order."""
        return tuple(e for e in self._events if e.time >= start)


def save_fault_timeline(timeline: FaultTimeline, path: "str | Path") -> None:
    """Write ``timeline`` as JSONL intervals (see module docstring)."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        header = {
            "loss_model": timeline.loss_model,
            "checkpoint_fraction": timeline.checkpoint_fraction,
        }
        handle.write(json.dumps({"fault_trace": header}) + "\n")
        for machine_id, down, up in timeline.intervals():
            handle.write(json.dumps({"machine": machine_id, "down": down, "up": up}) + "\n")


def load_fault_timeline(
    path: "str | Path",
    *,
    loss_model: str | None = None,
    checkpoint_fraction: float | None = None,
) -> FaultTimeline:
    """Read a JSONL fault trace; explicit keyword overrides beat the header."""
    source = Path(path)
    header: Mapping[str, object] = {}
    rows: list[tuple[int, float, float | None]] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ModelError(f"{source}:{line_no}: invalid JSON in fault trace") from exc
            if "fault_trace" in payload:
                header = payload["fault_trace"] or {}
                continue
            try:
                machine = int(payload["machine"])
                down = float(payload["down"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ModelError(
                    f"{source}:{line_no}: fault interval needs 'machine' and 'down'"
                ) from exc
            raw_up = payload.get("up")
            rows.append((machine, down, None if raw_up is None else float(raw_up)))
    model = loss_model if loss_model is not None else str(header.get("loss_model", "resume"))
    fraction = (
        checkpoint_fraction
        if checkpoint_fraction is not None
        else float(header.get("checkpoint_fraction", 0.0))
    )
    return FaultTimeline.from_intervals(rows, loss_model=model, checkpoint_fraction=fraction)


def _coerce_timeline(value: object) -> "FaultTimeline | None":
    """Accept a timeline, a trace path, interval triples, or None."""
    if value is None:
        return None
    if isinstance(value, FaultTimeline):
        return value
    if isinstance(value, (str, Path)):
        return load_fault_timeline(value)
    if isinstance(value, Sequence):
        return FaultTimeline.from_intervals(value)  # type: ignore[arg-type]
    raise ModelError(f"cannot interpret {type(value).__name__} as a fault timeline")
