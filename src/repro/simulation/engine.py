"""The fluid discrete-event simulation engine.

The engine advances simulated time from scheduling decision to scheduling
decision.  A decision is an :class:`~repro.simulation.state.Assignment`
mapping machines to jobs; between decisions each assigned machine is fully
dedicated to its job, so a job's remaining work decreases at the sum of the
speeds of its assigned machines and the next completion date can be computed
in closed form.  Decisions are requested:

* when a job arrives,
* when a job completes,
* when the current assignment's ``valid_until`` horizon is reached (used by
  plan-based schedulers whose plans contain internal breakpoints).

The engine also records the wall-clock time spent inside scheduler callbacks,
which reproduces the scheduling-overhead comparison of Section 5.3.
"""

from __future__ import annotations

import math
import time as _time
from typing import TYPE_CHECKING, Iterable

from repro.core.errors import ModelError, ScheduleError
from repro.core.instance import Instance
from repro.core.schedule import Schedule, WorkSlice
from repro.simulation.events import ArrivalEvent, CompletionEvent, DecisionEvent, SimulationEvent
from repro.simulation.result import SimulationResult
from repro.simulation.state import Assignment, SchedulerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedulers.base import Scheduler

__all__ = ["SimulationEngine", "simulate"]

#: Relative tolerance under which a job's remaining work counts as zero.
_COMPLETION_TOL = 1e-9
#: Number of consecutive zero-length steps tolerated before declaring a
#: scheduler live-lock.
_MAX_STALL = 1000


class SimulationEngine:
    """Runs one scheduler against one instance."""

    def __init__(
        self,
        instance: Instance,
        scheduler: "Scheduler",
        *,
        record_events: bool = False,
    ):
        self.instance = instance
        self.scheduler = scheduler
        self.record_events = record_events
        self.state = SchedulerState(instance)
        self._slices: list[WorkSlice] = []
        self._events: list[SimulationEvent] = []
        self._scheduler_time = 0.0
        self._n_decisions = 0

    # -- public API ---------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate until every job has completed and return the result."""
        instance, state = self.instance, self.state
        pending = list(instance.jobs)  # already sorted by release date
        next_arrival_idx = 0
        n_jobs = len(pending)

        start = _time.perf_counter()
        self._call(self.scheduler.reset, instance)
        self._scheduler_time += _time.perf_counter() - start

        state.time = pending[0].release if pending else 0.0
        stall_count = 0
        # Generous safety bound: every event (arrival, completion, plan
        # breakpoint) should trigger a handful of steps at most.
        max_steps = 1000 + 200 * (n_jobs + 1) * (len(instance.platform) + 1)
        steps = 0

        while True:
            steps += 1
            if steps > max_steps:
                raise ScheduleError(
                    f"simulation exceeded {max_steps} steps; the scheduler "
                    f"({self.scheduler.name}) appears to be live-locked"
                )

            # 1. Release every job whose release date has been reached.
            while (
                next_arrival_idx < n_jobs
                and pending[next_arrival_idx].release <= state.time + 1e-12
            ):
                job = pending[next_arrival_idx]
                next_arrival_idx += 1
                state.release(job)
                if self.record_events:
                    self._events.append(
                        ArrivalEvent(time=state.time, job_id=job.job_id, size=job.size,
                                     databank=job.databank)
                    )
                self._timed(self.scheduler.on_arrival, state, job)

            next_arrival = (
                pending[next_arrival_idx].release if next_arrival_idx < n_jobs else math.inf
            )

            # 2. Termination / idle handling.
            if not state.active:
                if next_arrival_idx >= n_jobs:
                    break
                state.time = next_arrival
                continue

            # 3. Ask the scheduler for an assignment.
            assignment = self._timed(self.scheduler.assign, state)
            if assignment is None:
                assignment = Assignment.idle()
            self._validate_assignment(assignment)
            self._n_decisions += 1
            if self.record_events:
                self._events.append(
                    DecisionEvent(
                        time=state.time,
                        assignment=tuple(sorted(assignment.mapping.items())),
                        n_active=state.n_active(),
                    )
                )

            # 4. Compute the processing rate of every active job.
            rates: dict[int, float] = {}
            for machine_id, job_id in assignment.mapping.items():
                speed = instance.machine(machine_id).speed
                rates[job_id] = rates.get(job_id, 0.0) + speed

            # 5. Horizon of this step: next arrival, scheduler horizon, or the
            # earliest completion under the current rates.
            horizon = next_arrival
            if assignment.valid_until is not None:
                horizon = min(horizon, max(assignment.valid_until, state.time))
            earliest_completion = math.inf
            for job_id, rate in rates.items():
                if rate <= 0:
                    continue
                remaining = state.active[job_id].remaining
                earliest_completion = min(earliest_completion, state.time + remaining / rate)
            step_end = min(horizon, earliest_completion)

            if math.isinf(step_end):
                # Nothing is running and nothing will ever arrive: the
                # scheduler abandoned the remaining jobs.
                raise ScheduleError(
                    f"scheduler {self.scheduler.name} left jobs "
                    f"{sorted(state.active)} unscheduled with no future event"
                )

            if step_end <= state.time + 1e-15:
                stall_count += 1
                if stall_count > _MAX_STALL:
                    raise ScheduleError(
                        f"scheduler {self.scheduler.name} produced {_MAX_STALL} "
                        f"consecutive zero-length steps at t={state.time}"
                    )
            else:
                stall_count = 0

            # 6. Advance execution to ``step_end``.
            self._advance(assignment, rates, state.time, step_end)
            state.time = step_end

            # 7. Complete finished jobs.
            self._collect_completions()

        schedule = Schedule(_merge_adjacent(self._slices))
        return SimulationResult(
            instance=instance,
            scheduler_name=self.scheduler.name,
            schedule=schedule,
            completions=dict(state.completions),
            scheduler_time=self._scheduler_time,
            n_decisions=self._n_decisions,
            events=tuple(self._events),
        )

    # -- internals --------------------------------------------------------------------
    def _validate_assignment(self, assignment: Assignment) -> None:
        state = self.state
        for machine_id, job_id in assignment.mapping.items():
            try:
                machine = self.instance.machine(machine_id)
            except KeyError:
                raise ScheduleError(f"assignment references unknown machine {machine_id}")
            if job_id not in state.active:
                raise ScheduleError(
                    f"assignment references job {job_id} which is not active at t={state.time}"
                )
            job = state.active[job_id].job
            if not machine.hosts(job.databank):
                raise ScheduleError(
                    f"machine {machine_id} cannot process job {job_id} "
                    f"(databank {job.databank!r} not hosted)"
                )

    def _advance(
        self,
        assignment: Assignment,
        rates: dict[int, float],
        start: float,
        end: float,
    ) -> None:
        """Execute the assignment over ``[start, end]`` and record slices."""
        duration = end - start
        if duration <= 0:
            return
        state = self.state
        for machine_id, job_id in assignment.mapping.items():
            speed = self.instance.machine(machine_id).speed
            work = speed * duration
            runtime = state.active[job_id]
            if runtime.first_service is None:
                runtime.first_service = start
            self._slices.append(
                WorkSlice(job_id=job_id, machine_id=machine_id, start=start, end=end, work=work)
            )
        for job_id, rate in rates.items():
            runtime = state.active[job_id]
            runtime.remaining = max(0.0, runtime.remaining - rate * duration)

    def _collect_completions(self) -> None:
        state = self.state
        finished = [
            job_id
            for job_id, runtime in state.active.items()
            if runtime.remaining <= _COMPLETION_TOL * max(1.0, runtime.job.size)
        ]
        for job_id in sorted(finished):
            runtime = state.active[job_id]
            state.complete(job_id, state.time)
            if self.record_events:
                flow = state.time - runtime.job.release
                stretch = flow / self.instance.ideal_time(job_id)
                self._events.append(
                    CompletionEvent(time=state.time, job_id=job_id, flow=flow, stretch=stretch)
                )
            self._timed(self.scheduler.on_completion, state, job_id)

    def _timed(self, fn, *args):
        start = _time.perf_counter()
        try:
            return fn(*args)
        finally:
            self._scheduler_time += _time.perf_counter() - start

    def _call(self, fn, *args):
        return fn(*args)


def _merge_adjacent(slices: Iterable[WorkSlice]) -> list[WorkSlice]:
    """Merge back-to-back slices of the same job on the same machine.

    The engine creates one slice per step; consecutive steps often keep the
    same assignment, so merging keeps schedules compact without changing any
    derived quantity.
    """
    merged: dict[int, list[WorkSlice]] = {}
    for s in sorted(slices, key=lambda s: (s.machine_id, s.start)):
        per_machine = merged.setdefault(s.machine_id, [])
        if (
            per_machine
            and per_machine[-1].job_id == s.job_id
            and abs(per_machine[-1].end - s.start) <= 1e-12 * max(1.0, abs(s.start))
        ):
            last = per_machine[-1]
            per_machine[-1] = WorkSlice(
                job_id=last.job_id,
                machine_id=last.machine_id,
                start=last.start,
                end=s.end,
                work=last.work + s.work,
            )
        else:
            per_machine.append(s)
    out: list[WorkSlice] = []
    for per_machine in merged.values():
        out.extend(per_machine)
    return out


def simulate(
    instance: Instance,
    scheduler: "Scheduler",
    *,
    record_events: bool = False,
) -> SimulationResult:
    """Convenience wrapper: run ``scheduler`` on ``instance`` and return the result."""
    engine = SimulationEngine(instance, scheduler, record_events=record_events)
    return engine.run()
