"""The fluid discrete-event simulation engine.

The engine advances simulated time from scheduling decision to scheduling
decision.  A decision is an :class:`~repro.simulation.state.Assignment`
mapping machines to jobs; between decisions each assigned machine is fully
dedicated to its job, so a job's remaining work decreases at the sum of the
speeds of its assigned machines and the next completion date can be computed
in closed form.  Decisions are requested:

* when jobs arrive (simultaneous arrivals are batched into one callback),
* when a job completes,
* when the current assignment's ``valid_until`` horizon is reached (used by
  plan-based schedulers whose plans contain internal breakpoints, and by
  deferred-replan policies asking to be woken up later).

Exogenous events (arrivals) live in the heap-based
:class:`~repro.simulation.clock.EventQueue`; completion dates are recomputed
in closed form from the current rates at every step, so they are never
queued and never go stale.  The engine also records the wall-clock time
spent inside scheduler callbacks, which reproduces the scheduling-overhead
comparison of Section 5.3.
"""

from __future__ import annotations

import math
import time as _time
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.schedule import Schedule, WorkSlice
from repro.lp.backends import record_lp_probes
from repro.simulation.clock import EventQueue, EventType, QueuedEvent, SimulationClock
from repro.simulation.events import (
    ArrivalEvent,
    AvailabilityEvent,
    CompletionEvent,
    DecisionEvent,
    SimulationEvent,
)
from repro.simulation.faults import FaultTimeline, apply_loss
from repro.simulation.result import SimulationResult
from repro.simulation.source import InstanceSource, SubmissionSource
from repro.simulation.state import Assignment, SchedulerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedulers.base import Scheduler

__all__ = ["SimulationEngine", "simulate"]

#: Relative tolerance under which a job's remaining work counts as zero.
_COMPLETION_TOL = 1e-9
#: Number of consecutive zero-length steps tolerated before declaring a
#: scheduler live-lock.
_MAX_STALL = 1000


class SimulationEngine:
    """Runs one scheduler against one instance.

    Parameters
    ----------
    instance, scheduler:
        What to simulate.
    record_events:
        Keep an event trace (arrivals, decisions, completions) in the result.
    max_steps:
        Safety bound on the number of simulation steps before declaring a
        live-lock.  ``None`` (default) derives a generous bound from the
        number of admitted jobs; tests inject small values to exercise the
        guard.
    source:
        Where arrivals come from (see :mod:`repro.simulation.source`).
        ``None`` (default) is batch mode: every arrival of ``instance`` is
        queued up front through an :class:`InstanceSource`, and the engine
        never consults the source again.  A non-exhausted source (trace
        replay, live daemon) is instead *pulled* before every virtual-time
        advance, so externally submitted jobs become visible exactly at
        their release dates.
    faults:
        Optional :class:`~repro.simulation.faults.FaultTimeline`.  Its
        DOWN/UP transitions are queued as ``WAKEUP`` events and applied
        *before* the arrivals of the same event batch; a DOWN removes the
        machine from every availability-aware query on the state (and
        re-queues in-flight work per the timeline's loss model), an UP
        restores it.  ``None`` or an empty timeline leaves every float path
        of the engine untouched, so fault-free runs stay bit-identical to
        the historical engine.
    """

    def __init__(
        self,
        instance: Instance,
        scheduler: "Scheduler",
        *,
        record_events: bool = False,
        max_steps: int | None = None,
        source: SubmissionSource | None = None,
        faults: FaultTimeline | None = None,
    ):
        self.instance = instance
        self.scheduler = scheduler
        self.record_events = record_events
        if faults:
            if not getattr(scheduler, "fault_aware", True):
                raise ScheduleError(
                    f"scheduler {scheduler.name} cannot run under a fault timeline "
                    "(it relies on whole-run clairvoyance)"
                )
            faults = faults.restrict_to(instance.platform.ids())
        self.faults: FaultTimeline | None = faults if faults else None
        self.state = SchedulerState(instance)
        self.clock = SimulationClock()
        self.queue = EventQueue()
        self.max_steps = max_steps
        self.source: SubmissionSource = (
            source if source is not None else InstanceSource(instance)
        )
        #: LP probe statistics of the in-flight run (live telemetry surface);
        #: set by :meth:`run`, also attached to the returned result.
        self.lp_stats = None
        #: Mapping of the most recent applied assignment (live telemetry).
        self.last_assignment: dict[int, int] = {}
        self._jobs_admitted = 0
        self._slices: list[WorkSlice] = []
        self._events: list[SimulationEvent] = []
        self._scheduler_time = 0.0
        self._n_decisions = 0

    # -- public API ---------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate until every job has completed and return the result.

        The run is wrapped in :func:`repro.lp.backends.record_lp_probes`, so
        the result carries the LP probe statistics (solve count/time and the
        probe-elimination histogram of the certificate-guided milestone
        search) alongside the scheduler wall-clock -- the instrumentation
        surface of the Section 5.3 overhead experiment.
        """
        with record_lp_probes() as lp_stats:
            self.lp_stats = lp_stats
            result = self._run()
        result.lp_probes = lp_stats
        return result

    def _run(self) -> SimulationResult:
        instance, state = self.instance, self.state
        source = self.source
        source.start(self.queue)
        self._jobs_admitted = len(self.queue)
        if self.faults:
            for transition in self.faults.events:
                self.queue.push_wakeup(transition.time, transition.machine_id, transition.up)

        start = _time.perf_counter()
        self._call(self.scheduler.reset, instance)
        self._scheduler_time += _time.perf_counter() - start

        if len(self.queue) == 0 and not source.exhausted:
            # Externally fed run: park until the first submission so the
            # virtual clock starts at its release date, exactly as the batch
            # path starts at the earliest queued arrival.
            self._sync_submissions(math.inf)

        self.clock = SimulationClock(self.queue.next_time() if len(self.queue) else 0.0)
        state.time = self.clock.now
        stall_count = 0
        steps = 0

        while True:
            steps += 1
            if steps > self._step_limit():
                raise ScheduleError(
                    f"simulation exceeded {self._step_limit()} steps; the scheduler "
                    f"({self.scheduler.name}) appears to be live-locked"
                )

            # 1. Dispatch every event due now; simultaneous arrivals form one
            # batch and trigger a single scheduler callback.
            due = self.queue.pop_due(state.time)
            if self.faults:
                # Availability transitions apply before the arrivals of the
                # same batch: a machine failing exactly at an arrival instant
                # is already gone when the scheduler sees the new jobs.
                transitions = [e for e in due if e.type is EventType.WAKEUP and e.machine_id is not None]
                if transitions:
                    self._apply_availability(transitions)
            arrivals = [e.job for e in due if e.type is EventType.ARRIVAL and e.job]
            if arrivals:
                for job in arrivals:
                    state.release(job)
                    if self.record_events:
                        self._events.append(
                            ArrivalEvent(time=state.time, job_id=job.job_id,
                                         size=job.size, databank=job.databank)
                        )
                self._timed(self.scheduler.on_arrivals, state, arrivals)

            next_event = self.queue.next_time()

            # 2. Termination / idle handling.
            if not state.active:
                if not source.exhausted:
                    # Before jumping (or waiting forever), let the source
                    # deliver anything due first -- a live source parks the
                    # engine here while the system is empty.
                    next_event = self._sync_submissions(next_event)
                if math.isinf(next_event):
                    break
                self._timed(self.scheduler.on_idle, state, next_event)
                state.time = self.clock.advance_to(next_event)
                continue

            # 3. Ask the scheduler for an assignment.
            assignment = self._timed(self.scheduler.assign, state)
            if assignment is None:
                assignment = Assignment.idle()
            self._validate_assignment(assignment)
            self._n_decisions += 1
            self.last_assignment = assignment.mapping
            if self.record_events:
                self._events.append(
                    DecisionEvent(
                        time=state.time,
                        assignment=tuple(sorted(assignment.mapping.items())),
                        n_active=state.n_active(),
                    )
                )

            # 4. Compute the processing rate of every active job, once per
            # step (the arrays feed both the completion horizon and the
            # advance below).
            rates: dict[int, float] = {}
            for machine_id, job_id in assignment.mapping.items():
                speed = instance.machine(machine_id).speed
                rates[job_id] = rates.get(job_id, 0.0) + speed
            rated_ids, rate_arr, remaining_arr = self._rate_arrays(rates, state)

            # 5. Horizon of this step: next queued event, scheduler horizon,
            # or the earliest completion under the current rates.
            horizon = next_event
            if assignment.valid_until is not None:
                horizon = min(horizon, max(assignment.valid_until, state.time))
            step_end = min(
                horizon,
                _earliest_completion(rate_arr, remaining_arr, state.time),
            )

            if not source.exhausted:
                # The engine is about to commit to advancing to ``step_end``;
                # give the source a chance to deliver submissions released at
                # or before that date first.  The horizon is only ever
                # *tightened* here (never split after the fact), so the
                # fluid kernel's float accumulation is unchanged -- the key
                # to bit-identical trace replay.
                next_event = self._sync_submissions(step_end)
                step_end = min(step_end, next_event)

            if math.isinf(step_end):
                if self.faults and state.down and self._all_parked():
                    # Every survivor's eligible machines are down and no UP,
                    # arrival or submission is ever coming: the jobs are
                    # *parked*, not abandoned -- terminate gracefully and
                    # report them (infinite stretch, the starvation bound).
                    break
                # Nothing is running and nothing will ever arrive: the
                # scheduler abandoned the remaining jobs.
                raise ScheduleError(
                    f"scheduler {self.scheduler.name} left jobs "
                    f"{sorted(state.active)} unscheduled with no future event"
                )

            if step_end <= state.time + 1e-15:
                stall_count += 1
                if stall_count > _MAX_STALL:
                    raise ScheduleError(
                        f"scheduler {self.scheduler.name} produced {_MAX_STALL} "
                        f"consecutive zero-length steps at t={state.time}"
                    )
            else:
                stall_count = 0

            if step_end == next_event and not math.isinf(next_event):
                # The step runs uninterrupted into the next queued event:
                # this is the last step of the inter-event gap, so the
                # scheduler gets its once-per-gap idle callback (a one-step
                # projection from here to ``next_event`` is exact).
                self._timed(self.scheduler.on_idle, state, next_event)

            # 6. Advance execution to ``step_end``.
            self._advance(assignment, rated_ids, rate_arr, remaining_arr,
                          state.time, step_end)
            state.time = self.clock.advance_to(step_end)

            # 7. Complete finished jobs.
            self._collect_completions()

        # Every job completed (or parked under a fault timeline): let the
        # scheduler publish reusable state (cross-run solver bank).  Counted
        # into the scheduler wall-clock, like every other callback.
        self._timed(self.scheduler.finalize, state)

        schedule = Schedule(_merge_adjacent(self._slices))
        return SimulationResult(
            instance=instance,
            scheduler_name=self.scheduler.name,
            schedule=schedule,
            completions=dict(state.completions),
            scheduler_time=self._scheduler_time,
            n_decisions=self._n_decisions,
            events=tuple(self._events),
            parked={j: rt.remaining for j, rt in state.active.items()},
        )

    # -- internals --------------------------------------------------------------------
    def _step_limit(self) -> int:
        """The live-lock step bound.

        Generous: every event (arrival, completion, plan breakpoint) should
        trigger a handful of steps at most.  Derived from the *admitted* job
        count, so an externally fed run's allowance grows with its intake
        (batch mode admits everything up front and reproduces the historical
        bound exactly).
        """
        if self.max_steps is not None:
            return self.max_steps
        return 1000 + 200 * (self._jobs_admitted + 1) * (len(self.instance.platform) + 1)

    def _sync_submissions(self, until: float) -> float:
        """Pull the source until no submission is due at or before ``until``.

        Newly delivered jobs are queued as arrivals and shrink ``until`` to
        the earliest of them, so the fixed point guarantees that when this
        returns, the source holds nothing the engine is about to step over.
        Returns the queue's next event date.
        """
        while True:
            jobs = self.source.pull(self.state.time, until)
            if not jobs:
                return self.queue.next_time()
            for job in jobs:
                self.queue.push_arrival(job)
            self._jobs_admitted += len(jobs)
            until = min(until, self.queue.next_time())

    def _apply_availability(self, transitions: "Sequence[QueuedEvent]") -> None:
        """Apply a batch of DOWN/UP transitions at the current instant."""
        state = self.state
        downs: list[int] = []
        ups: list[int] = []
        for event in transitions:
            machine_id = int(event.machine_id)  # type: ignore[arg-type]
            if event.up:
                state.down.discard(machine_id)
                ups.append(machine_id)
            else:
                state.down.add(machine_id)
                downs.append(machine_id)
        lost = self._reclaim_inflight(downs) if downs else {}
        if self.record_events:
            for event in transitions:
                machine_id = int(event.machine_id)  # type: ignore[arg-type]
                self._events.append(
                    AvailabilityEvent(
                        time=state.time,
                        machine_id=machine_id,
                        up=event.up,
                        lost_work=0.0 if event.up else lost.get(machine_id, 0.0),
                    )
                )
        self._timed(self.scheduler.on_availability, state, tuple(downs), tuple(ups))

    def _reclaim_inflight(self, downs: Sequence[int]) -> dict[int, float]:
        """Re-queue work in flight on machines that just failed.

        The job a failed machine was serving keeps running elsewhere (or
        waits) with its remaining work adjusted per the timeline's loss
        model.  Returns ``machine_id -> extra work re-queued`` (non-zero
        only under the ``restart`` model).
        """
        state = self.state
        timeline = self.faults
        assert timeline is not None
        lost: dict[int, float] = {}
        for machine_id in downs:
            job_id = self.last_assignment.get(machine_id)
            if job_id is None or job_id not in state.active:
                continue
            runtime = state.active[job_id]
            before = runtime.remaining
            runtime.remaining = apply_loss(
                before,
                runtime.job.size,
                loss_model=timeline.loss_model,
                checkpoint_fraction=timeline.checkpoint_fraction,
            )
            if runtime.remaining > before:
                lost[machine_id] = runtime.remaining - before
        return lost

    def _all_parked(self) -> bool:
        """True when no active job has any eligible machine still up."""
        state = self.state
        return all(not state.available_eligible(job_id) for job_id in state.active)

    def _validate_assignment(self, assignment: Assignment) -> None:
        state = self.state
        down = state.down
        for machine_id, job_id in assignment.mapping.items():
            try:
                machine = self.instance.machine(machine_id)
            except KeyError:
                raise ScheduleError(f"assignment references unknown machine {machine_id}")
            if down and machine_id in down:
                raise ScheduleError(
                    f"assignment references machine {machine_id} which is down at t={state.time}"
                )
            if job_id not in state.active:
                raise ScheduleError(
                    f"assignment references job {job_id} which is not active at t={state.time}"
                )
            job = state.active[job_id].job
            if not machine.hosts(job.databank):
                raise ScheduleError(
                    f"machine {machine_id} cannot process job {job_id} "
                    f"(databank {job.databank!r} not hosted)"
                )

    @staticmethod
    def _rate_arrays(
        rates: Mapping[int, float], state: SchedulerState
    ) -> tuple[list[int], np.ndarray, np.ndarray]:
        """Job ids receiving work, their rates and remaining works, as arrays."""
        job_ids = list(rates)
        n = len(job_ids)
        rate = np.fromiter((rates[j] for j in job_ids), dtype=np.float64, count=n)
        remaining = np.fromiter(
            (state.active[j].remaining for j in job_ids), dtype=np.float64, count=n
        )
        return job_ids, rate, remaining

    def _advance(
        self,
        assignment: Assignment,
        job_ids: Sequence[int],
        rate: np.ndarray,
        remaining: np.ndarray,
        start: float,
        end: float,
    ) -> None:
        """Execute the assignment over ``[start, end]`` and record slices.

        ``job_ids``/``rate``/``remaining`` are the step's rate arrays as
        returned by :meth:`_rate_arrays` (already used to compute the step
        horizon, so they are not rebuilt here).
        """
        duration = end - start
        if duration <= 0:
            return
        state = self.state
        for machine_id, job_id in assignment.mapping.items():
            speed = self.instance.machine(machine_id).speed
            work = speed * duration
            runtime = state.active[job_id]
            if runtime.first_service is None:
                runtime.first_service = start
            self._slices.append(
                WorkSlice(job_id=job_id, machine_id=machine_id, start=start, end=end, work=work)
            )
        if len(job_ids):
            new_remaining = np.maximum(0.0, remaining - rate * duration)
            for job_id, value in zip(job_ids, new_remaining):
                state.active[job_id].remaining = float(value)

    def _collect_completions(self) -> None:
        state = self.state
        if not state.active:
            return
        n = len(state.active)
        ids = np.fromiter(state.active.keys(), dtype=np.int64, count=n)
        remaining = np.fromiter(
            (rt.remaining for rt in state.active.values()), dtype=np.float64, count=n
        )
        sizes = np.fromiter(
            (rt.job.size for rt in state.active.values()), dtype=np.float64, count=n
        )
        finished = ids[remaining <= _COMPLETION_TOL * np.maximum(1.0, sizes)]
        for job_id in sorted(int(j) for j in finished):
            runtime = state.active[job_id]
            state.complete(job_id, state.time)
            if self.record_events:
                flow = state.time - runtime.job.release
                stretch = flow / self.instance.ideal_time(job_id)
                self._events.append(
                    CompletionEvent(time=state.time, job_id=job_id, flow=flow, stretch=stretch)
                )
            self._timed(self.scheduler.on_completion, state, job_id)

    def _timed(self, fn, *args):
        start = _time.perf_counter()
        try:
            return fn(*args)
        finally:
            self._scheduler_time += _time.perf_counter() - start

    def _call(self, fn, *args):
        return fn(*args)


def _earliest_completion(rate: np.ndarray, remaining: np.ndarray, now: float) -> float:
    """Earliest completion date under the step's rates (vectorized; inf when none)."""
    positive = rate > 0.0
    if not positive.any():
        return math.inf
    return now + float(np.min(remaining[positive] / rate[positive]))


def _merge_adjacent(slices: Iterable[WorkSlice]) -> list[WorkSlice]:
    """Merge back-to-back slices of the same job on the same machine.

    The engine creates one slice per step; consecutive steps often keep the
    same assignment, so merging keeps schedules compact without changing any
    derived quantity.
    """
    merged: dict[int, list[WorkSlice]] = {}
    for s in sorted(slices, key=lambda s: (s.machine_id, s.start)):
        per_machine = merged.setdefault(s.machine_id, [])
        if (
            per_machine
            and per_machine[-1].job_id == s.job_id
            and abs(per_machine[-1].end - s.start) <= 1e-12 * max(1.0, abs(s.start))
        ):
            last = per_machine[-1]
            per_machine[-1] = WorkSlice(
                job_id=last.job_id,
                machine_id=last.machine_id,
                start=last.start,
                end=s.end,
                work=last.work + s.work,
            )
        else:
            per_machine.append(s)
    out: list[WorkSlice] = []
    for per_machine in merged.values():
        out.extend(per_machine)
    return out


def simulate(
    instance: Instance,
    scheduler: "Scheduler",
    *,
    record_events: bool = False,
    faults: FaultTimeline | None = None,
) -> SimulationResult:
    """Convenience wrapper: run ``scheduler`` on ``instance`` and return the result."""
    engine = SimulationEngine(instance, scheduler, record_events=record_events, faults=faults)
    return engine.run()
