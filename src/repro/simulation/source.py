"""Submission sources: who feeds the engine's event queue.

Historically the engine materialized its whole event queue from the instance
before the first step -- batch mode.  Service mode needs the opposite: jobs
become known only when an external client submits them, possibly while the
simulation is already running.  :class:`SubmissionSource` is the seam between
the two.  The engine interacts with its source at three points:

* :meth:`SubmissionSource.start` -- once, before the scheduler's ``reset``;
  batch mode pushes every arrival here and is done.
* :meth:`SubmissionSource.pull` -- before the engine commits to advancing
  virtual time to some date ``until``, it asks the source for every
  submission whose release falls at or before that date.  The engine loops
  until the source returns nothing new, shrinking ``until`` to the earliest
  newly queued arrival each round, so no step ever runs past an arrival the
  source already knows about.  Because steps are never *split* for pacing --
  the horizon is only ever tightened before the step executes -- the
  float-accumulation order of the fluid kernel is untouched, which is what
  makes trace replay bit-identical to batch simulation.
* :attr:`SubmissionSource.exhausted` -- ``True`` once the source can never
  deliver again; batch mode is exhausted from the start, so the engine skips
  every ``pull`` and the batch path stays call-for-call identical to the
  pre-service engine.

Two sources live here: :class:`InstanceSource` (batch) and
:class:`TraceSource` (replaying a journaled submission sequence through the
incremental-delivery machinery).  The live, thread-fed
:class:`~repro.service.stream.StreamingSource` belongs to the service layer.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.core.instance import Instance, LiveInstance
from repro.simulation.clock import SIMULTANEITY_TOL, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job

__all__ = ["SubmissionSource", "InstanceSource", "TraceSource"]


class SubmissionSource(ABC):
    """Feeds job arrivals into the engine's event queue."""

    @property
    @abstractmethod
    def exhausted(self) -> bool:
        """True when no further submission can ever be delivered.

        The engine stops consulting an exhausted source; termination then
        rests solely on the event queue and the active set, exactly as in
        batch mode.
        """

    @abstractmethod
    def start(self, queue: EventQueue) -> None:
        """Called once before the simulation starts (before scheduler reset)."""

    @abstractmethod
    def pull(self, now: float, until: float) -> "list[Job]":
        """Deliver submissions with release date at or before ``until``.

        ``now`` is the engine's current virtual time; ``until`` is the date
        the engine intends to advance to next (``inf`` when it would
        otherwise wait forever).  Implementations may block -- a live source
        uses exactly this call to pace virtual time against the wall clock
        and to park the engine while the system is idle -- but must
        eventually return.  An empty list means "nothing (more) at or before
        ``until``"; the engine then commits to the step.  Deliveries must be
        sorted by ``(release, job_id)`` and releases must be non-decreasing
        across calls.
        """


class InstanceSource(SubmissionSource):
    """Batch mode: every arrival of a materialized instance, queued up front."""

    def __init__(self, instance: Instance):
        self.instance = instance

    @property
    def exhausted(self) -> bool:
        return True

    def start(self, queue: EventQueue) -> None:
        for job in self.instance.jobs:  # already sorted by release
            queue.push_arrival(job)

    def pull(self, now: float, until: float) -> "list[Job]":  # pragma: no cover
        return []


class TraceSource(SubmissionSource):
    """Replay a recorded submission sequence through the service-mode path.

    Unlike :class:`InstanceSource` this delivers jobs *incrementally*, one
    ``pull`` at a time, and (when given a :class:`~repro.core.instance.LiveInstance`)
    admits each job into the growing instance at the moment it is delivered
    -- the exact code path a live daemon exercises, minus the wall clock.
    Replaying a trace therefore validates the whole service loop against the
    batch engine: both must produce bit-identical schedules.
    """

    def __init__(self, jobs: "Sequence[Job]", live_instance: LiveInstance | None = None):
        self._jobs = sorted(jobs, key=lambda job: (job.release, job.job_id))
        self._cursor = 0
        self._live = live_instance

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._jobs)

    def start(self, queue: EventQueue) -> None:
        return None

    def pull(self, now: float, until: float) -> "list[Job]":
        jobs = self._jobs
        i = self._cursor
        if i >= len(jobs):
            return []
        if math.isinf(until):
            # Parked engine: deliver the next simultaneous batch, wherever
            # its release falls.
            limit = jobs[i].release + SIMULTANEITY_TOL
        else:
            # Same tolerance as EventQueue.pop_due: an arrival within the
            # simultaneity slack of the step end would have been popped with
            # it in batch mode, so it must be visible before the step runs.
            limit = until + SIMULTANEITY_TOL
        delivered: "list[Job]" = []
        while i < len(jobs) and jobs[i].release <= limit:
            job = jobs[i]
            if self._live is not None:
                self._live.admit(job)
            delivered.append(job)
            i += 1
        self._cursor = i
        return delivered
