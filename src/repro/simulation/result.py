"""Result object returned by the simulation engine."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core import metrics as metrics_mod
from repro.core.instance import Instance
from repro.core.metrics import MetricsReport
from repro.core.schedule import Schedule
from repro.lp.backends import LPProbeStats
from repro.simulation.events import SimulationEvent

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Everything produced by one simulation run.

    Attributes
    ----------
    instance:
        The instance that was simulated.
    scheduler_name:
        Name of the scheduling strategy.
    schedule:
        The realized schedule (per-machine work slices).
    completions:
        ``job_id -> completion time``.
    scheduler_time:
        Wall-clock seconds spent inside the scheduler callbacks (the
        "scheduling overhead" of Section 5.3).
    n_decisions:
        Number of assignments requested from the scheduler.
    events:
        Optional trace of arrivals/completions/decisions.
    lp_probes:
        LP probe statistics collected over the run (solve count and time,
        plus the probe-elimination histogram of the certificate-guided
        milestone search); all zeros for LP-free schedulers.
    parked:
        ``job_id -> remaining work`` of jobs stranded by a fault timeline
        (every eligible machine down with no recovery coming).  Empty on
        fault-free runs.  Parked jobs enter the metric report with an
        infinite completion date, so the max-stretch of such a run is the
        starvation bound ``inf`` rather than a crash.
    """

    instance: Instance
    scheduler_name: str
    schedule: Schedule
    completions: dict[int, float]
    scheduler_time: float = 0.0
    n_decisions: int = 0
    events: tuple[SimulationEvent, ...] = ()
    lp_probes: LPProbeStats = field(default_factory=LPProbeStats)
    parked: dict[int, float] = field(default_factory=dict)

    _report: MetricsReport | None = field(default=None, repr=False, compare=False)

    # -- metrics -----------------------------------------------------------------
    def report(self) -> MetricsReport:
        """The full metric report (cached).

        Parked jobs (fault injection) are scored with an infinite completion
        date: their flow and stretch are ``inf``, which is exactly the
        starvation bound the Theorem 1 analysis reports for a job that never
        runs.
        """
        if self._report is None:
            self._report = metrics_mod.evaluate(self.instance, self._scored_completions())
        return self._report

    def metrics_row(self) -> dict[str, float]:
        """The five campaign metrics keyed like ``RunRecord``'s columns.

        The single source of the metric-name -> value mapping shared by the
        campaign runner's record construction and the packed columnar
        transport, so a metric cannot be added to one side without the
        other noticing.
        """
        report = self.report()
        return {
            "max_stretch": report.max_stretch,
            "sum_stretch": report.sum_stretch,
            "max_flow": report.max_flow,
            "sum_flow": report.sum_flow,
            "makespan": report.makespan,
        }

    @property
    def max_stretch(self) -> float:
        return self.report().max_stretch

    @property
    def sum_stretch(self) -> float:
        return self.report().sum_stretch

    @property
    def max_flow(self) -> float:
        return self.report().max_flow

    @property
    def sum_flow(self) -> float:
        return self.report().sum_flow

    @property
    def makespan(self) -> float:
        return self.report().makespan

    def _scored_completions(self) -> dict[int, float]:
        """Completions with parked jobs mapped to ``inf`` (metric inputs)."""
        if not self.parked:
            return self.completions
        scored = dict(self.completions)
        scored.update({job_id: math.inf for job_id in self.parked})
        return scored

    def stretches(self) -> dict[int, float]:
        """Per-job stretch values."""
        return metrics_mod.stretches(self.instance, self._scored_completions())

    def flows(self) -> dict[int, float]:
        """Per-job flow times."""
        return metrics_mod.flow_times(self.instance, self._scored_completions())

    # -- presentation -----------------------------------------------------------------
    def summary(self) -> str:
        """One-line human-readable summary."""
        rep = self.report()
        return (
            f"{self.scheduler_name}: max-stretch={rep.max_stretch:.4f} "
            f"sum-stretch={rep.sum_stretch:.4f} max-flow={rep.max_flow:.3f}s "
            f"makespan={rep.makespan:.3f}s "
            f"(scheduler time {self.scheduler_time * 1e3:.2f} ms, "
            f"{self.n_decisions} decisions)"
        )

    def trace_lines(self) -> list[str]:
        """The formatted event trace (empty when tracing was disabled)."""
        return [str(e) for e in self.events]
