"""Mutable execution state shared between the engine and the schedulers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job

__all__ = ["JobRuntime", "SchedulerState", "Assignment"]


@dataclass
class JobRuntime:
    """Execution state of one released job."""

    job: Job
    remaining: float
    first_service: float | None = None

    @property
    def job_id(self) -> int:
        return self.job.job_id

    @property
    def processed(self) -> float:
        """Work already executed."""
        return self.job.size - self.remaining

    def is_finished(self, *, tol: float = 1e-9) -> bool:
        """True when the remaining work is negligible w.r.t. the job size."""
        return self.remaining <= tol * max(1.0, self.job.size)


@dataclass
class Assignment:
    """A scheduling decision: which machine works on which job.

    Attributes
    ----------
    mapping:
        ``machine_id -> job_id``.  Machines absent from the mapping are idle.
    valid_until:
        Optional absolute date after which the scheduler wants to be asked
        again even if no arrival or completion occurred (used by plan-based
        schedulers whose plans contain internal breakpoints).  ``None`` means
        "until the next arrival or completion".
    """

    mapping: dict[int, int] = field(default_factory=dict)
    valid_until: float | None = None

    def machines_of(self, job_id: int) -> list[int]:
        """Machines currently assigned to ``job_id``."""
        return [m for m, j in self.mapping.items() if j == job_id]

    def job_ids(self) -> set[int]:
        return set(self.mapping.values())

    @classmethod
    def idle(cls, valid_until: float | None = None) -> "Assignment":
        """An assignment leaving every machine idle."""
        return cls(mapping={}, valid_until=valid_until)


class SchedulerState:
    """Read-mostly view of the simulation handed to schedulers.

    The engine owns the state; schedulers must treat it as read-only except
    through their return values (assignments).
    """

    def __init__(self, instance: Instance):
        self.instance = instance
        self.time: float = 0.0
        self.active: dict[int, JobRuntime] = {}
        self.completions: dict[int, float] = {}
        self.released_ids: set[int] = set()
        #: Machines currently unavailable (fault injection).  Empty on a
        #: fault-free run -- every availability-aware query below keeps the
        #: empty-set fast path identical to the historical behaviour.
        self.down: set[int] = set()

    # -- queries used by schedulers ------------------------------------------------
    def active_jobs(self) -> list[JobRuntime]:
        """Released, uncompleted jobs (arbitrary but deterministic order)."""
        return [self.active[j] for j in sorted(self.active)]

    def remaining_work(self, job_id: int) -> float:
        """Remaining work of an active job (0 when completed)."""
        if job_id in self.active:
            return self.active[job_id].remaining
        if job_id in self.completions:
            return 0.0
        raise ModelError(f"job {job_id} has not been released yet")

    def remaining_map(self) -> dict[int, float]:
        """``job_id -> remaining work`` for all active jobs."""
        return {j: rt.remaining for j, rt in self.active.items()}

    def released_jobs(self) -> list[Job]:
        """All jobs released so far (active or completed)."""
        return [self.instance.job(j) for j in sorted(self.released_ids)]

    def is_active(self, job_id: int) -> bool:
        return job_id in self.active

    def is_completed(self, job_id: int) -> bool:
        return job_id in self.completions

    def n_active(self) -> int:
        return len(self.active)

    # -- machine availability (fault injection) -----------------------------------
    def machine_available(self, machine_id: int) -> bool:
        """False while the machine is down per the active fault timeline."""
        return machine_id not in self.down

    def available_ids(self) -> set[int]:
        """Identifiers of the machines currently up."""
        ids = set(self.instance.platform.ids())
        return ids - self.down if self.down else ids

    def available_eligible(self, job_id: int):
        """``instance.eligible_machines`` filtered by current availability."""
        machines = self.instance.eligible_machines(job_id)
        if not self.down:
            return machines
        return tuple(m for m in machines if m.machine_id not in self.down)

    # -- mutations (engine only) --------------------------------------------------------
    def release(self, job: Job) -> JobRuntime:
        if job.job_id in self.released_ids:
            raise ModelError(f"job {job.job_id} released twice")
        runtime = JobRuntime(job=job, remaining=job.size)
        self.active[job.job_id] = runtime
        self.released_ids.add(job.job_id)
        return runtime

    def complete(self, job_id: int, time: float) -> None:
        if job_id not in self.active:
            raise ModelError(f"cannot complete job {job_id}: not active")
        del self.active[job_id]
        self.completions[job_id] = time
