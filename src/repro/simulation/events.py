"""Event records kept in the simulation trace.

The trace is optional (it costs memory on large campaigns) and primarily
serves the examples, the CLI ``--trace`` option and debugging of new
schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SimulationEvent",
    "ArrivalEvent",
    "CompletionEvent",
    "DecisionEvent",
    "AvailabilityEvent",
]


@dataclass(frozen=True)
class SimulationEvent:
    """Base class for trace events (time-stamped)."""

    time: float


@dataclass(frozen=True)
class ArrivalEvent(SimulationEvent):
    """A job entered the system."""

    job_id: int = -1
    size: float = 0.0
    databank: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:10.3f}] arrival    J{self.job_id} (size={self.size:.3f})"


@dataclass(frozen=True)
class CompletionEvent(SimulationEvent):
    """A job finished."""

    job_id: int = -1
    flow: float = 0.0
    stretch: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.time:10.3f}] completion J{self.job_id} "
            f"(flow={self.flow:.3f}s, stretch={self.stretch:.3f})"
        )


@dataclass(frozen=True)
class AvailabilityEvent(SimulationEvent):
    """A machine left or rejoined the platform (fault injection)."""

    machine_id: int = -1
    up: bool = False
    #: Work re-queued on the interrupted job (restart loss model), 0 otherwise.
    lost_work: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        word = "up" if self.up else "down"
        loss = f" (+{self.lost_work:.3f} work re-queued)" if self.lost_work > 0 else ""
        return f"[{self.time:10.3f}] machine    M{self.machine_id} {word}{loss}"


@dataclass(frozen=True)
class DecisionEvent(SimulationEvent):
    """The scheduler produced a new assignment."""

    assignment: tuple[tuple[int, int], ...] = ()
    n_active: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"M{m}->J{j}" for m, j in self.assignment) or "(all idle)"
        return f"[{self.time:10.3f}] decision   {pairs}"
