"""Event-queue kernel for the fluid simulation engine.

The engine's exogenous events (job arrivals, machine availability
transitions) are kept in a binary heap ordered by time.  Completion dates
are *not* queued: in the fluid model they are recomputed in closed form from
the current assignment at every step, so queuing them would only create
stale entries to invalidate.  Timed replan wake-ups are not queued either --
they ride on the assignment's ``valid_until`` horizon (see
``PlanBasedScheduler.assign``).  The ``WAKEUP`` event type carries exogenous
availability transitions from a fault timeline (see ``simulation/faults``);
it sorts after arrivals at equal dates, but the engine processes the
transitions of a batch *before* the arrivals so that a machine failing
exactly at an arrival instant is already gone when the scheduler sees the
new jobs.

The queue's distinguishing feature is **batch popping**: all events falling
within a tolerance of the earliest one are delivered together.  Simultaneous
arrivals therefore trigger a *single* scheduler callback (one replan instead
of one per job for the LP-based heuristics), which is both faster and closer
to the paper's "at every release date" formulation.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job

__all__ = ["EventType", "QueuedEvent", "EventQueue", "SimulationClock"]

#: Absolute slack under which two event dates count as simultaneous.
SIMULTANEITY_TOL = 1e-12


class EventType(IntEnum):
    """Kinds of queued events; the value breaks ties at equal dates."""

    ARRIVAL = 0
    WAKEUP = 1


@dataclass(frozen=True)
class QueuedEvent:
    """One entry of the event queue.

    ``job`` is set on arrivals; ``machine_id``/``up`` on availability
    wake-ups (``up=True`` means the machine returns to service).
    """

    time: float
    type: EventType
    job: "Job | None" = None
    machine_id: int | None = None
    up: bool = False


class EventQueue:
    """A time-ordered heap of :class:`QueuedEvent` with batched popping."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, QueuedEvent]] = []
        self._seq = 0  # FIFO tie-break for equal (time, type)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: QueuedEvent) -> None:
        heapq.heappush(self._heap, (event.time, int(event.type), self._seq, event))
        self._seq += 1

    def push_arrival(self, job: "Job") -> None:
        self.push(QueuedEvent(time=job.release, type=EventType.ARRIVAL, job=job))

    def push_wakeup(self, time: float, machine_id: int, up: bool) -> None:
        self.push(QueuedEvent(time=time, type=EventType.WAKEUP, machine_id=machine_id, up=up))

    def next_time(self) -> float:
        """Date of the earliest queued event (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else math.inf

    def pop_due(self, now: float, *, tol: float = SIMULTANEITY_TOL) -> list[QueuedEvent]:
        """Pop every event due at or before ``now`` (within ``tol``).

        Events are returned in (time, type, insertion) order, so a batch of
        simultaneous arrivals preserves the instance's job order.
        """
        due: list[QueuedEvent] = []
        while self._heap and self._heap[0][0] <= now + tol:
            due.append(heapq.heappop(self._heap)[3])
        return due


class SimulationClock:
    """Monotonically advancing simulated time.

    A tiny wrapper rather than a bare float so that the engine's invariant
    (time never moves backwards) is enforced in one place.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance_to(self, time: float) -> float:
        if time < self.now - SIMULTANEITY_TOL:
            raise ValueError(
                f"simulation clock cannot move backwards ({self.now} -> {time})"
            )
        if time > self.now:
            self.now = time
        return self.now
