"""Discrete-event simulation of divisible-load execution.

This subpackage replaces the SimGrid toolkit used in the paper.  Because the
application model has negligible communication costs and linear divisible
work, execution between two scheduling decisions is *fluid*: each machine is
dedicated to (at most) one job and the job's remaining work decreases at the
sum of its assigned machines' speeds.  Completion dates are therefore
computed exactly, with no time-stepping error.
"""

from repro.simulation.state import Assignment, JobRuntime, SchedulerState
from repro.simulation.clock import EventQueue, EventType, QueuedEvent, SimulationClock
from repro.simulation.events import (
    ArrivalEvent,
    CompletionEvent,
    DecisionEvent,
    SimulationEvent,
)
from repro.simulation.engine import SimulationEngine, simulate
from repro.simulation.result import SimulationResult

__all__ = [
    "Assignment",
    "JobRuntime",
    "SchedulerState",
    "EventQueue",
    "EventType",
    "QueuedEvent",
    "SimulationClock",
    "SimulationEvent",
    "ArrivalEvent",
    "CompletionEvent",
    "DecisionEvent",
    "SimulationEngine",
    "simulate",
    "SimulationResult",
]
