"""The daemon's HTTP surface: a thin stdlib server over :class:`SchedulerDaemon`.

No third-party web framework -- :class:`http.server.ThreadingHTTPServer`
handlers call straight into the daemon, whose locking already makes
admission safe from any number of threads.  Endpoints:

``POST /submit``
    One JSON submission object; replies ``{"job_id", "release"}`` (HTTP 200)
    or ``{"error"}``: 400 (malformed), 409 (duplicate/unhosted, or the
    daemon is draining -- permanent, do not retry), 503 with a
    ``Retry-After`` header (load shed by the admission valve -- transient,
    retry after the indicated back-off).
``POST /stream``
    A JSONL window (one submission per line); replies with the
    :class:`~repro.service.ingest.IngestReport` -- per-record accounting,
    HTTP 200 even when some lines were rejected (the report says which).
``GET /telemetry``
    The live telemetry document: current ``S*``, LP probe histogram,
    per-databank queue depths, replan-latency percentiles, admission
    counters.
``GET /healthz``
    Cheap liveness/readiness probe: ``{"status": "accepting" | "draining"
    | "stopped" | "failed", ...}`` -- always HTTP 200, load balancers key
    off the ``status`` field.
``POST /drain``
    Close the submission stream; the engine finishes what was admitted.
    Replies with the final metrics once the run completes.

Bind with ``port=0`` to grab a free port (the CI smoke test does); the
chosen port is on :attr:`ServiceServer.port`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.service.daemon import SchedulerDaemon
from repro.service.ingest import parse_submission
from repro.service.trace import AdmissionError, ServiceError

__all__ = ["ServiceServer"]

#: Largest request body accepted (a JSONL window can be big, but not infinite).
_MAX_BODY_BYTES = 32 * 1024 * 1024


class _Server(ThreadingHTTPServer):
    """The listener socket plus the shared daemon the handlers call into."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], daemon: SchedulerDaemon,
                 drain_timeout: float):
        super().__init__(address, _Handler)
        self.scheduler_daemon = daemon
        self.drain_timeout = drain_timeout


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request; ``self.server.scheduler_daemon`` is the shared daemon."""

    server: "_Server"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; telemetry is the observability surface

    def _reply(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._reply(413, {"error": f"body exceeds {_MAX_BODY_BYTES} bytes"})
            return None
        return self.rfile.read(length)

    # -- routes ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/telemetry":
            self._reply(200, self.server.scheduler_daemon.telemetry())
        elif self.path == "/healthz":
            self._reply(200, self.server.scheduler_daemon.healthz())
        else:
            self._reply(404, {"error": f"unknown endpoint {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/submit":
            self._submit()
        elif self.path == "/stream":
            self._stream()
        elif self.path == "/drain":
            self._drain()
        else:
            self._reply(404, {"error": f"unknown endpoint {self.path}"})

    def _submit(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"malformed JSON: {exc}"})
            return
        try:
            request = parse_submission(payload)
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
            return
        try:
            job_id, release = self.server.scheduler_daemon.submit(request)
        except ValueError as exc:
            # Duplicate client_id / unhosted databank: the client's fault.
            self._reply(409, {"error": str(exc)})
            return
        except AdmissionError as exc:
            # Load shed: transient overload, retry after the back-off.
            self._reply(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
            return
        except ServiceError as exc:
            # Stream closed: the daemon is draining -- permanent for this
            # daemon's lifetime, so a conflict, not a retryable 503.
            self._reply(409, {"error": str(exc), "draining": True})
            return
        self._reply(200, {"job_id": job_id, "release": release})

    def _stream(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            self._reply(400, {"error": f"body is not UTF-8: {exc}"})
            return
        report = self.server.scheduler_daemon.ingest(text.splitlines())
        self._reply(200, report.as_dict())

    def _drain(self) -> None:
        daemon = self.server.scheduler_daemon
        daemon.close_submissions()
        try:
            result = daemon.join(timeout=self.server.drain_timeout)
        except ServiceError as exc:
            self._reply(503, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 - engine failure -> client
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._reply(
            200,
            {
                "status": "drained",
                "n_jobs": len(result.completions),
                "metrics": result.metrics_row(),
                "n_decisions": result.n_decisions,
            },
        )


class ServiceServer:
    """The daemon plus its HTTP listener, each on their own threads.

    ``port=0`` (default) binds an ephemeral free port; read
    :attr:`port`/:attr:`url` after construction.  Use as a context manager
    or call :meth:`shutdown` explicitly.
    """

    def __init__(
        self,
        daemon: SchedulerDaemon,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 60.0,
    ):
        self.daemon = daemon
        self.drain_timeout = drain_timeout
        self._httpd = _Server((host, port), daemon, drain_timeout)
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._http_thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the daemon's engine thread and the HTTP listener."""
        self.daemon.start()
        if self._http_thread is None:
            self._http_thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._http_thread.start()

    def shutdown(self) -> None:
        """Stop the listener; the daemon is left to its owner (join/stop)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
            self._http_thread = None

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
