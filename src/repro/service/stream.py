"""The live submission source: a thread-fed bridge into the engine kernel.

The daemon runs the simulation engine on its own thread; ingestion threads
(HTTP handlers, JSONL readers) hand submissions to a :class:`StreamingSource`
which the engine pulls through the :class:`~repro.simulation.source.SubmissionSource`
protocol.  One lock/condition pair guards everything, which closes the
admission race by construction: a release date is assigned *and* the job
appended to the pending list atomically with respect to the engine's pulls,
so the engine can never commit to advancing past a release it has not seen.

Two clock disciplines are supported:

* ``time_scale > 0`` -- *paced*: virtual time tracks the wall clock
  (``virtual = elapsed * time_scale``).  A bounded ``pull`` blocks until the
  wall clock reaches the requested horizon, which is what paces the engine;
  submissions arriving meanwhile wake it early and are admitted at the
  current virtual time.
* ``time_scale = 0`` -- *free-run*: virtual time races ahead as fast as the
  engine can step; a submission is admitted at the engine's current
  committed *floor* (the largest horizon the engine has synced past).  This
  is the mode the smoke test and the deterministic tests use.

Either way releases are monotone non-decreasing in admission order, which is
the :class:`~repro.core.instance.LiveInstance` invariant and what keeps the
journaled trace replayable.
"""

from __future__ import annotations

import math
import threading
import time as _time
from typing import TYPE_CHECKING, Callable

from repro.service.trace import ServiceError
from repro.simulation.clock import SIMULTANEITY_TOL, EventQueue
from repro.simulation.source import SubmissionSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job

__all__ = ["StreamingSource"]

#: How often a parked engine re-checks its condition (seconds).  Purely a
#: liveness backstop -- submissions and close() notify the condition -- so
#: the exact value only bounds shutdown latency on missed wakeups.
_POLL_SECONDS = 0.1


class StreamingSource(SubmissionSource):
    """Thread-safe submission source for the scheduler daemon.

    Parameters
    ----------
    time_scale:
        Virtual seconds per wall-clock second; ``0`` free-runs (see module
        docstring).
    on_pull:
        Optional callback invoked (outside the lock) at every engine pull;
        the daemon uses it to refresh its telemetry snapshot from the engine
        thread, where the simulation state may be read consistently.
    clock:
        Wall-clock source (monotonic seconds); injectable for tests.
    """

    def __init__(
        self,
        *,
        time_scale: float = 0.0,
        on_pull: Callable[[], None] | None = None,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if time_scale < 0:
            raise ServiceError(f"time_scale must be >= 0, got {time_scale}")
        self.time_scale = float(time_scale)
        self._clock = clock
        self._on_pull = on_pull
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: "list[Job]" = []
        self._closed = False
        self._floor = 0.0
        self._started_at: float | None = None

    # -- ingestion side (any thread) ----------------------------------------------
    def submit(self, build_job: "Callable[[float], Job]") -> "Job":
        """Admit one submission: assign its release date and stage it.

        ``build_job`` receives the assigned release date and must return the
        finished :class:`~repro.core.job.Job`; it runs *under the source
        lock*, so whatever bookkeeping it does (growing the live instance,
        journaling) is complete before the engine can possibly see the job.
        If it raises, nothing was staged.
        """
        with self._cond:
            if self._closed:
                raise ServiceError("the submission stream is closed")
            release = max(self._floor, self._virtual_now_locked())
            job = build_job(release)
            if job.release != release:  # pragma: no cover - defensive
                raise ServiceError(
                    f"build_job must use the assigned release {release}, "
                    f"got {job.release}"
                )
            self._pending.append(job)
            self._cond.notify_all()
            return job

    def close(self) -> None:
        """No further submissions; the engine drains what is pending and stops."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def virtual_now(self) -> float:
        """The admission clock's current virtual time (telemetry)."""
        with self._lock:
            return max(self._floor, self._virtual_now_locked())

    def pending_count(self) -> int:
        """Submissions staged but not yet pulled by the engine (telemetry)."""
        with self._lock:
            return len(self._pending)

    # -- engine side (the simulation thread) ----------------------------------------
    @property
    def exhausted(self) -> bool:
        with self._lock:
            return self._closed and not self._pending

    def start(self, queue: EventQueue) -> None:
        with self._lock:
            if self._started_at is None:
                self._started_at = self._clock()

    def pull(self, now: float, until: float) -> "list[Job]":
        if self._on_pull is not None:
            # Outside the lock: the callback reads engine state and takes
            # the daemon's own telemetry lock.
            self._on_pull()
        with self._cond:
            while True:
                limit = until + SIMULTANEITY_TOL
                ready = [job for job in self._pending if job.release <= limit]
                if ready:
                    self._pending = [
                        job for job in self._pending if job.release > limit
                    ]
                    return ready
                if self._closed:
                    # Drain mode: no pacing, no floor bookkeeping -- nothing
                    # can be admitted anymore.
                    return []
                if math.isinf(until):
                    # Parked: nothing active, nothing queued.  Wait for a
                    # submission or close; the timeout is a liveness backstop.
                    self._cond.wait(timeout=_POLL_SECONDS)
                    continue
                if self.time_scale <= 0:
                    # Free-run: commit the horizon.  Submissions from now on
                    # are admitted at or after ``until`` (the engine is about
                    # to advance there), keeping releases monotone.
                    self._floor = max(self._floor, until)
                    return []
                # Paced: block until the wall clock reaches the horizon (or
                # a submission lands first and the loop re-checks).
                virtual = self._virtual_now_locked()
                if virtual >= until:
                    self._floor = max(self._floor, until)
                    return []
                wall_wait = (until - virtual) / self.time_scale
                self._cond.wait(timeout=min(wall_wait, _POLL_SECONDS))

    # -- internals -------------------------------------------------------------------
    def _virtual_now_locked(self) -> float:
        if self.time_scale <= 0:
            return self._floor
        if self._started_at is None:
            return 0.0
        return (self._clock() - self._started_at) * self.time_scale
