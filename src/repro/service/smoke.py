"""End-to-end service smoke test: ``python -m repro.service.smoke``.

Boots a real daemon behind a real HTTP listener on a free port, streams a
small submission trace at it over the wire (one ``POST /submit``, one
``POST /stream`` JSONL window including a malformed and a duplicate line),
polls ``GET /telemetry`` while the run is live, drains, and finally
verifies the journaled trace: replaying it through the service path must be
*bit-identical* to batch ``simulate()`` on the reconstructed instance.

Exits non-zero on any failure -- this is the CI ``service-smoke`` step.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any

from repro.core.platform import Platform
from repro.service.daemon import SchedulerDaemon, ServiceConfig, verify_replay
from repro.service.http import ServiceServer
from repro.service.trace import read_trace


def _post(url: str, data: bytes) -> tuple[int, dict[str, Any]]:
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _get(url: str) -> dict[str, Any]:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def _fail(message: str) -> None:
    print(f"service-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    platform = Platform.from_clusters(
        [
            (2, 1.0, ("SWISS-PROT", "NT")),
            (2, 1.5, ("PDB", "NT")),
        ]
    )
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "smoke-trace.jsonl"
        daemon = SchedulerDaemon(
            platform,
            ServiceConfig(scheduler="online", journal=str(journal)),
        )
        with ServiceServer(daemon) as server:
            print(f"service-smoke: daemon listening on {server.url}")

            # One direct submission.
            status, reply = _post(
                f"{server.url}/submit",
                json.dumps(
                    {"size": 40.0, "databank": "SWISS-PROT", "client_id": "req-0"}
                ).encode(),
            )
            if status != 200 or reply.get("job_id") != 0:
                _fail(f"/submit gave {status} {reply}")

            # A JSONL window: three good lines, one malformed, one duplicate.
            window = "\n".join(
                [
                    json.dumps({"size": 25.0, "databank": "PDB", "client_id": "req-1"}),
                    "{this is not json",
                    json.dumps({"size": 60.0, "databank": "NT", "client_id": "req-2"}),
                    json.dumps({"size": 9.0, "databank": "PDB", "client_id": "req-1"}),
                    json.dumps({"size": 15.0, "databank": "SWISS-PROT"}),
                ]
            )
            status, report = _post(f"{server.url}/stream", window.encode())
            if status != 200:
                _fail(f"/stream gave {status} {report}")
            if report["accepted"] != 3 or report["rejected"] != 2:
                _fail(f"/stream accounting wrong: {report}")

            telemetry = _get(f"{server.url}/telemetry")
            if telemetry["accepted"] != 4 or telemetry["rejected"] != 2:
                _fail(f"telemetry counters wrong: {telemetry}")
            if "lp" not in telemetry or "queue_depth_by_databank" not in telemetry:
                _fail(f"telemetry missing sections: {sorted(telemetry)}")
            print(
                "service-smoke: telemetry ok "
                f"(accepted={telemetry['accepted']}, rejected={telemetry['rejected']}, "
                f"S*={telemetry['max_stretch_objective']})"
            )

            status, drained = _post(f"{server.url}/drain", b"")
            if status != 200 or drained.get("n_jobs") != 4:
                _fail(f"/drain gave {status} {drained}")
            print(
                "service-smoke: drained "
                f"(max_stretch={drained['metrics']['max_stretch']:.4f})"
            )

        trace = read_trace(journal)
        if len(trace) != 4:
            _fail(f"journal holds {len(trace)} submissions, expected 4")
        check = verify_replay(trace)
        if not check.identical:
            _fail(f"replay is not bit-identical to batch: {check.detail}")
        print(f"service-smoke: replay verified ({check.detail})")
    print("service-smoke: PASS")


if __name__ == "__main__":
    main()
