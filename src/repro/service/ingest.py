"""Submission ingestion: decoding client records with per-record accounting.

The daemon accepts submissions as JSON objects -- one per HTTP POST, or one
per line on a JSONL stream (the windowed-ingest shape: a malformed or
duplicate line is *rejected and counted*, never fatal, and never perturbs
the jobs already admitted).  This module owns the decoding and validation;
the daemon owns admission (release-date assignment, duplicate tracking,
journaling).

A client record looks like::

    {"size": 120.5, "databank": "SWISS-PROT", "weight": null,
     "name": "blast-1234", "client_id": "req-42"}

``size`` is required and must be a positive number.  ``client_id`` is the
optional idempotency key: the daemon rejects a repeated ``client_id`` as a
duplicate (exactly-once admission over at-least-once transports).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "SubmissionRequest",
    "RecordError",
    "IngestReport",
    "parse_submission",
    "ingest_lines",
]

#: Fields a submission record may carry; anything else is rejected (typo
#: protection -- a misspelled ``databnak`` must not silently drop the
#: placement constraint).
_ALLOWED_FIELDS = frozenset({"size", "databank", "weight", "name", "client_id"})


@dataclass(frozen=True)
class SubmissionRequest:
    """A validated client submission, before admission.

    The release date is *not* here: it is assigned by the daemon's admission
    clock at the moment the job is accepted.
    """

    size: float
    databank: str | None = None
    weight: float | None = None
    name: str = ""
    client_id: str | None = None


@dataclass(frozen=True)
class RecordError:
    """One rejected record: where it came from and why."""

    line_no: int
    reason: str
    raw: str = ""


@dataclass
class IngestReport:
    """Accounting of one ingestion window (a batch of JSONL lines)."""

    accepted: int = 0
    rejected: int = 0
    errors: list[RecordError] = field(default_factory=list)
    #: ``(line_no, job_id, release)`` per accepted record, in input order.
    admissions: list[tuple[int, int, float]] = field(default_factory=list)

    def reject(self, line_no: int, reason: str, raw: str = "") -> None:
        self.rejected += 1
        self.errors.append(RecordError(line_no=line_no, reason=reason, raw=raw[:200]))

    def as_dict(self) -> dict[str, Any]:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": [
                {"line": e.line_no, "reason": e.reason, "raw": e.raw}
                for e in self.errors
            ],
            "admissions": [
                {"line": line_no, "job_id": job_id, "release": release}
                for line_no, job_id, release in self.admissions
            ],
        }


def parse_submission(payload: Mapping[str, Any]) -> SubmissionRequest:
    """Validate a decoded JSON object into a :class:`SubmissionRequest`.

    Raises ``ValueError`` with a client-presentable message on any problem.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("submission must be a JSON object")
    unknown = set(payload) - _ALLOWED_FIELDS
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(sorted(unknown))}")
    if "size" not in payload:
        raise ValueError("missing required field 'size'")
    size = payload["size"]
    if isinstance(size, bool) or not isinstance(size, (int, float)):
        raise ValueError("'size' must be a number")
    if not size > 0 or size != size or size == float("inf"):
        raise ValueError("'size' must be a positive finite number")
    databank = payload.get("databank")
    if databank is not None and not isinstance(databank, str):
        raise ValueError("'databank' must be a string or null")
    weight = payload.get("weight")
    if weight is not None:
        if isinstance(weight, bool) or not isinstance(weight, (int, float)):
            raise ValueError("'weight' must be a number or null")
        if not weight > 0:
            raise ValueError("'weight' must be positive")
    name = payload.get("name", "")
    if not isinstance(name, str):
        raise ValueError("'name' must be a string")
    client_id = payload.get("client_id")
    if client_id is not None and not isinstance(client_id, str):
        raise ValueError("'client_id' must be a string or null")
    return SubmissionRequest(
        size=float(size),
        databank=databank,
        weight=None if weight is None else float(weight),
        name=name,
        client_id=client_id,
    )


def ingest_lines(
    lines: Iterable[str],
    admit: "Callable[[SubmissionRequest], tuple[int, float]]",
    *,
    first_line_no: int = 1,
) -> IngestReport:
    """Feed a window of JSONL lines through ``admit``, accounting per record.

    ``admit`` takes a validated :class:`SubmissionRequest` and returns the
    ``(job_id, release)`` of the accepted job; it raises ``ValueError`` (or
    a :class:`~repro.service.trace.ServiceError`) to reject -- e.g. a
    duplicate ``client_id`` or an unhosted databank.  Rejections are counted
    and described in the report; they never stop the window and never touch
    jobs admitted earlier (each record is admitted independently).
    """
    from repro.service.trace import ServiceError

    report = IngestReport()
    for line_no, line in enumerate(lines, start=first_line_no):
        text = line.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            report.reject(line_no, f"malformed JSON: {exc}", text)
            continue
        try:
            request = parse_submission(payload)
        except ValueError as exc:
            report.reject(line_no, str(exc), text)
            continue
        try:
            job_id, release = admit(request)
        except (ValueError, ServiceError) as exc:
            report.reject(line_no, str(exc), text)
            continue
        report.accepted += 1
        report.admissions.append((line_no, job_id, release))
    return report
