"""The streaming-arrival scheduler daemon.

:class:`SchedulerDaemon` runs the fluid simulation engine on a background
thread against a :class:`~repro.core.instance.LiveInstance` fed by a
:class:`~repro.service.stream.StreamingSource`.  Ingestion threads (HTTP
handlers, JSONL readers, direct :meth:`SchedulerDaemon.submit` calls) admit
jobs while the engine runs; the engine sees each submission exactly at the
release date the admission clock assigned, and every accepted submission is
journaled to a replayable :class:`~repro.service.trace.SubmissionTrace`.

The determinism contract lives here too: :func:`replay_trace` feeds a
journaled trace back through the service loop (incremental delivery, live
instance growth) and :func:`batch_reference` runs plain ``simulate()`` on
the reconstructed batch instance; :func:`verify_replay` asserts the two
schedules are *bit-identical* -- exact float equality on every work slice
and completion date.  This is what the ingestion tests and the CI
service-smoke step check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.core.instance import LiveInstance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.options import OnOff, SolverBackendChoice
from repro.schedulers.policies import parse_policy
from repro.schedulers.registry import (
    LP_SOLVER_SCHEDULERS,
    ONLINE_LP_SCHEDULERS,
    SERVICE_SCHEDULERS,
    make_scheduler,
)
from repro.service.ingest import IngestReport, SubmissionRequest, ingest_lines
from repro.service.stream import StreamingSource
from repro.service.trace import AdmissionError, ServiceError, SubmissionTrace, TraceWriter
from repro.simulation.engine import SimulationEngine, simulate
from repro.simulation.result import SimulationResult
from repro.simulation.source import TraceSource

__all__ = [
    "ServiceConfig",
    "SchedulerDaemon",
    "ReplayCheck",
    "replay_trace",
    "batch_reference",
    "verify_replay",
]

#: Replans observed before the latency valve may shed: a cold daemon's first
#: few solves include import and model-build costs that say nothing about
#: steady-state replan latency.
_SHED_MIN_REPLANS = 5


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of one daemon run.

    ``scheduler`` must be service-safe (``SERVICE_SCHEDULERS``): strategies
    whose ``reset`` reads whole-instance quantities (the clairvoyant
    off-line optima, the Bender heuristics and their ``Δ``) cannot run
    against an instance that grows while they schedule.

    ``time_scale`` is the admission clock discipline of
    :class:`~repro.service.stream.StreamingSource`: ``0`` free-runs (tests,
    replay verification), ``> 0`` paces virtual time against the wall clock.

    ``max_pending`` and ``shed_replan_p99`` form the admission valve: a
    submission arriving while more than ``max_pending`` admitted jobs are
    still waiting for delivery, or while the replan-latency p99 (from the
    live telemetry) exceeds the target, is *shed* --
    :class:`~repro.service.trace.AdmissionError`, HTTP ``503`` with a
    ``Retry-After`` of ``retry_after`` seconds.  Shedding protects the
    latency of the jobs already admitted; both knobs default to off
    (``None``), preserving the accept-everything behaviour.
    """

    scheduler: str = "online"
    replan_policy: str = "on-arrival"
    incremental_lp: bool = True
    solver_backend: "SolverBackendChoice | str" = SolverBackendChoice.AUTO
    speculation: "OnOff | bool | str" = OnOff.OFF
    time_scale: float = 0.0
    journal: str | None = None
    record_events: bool = False
    max_pending: int | None = None
    shed_replan_p99: float | None = None
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        key = self.scheduler.lower()
        if key not in SERVICE_SCHEDULERS:
            raise ServiceError(
                f"scheduler {self.scheduler!r} is not service-safe; choose one of: "
                + ", ".join(sorted(SERVICE_SCHEDULERS))
            )
        object.__setattr__(self, "scheduler", key)
        try:
            parse_policy(self.replan_policy)
        except ValueError as exc:
            raise ServiceError(str(exc)) from None
        try:
            object.__setattr__(
                self,
                "solver_backend",
                SolverBackendChoice.coerce(self.solver_backend, param="solver_backend"),
            )
            object.__setattr__(
                self, "speculation", OnOff.coerce(self.speculation, param="speculation")
            )
        except ValueError as exc:
            raise ServiceError(str(exc)) from None
        if self.time_scale < 0:
            raise ServiceError(f"time_scale must be >= 0, got {self.time_scale}")
        if self.max_pending is not None and self.max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.shed_replan_p99 is not None and self.shed_replan_p99 <= 0:
            raise ServiceError(
                f"shed_replan_p99 must be > 0, got {self.shed_replan_p99}"
            )
        if self.retry_after <= 0:
            raise ServiceError(f"retry_after must be > 0, got {self.retry_after}")

    def scheduler_options(self) -> dict[str, Any]:
        """Constructor options for :func:`make_scheduler` -- JSON-safe.

        These go into the trace header verbatim, so they must round-trip
        through JSON (plain str/bool only).  The cross-run solver-state
        bank is deliberately absent: it is a campaign-layer accelerator
        with no meaning for a single resident daemon.
        """
        options: dict[str, Any] = {}
        if self.scheduler in LP_SOLVER_SCHEDULERS:
            options["solver_backend"] = str(self.solver_backend)
        if self.scheduler in ONLINE_LP_SCHEDULERS:
            options["policy"] = self.replan_policy
            options["incremental"] = self.incremental_lp
            options["speculate"] = bool(self.speculation)
        return options


class SchedulerDaemon:
    """A resident scheduler: live instance + engine thread + admission clock.

    Lifecycle::

        daemon = SchedulerDaemon(platform, ServiceConfig(journal="run.jsonl"))
        daemon.start()
        daemon.submit(SubmissionRequest(size=120.0, databank="SWISS-PROT"))
        ...
        daemon.close_submissions()   # drain: no further admissions
        result = daemon.join()       # the finished SimulationResult

    Thread model: ``submit``/``ingest`` may be called from any number of
    threads; the release date, the live-instance growth and the journal
    append happen atomically under the streaming source's lock, so the
    engine can never advance past a release it has not seen.  Telemetry is
    refreshed by the engine thread at every source pull and read under its
    own lock, so :meth:`telemetry` never touches simulation state directly.
    """

    def __init__(self, platform: Platform, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.instance = LiveInstance(platform)
        self.source = StreamingSource(
            time_scale=self.config.time_scale, on_pull=self._refresh_telemetry
        )
        self.scheduler = make_scheduler(
            self.config.scheduler, **self.config.scheduler_options()
        )
        self.engine = SimulationEngine(
            self.instance,
            self.scheduler,
            record_events=self.config.record_events,
            source=self.source,
        )
        self._writer: TraceWriter | None = None
        if self.config.journal is not None:
            self._writer = TraceWriter(
                self.config.journal,
                SubmissionTrace(
                    platform=platform,
                    scheduler=self.config.scheduler,
                    scheduler_options=self.config.scheduler_options(),
                    time_scale=self.config.time_scale,
                ),
            )
        self._admit_lock = threading.Lock()
        self._next_id = 0
        self._client_ids: set[str] = set()
        self._accepted = 0
        self._rejected = 0
        self._shed = 0
        self._telemetry_lock = threading.Lock()
        self._snapshot: dict[str, Any] = {
            "time": 0.0,
            "n_active": 0,
            "n_completed": 0,
            "queue_depth_by_databank": {},
            "max_stretch_objective": None,
            "assignment": {},
        }
        self._thread: threading.Thread | None = None
        self._result: SimulationResult | None = None
        self._error: BaseException | None = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Launch the engine thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run_engine, name="repro-scheduler-daemon", daemon=True
        )
        self._thread.start()

    def _run_engine(self) -> None:
        try:
            self._result = self.engine.run()
        except BaseException as exc:  # noqa: BLE001 - surfaced by join()
            self._error = exc
        finally:
            if self._writer is not None:
                self._writer.close()

    def close_submissions(self) -> None:
        """Stop accepting; the engine drains what was admitted and finishes."""
        self.source.close()

    def join(self, timeout: float | None = None) -> SimulationResult:
        """Wait for the engine to finish and return its result.

        Raises :class:`ServiceError` if the daemon was never started or is
        still running after ``timeout``; re-raises the engine's exception
        if the run failed.
        """
        if self._thread is None:
            raise ServiceError("daemon was never started")
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServiceError("daemon is still running (submissions not closed?)")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self) -> SimulationResult:
        """Convenience: close submissions and join."""
        self.close_submissions()
        return self.join()

    # -- admission ---------------------------------------------------------------
    def _check_admission(self) -> None:
        """The load-shedding valve; raises :class:`AdmissionError` to shed.

        Two independent triggers, both optional (see :class:`ServiceConfig`):
        a bounded count of admitted-but-undelivered jobs, and the live
        replan-latency p99 exceeding its target (only once
        ``_SHED_MIN_REPLANS`` replans have been observed, so a cold daemon
        never sheds on one slow warm-up solve).
        """
        config = self.config
        if config.max_pending is not None:
            pending = self.source.pending_count()
            if pending >= config.max_pending:
                raise AdmissionError(
                    f"queue full ({pending} pending >= max_pending="
                    f"{config.max_pending})",
                    retry_after=config.retry_after,
                )
        if config.shed_replan_p99 is not None:
            stats = self.engine.lp_stats
            if stats is not None and len(stats.replan_latencies) >= _SHED_MIN_REPLANS:
                p99 = stats.replan_percentile(99)
                if p99 > config.shed_replan_p99:
                    raise AdmissionError(
                        f"replan latency over target (p99 {p99:.4f}s > "
                        f"{config.shed_replan_p99}s)",
                        retry_after=config.retry_after,
                    )

    def submit(self, request: SubmissionRequest) -> tuple[int, float]:
        """Admit one validated submission; returns ``(job_id, release)``.

        Raises ``ValueError`` on a duplicate ``client_id`` or an unhosted
        databank, :class:`AdmissionError` when the admission valve sheds
        the request (overload -- retryable), plain :class:`ServiceError`
        once the stream is closed (draining -- not retryable).  Any
        rejection leaves all previously admitted jobs untouched.
        """
        with self._admit_lock:
            if not self.source.closed:
                # Draining outranks shedding: a closed stream must surface
                # as the permanent condition, not a transient 503.
                try:
                    self._check_admission()
                except AdmissionError:
                    self._shed += 1
                    self._rejected += 1
                    raise
            if request.client_id is not None and request.client_id in self._client_ids:
                self._rejected += 1
                raise ValueError(f"duplicate client_id {request.client_id!r}")
            if not self.instance.platform.machines_hosting(request.databank):
                self._rejected += 1
                raise ValueError(
                    f"databank {request.databank!r} is hosted on no machine"
                )
            job_id = self._next_id

            def build(release: float) -> Job:
                job = Job(
                    job_id=job_id,
                    release=release,
                    size=request.size,
                    databank=request.databank,
                    weight=request.weight,
                    name=request.name,
                )
                # Under the source lock: the engine cannot observe the job
                # until instance growth and journaling are both complete.
                self.instance.admit(job)
                if self._writer is not None:
                    self._writer.append(job)
                return job

            try:
                job = self.source.submit(build)
            except ServiceError:
                self._rejected += 1
                raise
            self._next_id += 1
            if request.client_id is not None:
                self._client_ids.add(request.client_id)
            self._accepted += 1
            return job.job_id, job.release

    def ingest(self, lines: Iterable[str], *, first_line_no: int = 1) -> IngestReport:
        """Feed a JSONL window through admission with per-record accounting.

        Malformed and duplicate lines are rejected (and counted in the
        report and the daemon's totals) without stopping the window, killing
        the daemon, or perturbing the jobs already admitted.
        """
        before = self._rejected

        def admit(request: SubmissionRequest) -> tuple[int, float]:
            return self.submit(request)

        report = ingest_lines(lines, admit, first_line_no=first_line_no)
        # ``submit`` counted its own rejections (duplicates, unhosted
        # databanks); parse-level rejections never reached it.
        parse_rejections = report.rejected - (self._rejected - before)
        if parse_rejections > 0:
            with self._admit_lock:
                self._rejected += parse_rejections
        return report

    # -- telemetry ---------------------------------------------------------------
    def _refresh_telemetry(self) -> None:
        """Engine-thread hook (every source pull): snapshot the live state."""
        state = self.engine.state
        by_databank: dict[str, int] = {}
        for runtime in state.active.values():
            key = runtime.job.databank or ""
            by_databank[key] = by_databank.get(key, 0) + 1
        snapshot = {
            "time": state.time,
            "n_active": len(state.active),
            "n_completed": len(state.completions),
            "queue_depth_by_databank": by_databank,
            "max_stretch_objective": getattr(self.scheduler, "last_objective", None),
            "assignment": dict(self.engine.last_assignment),
        }
        with self._telemetry_lock:
            self._snapshot = snapshot

    def telemetry(self) -> dict[str, Any]:
        """The JSON-ready telemetry document served by ``GET /telemetry``.

        Carries the current max-stretch objective ``S*`` (``None`` for
        LP-free schedulers), the LP probe-elimination histogram, per-databank
        queue depths and the replan-latency percentiles, plus admission
        counters.
        """
        with self._telemetry_lock:
            snapshot = dict(self._snapshot)
        stats = self.engine.lp_stats
        lp: dict[str, Any] = {
            "n_probes": 0,
            "solve_seconds": 0.0,
            "histogram": {},
            "n_replans": 0,
            "replan_latency_p50": 0.0,
            "replan_latency_p90": 0.0,
            "replan_latency_p99": 0.0,
            "speculation_hit_rate": 0.0,
        }
        if stats is not None:
            lp = {
                "n_probes": stats.n_probes,
                "solve_seconds": stats.solve_seconds,
                "histogram": stats.histogram(),
                "n_replans": len(stats.replan_latencies),
                "replan_latency_p50": stats.replan_percentile(50),
                "replan_latency_p90": stats.replan_percentile(90),
                "replan_latency_p99": stats.replan_percentile(99),
                "speculation_hit_rate": stats.speculation_hit_rate,
            }
        with self._admit_lock:
            accepted, rejected, shed = self._accepted, self._rejected, self._shed
        return {
            "scheduler": self.config.scheduler,
            "running": self.running,
            "accepted": accepted,
            "rejected": rejected,
            "shed": shed,
            "pending": self.source.pending_count(),
            "virtual_now": self.source.virtual_now(),
            "closed": self.source.closed,
            "lp": lp,
            **snapshot,
        }

    def healthz(self) -> dict[str, Any]:
        """The liveness/readiness document served by ``GET /healthz``.

        ``status`` is ``accepting`` (ready for submissions), ``draining``
        (stream closed, engine finishing what was admitted), ``stopped``
        (engine finished cleanly) or ``failed`` (engine raised; the error
        string is included).  Cheap by construction -- counters and flags
        only, no simulation state is touched.
        """
        if self._error is not None:
            status = "failed"
        elif self._thread is not None and not self._thread.is_alive():
            status = "stopped"
        elif self.source.closed:
            status = "draining"
        else:
            status = "accepting"
        with self._admit_lock:
            accepted, shed = self._accepted, self._shed
        doc: dict[str, Any] = {
            "status": status,
            "running": self.running,
            "accepted": accepted,
            "shed": shed,
            "pending": self.source.pending_count(),
        }
        if self._error is not None:
            doc["error"] = f"{type(self._error).__name__}: {self._error}"
        return doc


# -- the determinism contract -------------------------------------------------------
def replay_trace(
    trace: SubmissionTrace, *, record_events: bool = False
) -> SimulationResult:
    """Re-run a journaled trace through the *service* path.

    The jobs flow through a :class:`~repro.simulation.source.TraceSource`
    growing a fresh :class:`~repro.core.instance.LiveInstance`, exactly as
    the daemon's engine saw them -- incremental delivery, incremental
    LP-table growth and all.
    """
    live = LiveInstance(trace.platform)
    source = TraceSource(trace.jobs, live_instance=live)
    scheduler = make_scheduler(trace.scheduler, **trace.scheduler_options)
    engine = SimulationEngine(
        live, scheduler, record_events=record_events, source=source
    )
    return engine.run()


def batch_reference(trace: SubmissionTrace) -> SimulationResult:
    """Run plain batch ``simulate()`` on the trace's reconstructed instance."""
    scheduler = make_scheduler(trace.scheduler, **trace.scheduler_options)
    return simulate(trace.reconstruct_instance(), scheduler)


def _schedule_signature(result: SimulationResult) -> list[tuple[float, ...]]:
    return sorted(
        (s.job_id, s.machine_id, s.start, s.end, s.work) for s in result.schedule
    )


@dataclass
class ReplayCheck:
    """Outcome of one replay-vs-batch bit-identity verification."""

    identical: bool
    detail: str
    replay: SimulationResult = field(repr=False)
    batch: SimulationResult = field(repr=False)

    def as_dict(self) -> dict[str, Any]:
        return {
            "identical": self.identical,
            "detail": self.detail,
            "replay_max_stretch": self.replay.max_stretch,
            "batch_max_stretch": self.batch.max_stretch,
        }


def verify_replay(trace: SubmissionTrace) -> ReplayCheck:
    """Replay ``trace`` through the service path and diff against batch mode.

    The comparison is *exact* (no tolerance): every work slice's
    ``(job, machine, start, end, work)`` and every completion date must be
    bit-identical floats, which is the service-mode contract.
    """
    replay = replay_trace(trace)
    batch = batch_reference(trace)
    if replay.completions != batch.completions:
        diff = {
            j: (replay.completions.get(j), batch.completions.get(j))
            for j in set(replay.completions) | set(batch.completions)
            if replay.completions.get(j) != batch.completions.get(j)
        }
        return ReplayCheck(
            identical=False,
            detail=f"completion dates differ for jobs {sorted(diff)}",
            replay=replay,
            batch=batch,
        )
    sig_replay = _schedule_signature(replay)
    sig_batch = _schedule_signature(batch)
    if sig_replay != sig_batch:
        return ReplayCheck(
            identical=False,
            detail="work slices differ between replay and batch",
            replay=replay,
            batch=batch,
        )
    return ReplayCheck(
        identical=True,
        detail=f"{len(trace)} submissions, {len(sig_batch)} slices bit-identical",
        replay=replay,
        batch=batch,
    )
