"""Service mode: the streaming-arrival scheduler daemon.

The package turns the batch simulator into a resident service:

* :mod:`repro.service.stream` -- the thread-fed
  :class:`~repro.simulation.source.SubmissionSource` bridging ingestion
  threads into the engine kernel;
* :mod:`repro.service.ingest` -- JSON/JSONL decoding with per-record error
  accounting;
* :mod:`repro.service.trace` -- the replayable submission journal;
* :mod:`repro.service.daemon` -- the resident engine plus the
  replay-vs-batch bit-identity contract;
* :mod:`repro.service.http` -- the stdlib HTTP surface
  (``/submit``, ``/stream``, ``/telemetry``, ``/healthz``, ``/drain``);
* :mod:`repro.service.smoke` -- the end-to-end CI smoke test.
"""

from repro.service.daemon import (
    ReplayCheck,
    SchedulerDaemon,
    ServiceConfig,
    batch_reference,
    replay_trace,
    verify_replay,
)
from repro.service.http import ServiceServer
from repro.service.ingest import (
    IngestReport,
    RecordError,
    SubmissionRequest,
    ingest_lines,
    parse_submission,
)
from repro.service.stream import StreamingSource
from repro.service.trace import (
    AdmissionError,
    ServiceError,
    SubmissionTrace,
    TraceWriter,
    read_trace,
)

__all__ = [
    "ServiceError",
    "AdmissionError",
    "ServiceConfig",
    "SchedulerDaemon",
    "ServiceServer",
    "StreamingSource",
    "SubmissionRequest",
    "SubmissionTrace",
    "TraceWriter",
    "IngestReport",
    "RecordError",
    "ReplayCheck",
    "ingest_lines",
    "parse_submission",
    "read_trace",
    "replay_trace",
    "batch_reference",
    "verify_replay",
]
