"""The replayable submission trace: the daemon's determinism anchor.

Every submission the daemon accepts is journaled, append-and-flush, to a
JSONL trace file.  The trace captures everything needed to reconstruct the
run after the fact:

* a **header** line with the platform (explicit machine list -- floats
  round-trip exactly through JSON's ``repr``-based encoding), the scheduler
  key and its constructor options;
* one **submission** line per accepted job, carrying the exact release date
  the admission clock assigned.

Two consumers exist, and agreeing is the service-mode contract:

* :func:`repro.service.daemon.replay_trace` feeds the jobs back through the
  service loop (a :class:`~repro.simulation.source.TraceSource` growing a
  :class:`~repro.core.instance.LiveInstance`), and
* :meth:`SubmissionTrace.reconstruct_instance` materializes the plain batch
  :class:`~repro.core.instance.Instance` for ``simulate()``.

Replaying the former must produce a schedule bit-identical to the latter --
enforced by ``tests/test_service.py`` and the CI service-smoke step.

Like the campaign checkpoint journal, the reader tolerates a truncated
*final* line (the writer may have been killed mid-append); anything else
malformed raises :class:`ServiceError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable, Mapping

from repro.core.errors import ReproError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform

__all__ = [
    "ServiceError",
    "AdmissionError",
    "TRACE_KIND",
    "TRACE_VERSION",
    "SubmissionTrace",
    "TraceWriter",
    "platform_payload",
    "platform_from_payload",
    "job_payload",
    "job_from_payload",
    "read_trace",
]

TRACE_KIND = "repro-service-trace"
TRACE_VERSION = 1


class ServiceError(ReproError):
    """A service-mode operation failed (malformed trace, bad submission, ...)."""


class AdmissionError(ServiceError):
    """A submission was load-shed by the daemon's admission valve.

    Not the client's fault and not permanent: the queue is full or the
    replan latency is over target right now.  ``retry_after`` is the
    suggested back-off in seconds (served as the HTTP ``Retry-After``
    header on the 503 response).
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


# -- payload codecs ---------------------------------------------------------------
def platform_payload(platform: Platform) -> list[dict[str, Any]]:
    """The platform as a JSON-ready machine list (exact float round-trip)."""
    return [
        {
            "id": m.machine_id,
            "cycle_time": m.cycle_time,
            "cluster": m.cluster_id,
            "databanks": sorted(m.databanks),
            "name": m.name,
        }
        for m in platform
    ]


def platform_from_payload(payload: Iterable[Mapping[str, Any]]) -> Platform:
    """Inverse of :func:`platform_payload`."""
    return Platform(
        Machine(
            machine_id=int(entry["id"]),
            cycle_time=float(entry["cycle_time"]),
            cluster_id=int(entry.get("cluster", 0)),
            databanks=frozenset(entry.get("databanks", ())),
            name=str(entry.get("name", "")),
        )
        for entry in payload
    )


def job_payload(job: Job) -> dict[str, Any]:
    """One accepted submission as a JSON-ready record."""
    return {
        "kind": "submission",
        "id": job.job_id,
        "release": job.release,
        "size": job.size,
        "databank": job.databank,
        "weight": job.weight,
        "name": job.name,
    }


def job_from_payload(payload: Mapping[str, Any]) -> Job:
    """Inverse of :func:`job_payload`."""
    weight = payload.get("weight")
    return Job(
        job_id=int(payload["id"]),
        release=float(payload["release"]),
        size=float(payload["size"]),
        databank=payload.get("databank"),
        weight=None if weight is None else float(weight),
        name=str(payload.get("name", "")),
    )


# -- the trace object --------------------------------------------------------------
class SubmissionTrace:
    """A fully parsed submission trace: header metadata plus accepted jobs."""

    def __init__(
        self,
        *,
        platform: Platform,
        scheduler: str,
        scheduler_options: Mapping[str, Any] | None = None,
        jobs: Iterable[Job] = (),
        time_scale: float = 0.0,
    ):
        self._platform = platform
        self.scheduler = scheduler
        self.scheduler_options: dict[str, Any] = dict(scheduler_options or {})
        self.jobs: list[Job] = sorted(jobs, key=lambda j: (j.release, j.job_id))
        self.time_scale = float(time_scale)

    @property
    def platform(self) -> Platform:
        return self._platform

    def header(self) -> dict[str, Any]:
        return {
            "kind": TRACE_KIND,
            "version": TRACE_VERSION,
            "scheduler": self.scheduler,
            "scheduler_options": dict(self.scheduler_options),
            "time_scale": self.time_scale,
            "platform": platform_payload(self._platform),
        }

    def reconstruct_instance(self) -> Instance:
        """The batch instance this trace describes (for ``simulate()``)."""
        return Instance(self.jobs, self._platform)

    def __len__(self) -> int:
        return len(self.jobs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubmissionTrace({len(self.jobs)} submissions, "
            f"scheduler={self.scheduler!r})"
        )


# -- writing ---------------------------------------------------------------------
class TraceWriter:
    """Append-and-flush journal of accepted submissions.

    The header goes out at construction; every :meth:`append` writes one
    line and flushes, so a killed daemon loses at most the submission being
    written (whose client never got an acknowledgement).
    """

    def __init__(self, path: "str | Path", trace: SubmissionTrace):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(trace.header()) + "\n")
        self._fh.flush()

    def append(self, job: Job) -> None:
        if self._fh is None:  # pragma: no cover - defensive
            raise ServiceError("trace writer is closed")
        self._fh.write(json.dumps(job_payload(job)) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- reading ---------------------------------------------------------------------
def read_trace(path: "str | Path") -> SubmissionTrace:
    """Parse a trace file back into a :class:`SubmissionTrace`.

    A truncated final line (no trailing newline, killed writer) is dropped;
    any other malformed content raises :class:`ServiceError`.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ServiceError(f"cannot read trace {path}: {exc}") from exc
    lines = raw.split("\n")
    if raw.endswith("\n"):
        lines = lines[:-1]
        truncated_tail = None
    else:
        truncated_tail = lines[-1]
        lines = lines[:-1]
    if not lines:
        if truncated_tail is not None:
            raise ServiceError(f"trace {path} holds only a truncated header")
        raise ServiceError(f"trace {path} is empty")

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ServiceError(f"trace {path} has a malformed header: {exc}") from None
    if not isinstance(header, dict) or header.get("kind") != TRACE_KIND:
        raise ServiceError(f"trace {path} is not a {TRACE_KIND} file")
    version = header.get("version")
    if version != TRACE_VERSION:
        raise ServiceError(
            f"trace {path} has unsupported version {version!r} "
            f"(this reader understands {TRACE_VERSION})"
        )

    try:
        platform = platform_from_payload(header["platform"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"trace {path} has a malformed platform: {exc}") from None

    jobs: list[Job] = []
    for line_no, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"trace {path}: malformed record at line {line_no}: {exc}"
            ) from None
        if not isinstance(record, dict) or record.get("kind") != "submission":
            raise ServiceError(
                f"trace {path}: unexpected record kind at line {line_no}"
            )
        try:
            jobs.append(job_from_payload(record))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"trace {path}: invalid submission at line {line_no}: {exc}"
            ) from None

    return SubmissionTrace(
        platform=platform,
        scheduler=str(header.get("scheduler", "online")),
        scheduler_options=header.get("scheduler_options") or {},
        jobs=jobs,
        time_scale=float(header.get("time_scale", 0.0)),
    )
