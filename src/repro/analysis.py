"""Post-simulation analysis helpers.

The paper's evaluation reports aggregate degradation factors; when *operating*
a platform (or debugging a new scheduling strategy) one usually wants a finer
view of a single run:

* the distribution of per-job stretches (quantiles, tail),
* a fairness index over the stretches (Jain's index: 1 = perfectly even
  service quality, 1/n = one job gets all the service quality),
* the backlog over time (how much released-but-unfinished work the system is
  carrying), which makes saturation and starvation visible,
* a per-databank breakdown (which reference databank's users are being hurt).

These helpers only consume a :class:`~repro.simulation.result.SimulationResult`
(or an instance plus completion times), so they work for any scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core import metrics as metrics_mod
from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.simulation.result import SimulationResult
from repro.utils.textable import TextTable

__all__ = [
    "StretchDistribution",
    "stretch_distribution",
    "jain_fairness_index",
    "backlog_timeline",
    "per_databank_stretch",
    "compare_results",
]


@dataclass(frozen=True)
class StretchDistribution:
    """Summary statistics of the per-job stretch values of one run."""

    n_jobs: int
    mean: float
    median: float
    p90: float
    p95: float
    maximum: float
    minimum: float
    fairness: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n_jobs": float(self.n_jobs),
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p95": self.p95,
            "max": self.maximum,
            "min": self.minimum,
            "fairness": self.fairness,
        }


def jain_fairness_index(values: Sequence[float] | Mapping[int, float]) -> float:
    """Jain's fairness index of a collection of positive values.

    :math:`J = (\\sum x_i)^2 / (n \\sum x_i^2)`; equals 1 when all values are
    identical and :math:`1/n` when a single value dominates.  Applied to the
    per-job stretches it quantifies how evenly the "slowdown pain" is spread
    across requests, which is exactly the fairness notion motivating the
    max-stretch objective.
    """
    if isinstance(values, Mapping):
        values = list(values.values())
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ModelError("fairness index of an empty collection is undefined")
    if np.any(array <= 0):
        raise ModelError("fairness index requires strictly positive values")
    return float(array.sum() ** 2 / (array.size * np.square(array).sum()))


def stretch_distribution(
    instance: Instance, completions: Mapping[int, float]
) -> StretchDistribution:
    """Distribution summary of the per-job stretches of one run."""
    stretches = metrics_mod.stretches(instance, completions)
    values = np.asarray(list(stretches.values()), dtype=float)
    return StretchDistribution(
        n_jobs=int(values.size),
        mean=float(values.mean()),
        median=float(np.median(values)),
        p90=float(np.percentile(values, 90)),
        p95=float(np.percentile(values, 95)),
        maximum=float(values.max()),
        minimum=float(values.min()),
        fairness=jain_fairness_index(values),
    )


def backlog_timeline(
    result: SimulationResult, *, resolution: int = 200
) -> list[tuple[float, float]]:
    """Released-but-unfinished work over time, sampled at ``resolution`` points.

    The backlog at time ``t`` is the total work of the jobs released by ``t``
    minus the work already executed by ``t`` (read off the schedule's slices).
    A backlog that keeps growing while the submission window is open indicates
    an overloaded system (density > 1); a backlog spike that persists reveals
    starvation-prone scheduling.
    """
    if resolution < 2:
        raise ModelError("resolution must be at least 2")
    instance = result.instance
    horizon = max(result.schedule.makespan(), max((j.release for j in instance.jobs), default=0.0))
    if horizon <= 0:
        return [(0.0, 0.0)]
    times = np.linspace(0.0, horizon, resolution)

    releases = np.asarray([j.release for j in instance.jobs])
    sizes = np.asarray([j.size for j in instance.jobs])
    slices = list(result.schedule)
    starts = np.asarray([s.start for s in slices]) if slices else np.zeros(0)
    ends = np.asarray([s.end for s in slices]) if slices else np.zeros(0)
    works = np.asarray([s.work for s in slices]) if slices else np.zeros(0)

    timeline: list[tuple[float, float]] = []
    for t in times:
        released_work = float(sizes[releases <= t].sum())
        if slices:
            # Work executed by time t: full slices that ended, plus the
            # pro-rated part of slices still running at t.
            done = float(works[ends <= t].sum())
            running = (starts < t) & (ends > t)
            if np.any(running):
                fractions = (t - starts[running]) / (ends[running] - starts[running])
                done += float((works[running] * fractions).sum())
        else:
            done = 0.0
        timeline.append((float(t), max(0.0, released_work - done)))
    return timeline


def per_databank_stretch(
    instance: Instance, completions: Mapping[int, float]
) -> dict[str, StretchDistribution]:
    """Stretch distribution broken down by target databank.

    Jobs without a databank are grouped under the key ``"(none)"``.
    """
    stretches = metrics_mod.stretches(instance, completions)
    by_bank: dict[str, dict[int, float]] = {}
    for job in instance.jobs:
        key = job.databank or "(none)"
        by_bank.setdefault(key, {})[job.job_id] = completions[job.job_id]
    return {
        bank: stretch_distribution(instance.restrict_jobs(list(jobs)), jobs_completions)
        for bank, jobs_completions, jobs in (
            (bank, {j: completions[j] for j in jobs}, jobs) for bank, jobs in by_bank.items()
        )
    }


def compare_results(results: Sequence[SimulationResult]) -> TextTable:
    """Side-by-side comparison table of several runs on the *same* instance.

    Columns: max-stretch, sum-stretch, 95th-percentile stretch, Jain fairness
    of the stretches, makespan and scheduler time.  Raises
    :class:`ModelError` when the results do not share the same instance.
    """
    if not results:
        raise ModelError("compare_results needs at least one result")
    reference = results[0].instance
    for result in results[1:]:
        if result.instance is not reference and result.instance != reference:
            raise ModelError("all results must concern the same instance")

    table = TextTable(
        headers=[
            "Scheduler",
            "max-stretch",
            "sum-stretch",
            "p95 stretch",
            "fairness",
            "makespan (s)",
            "sched time (s)",
        ]
    )
    for result in results:
        dist = stretch_distribution(result.instance, result.completions)
        report = result.report()
        table.add_row(
            [
                result.scheduler_name,
                report.max_stretch,
                report.sum_stretch,
                dist.p95,
                dist.fairness,
                report.makespan,
                result.scheduler_time,
            ]
        )
    return table
