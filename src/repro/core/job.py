"""Job model.

A *job* is a pattern-matching request submitted by a user: a motif that must
be compared against one protein databank.  In the scheduling model of the
paper a job :math:`J_j` is fully described by

* its release date :math:`r_j` (seconds),
* its size :math:`W_j` (work units, e.g. megabytes of databank to scan or
  Mflop of computation -- the unit is irrelevant as long as machine speeds
  use the same unit),
* the databank it targets (which induces the *restricted availability*
  constraint: the job may only run on machines hosting that databank), and
* an optional priority weight :math:`w_j` used by weighted-flow objectives.
  When left unset, the stretch convention :math:`w_j \\propto 1/W_j` is used
  (see :meth:`repro.core.instance.Instance.stretch_weight`).

Jobs are immutable; mutable execution state (remaining work) lives in the
simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

from repro.core.errors import ModelError
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["Job", "JobSet", "jobs_sorted_by_release", "renumber_jobs"]


@dataclass(frozen=True, order=False)
class Job:
    """A single divisible request.

    Parameters
    ----------
    job_id:
        Unique non-negative integer identifier.
    release:
        Release date :math:`r_j` in seconds (non-negative).
    size:
        Amount of work :math:`W_j` (strictly positive).
    databank:
        Name of the databank this request targets, or ``None`` when the job
        may execute on any machine (no data dependence).
    weight:
        Optional priority weight :math:`w_j`; ``None`` means "use the stretch
        weight" when a weighted metric is evaluated.
    name:
        Optional human-readable label (used in traces and examples).
    """

    job_id: int
    release: float
    size: float
    databank: str | None = None
    weight: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ModelError(f"job_id must be non-negative, got {self.job_id}")
        try:
            require_non_negative(self.release, "release")
            require_positive(self.size, "size")
            if self.weight is not None:
                require_positive(self.weight, "weight")
        except ValueError as exc:  # normalize into the library's hierarchy
            raise ModelError(str(exc)) from exc

    # -- convenience -----------------------------------------------------
    def with_release(self, release: float) -> "Job":
        """Return a copy of this job with a different release date."""
        return replace(self, release=release)

    def with_size(self, size: float) -> "Job":
        """Return a copy of this job with a different size."""
        return replace(self, size=size)

    def with_id(self, job_id: int) -> "Job":
        """Return a copy of this job with a different identifier."""
        return replace(self, job_id=job_id)

    @property
    def label(self) -> str:
        """A short display label (name if set, otherwise ``J<id>``)."""
        return self.name or f"J{self.job_id}"


class JobSet(Sequence[Job]):
    """An immutable, validated collection of jobs.

    The collection enforces unique job identifiers and provides the orderings
    and lookups every scheduler needs (by release date, by identifier).  It
    intentionally supports the standard :class:`~collections.abc.Sequence`
    protocol so it can be used wherever a plain list of jobs is expected.
    """

    __slots__ = ("_jobs", "_by_id")

    def __init__(self, jobs: Iterable[Job]):
        jobs = tuple(jobs)
        by_id: dict[int, Job] = {}
        for job in jobs:
            if not isinstance(job, Job):
                raise ModelError(f"JobSet expects Job instances, got {type(job)!r}")
            if job.job_id in by_id:
                raise ModelError(f"duplicate job_id {job.job_id}")
            by_id[job.job_id] = job
        self._jobs: tuple[Job, ...] = jobs
        self._by_id: dict[int, Job] = by_id

    # -- Sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return JobSet(self._jobs[index])
        return self._jobs[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Job):
            return self._by_id.get(item.job_id) == item
        return False

    def __eq__(self, other: object) -> bool:
        if isinstance(other, JobSet):
            return self._jobs == other._jobs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._jobs)

    def __repr__(self) -> str:
        return f"JobSet({len(self._jobs)} jobs)"

    # -- lookups ----------------------------------------------------------
    def by_id(self, job_id: int) -> Job:
        """Return the job with identifier ``job_id`` (KeyError if absent)."""
        return self._by_id[job_id]

    def ids(self) -> tuple[int, ...]:
        """All job identifiers, in collection order."""
        return tuple(job.job_id for job in self._jobs)

    def sorted_by_release(self) -> "JobSet":
        """Jobs ordered by non-decreasing release date (ties by id)."""
        return JobSet(jobs_sorted_by_release(self._jobs))

    def released_before(self, time: float, *, inclusive: bool = True) -> "JobSet":
        """Jobs whose release date is <= ``time`` (or < when not inclusive)."""
        if inclusive:
            return JobSet(j for j in self._jobs if j.release <= time)
        return JobSet(j for j in self._jobs if j.release < time)

    def total_work(self) -> float:
        """Sum of job sizes."""
        return float(sum(job.size for job in self._jobs))

    def size_ratio(self) -> float:
        """The quantity Δ of the paper: largest size / smallest size."""
        if not self._jobs:
            raise ModelError("size_ratio() is undefined for an empty JobSet")
        sizes = [job.size for job in self._jobs]
        return max(sizes) / min(sizes)

    def databanks(self) -> frozenset[str]:
        """The set of databanks referenced by at least one job."""
        return frozenset(j.databank for j in self._jobs if j.databank is not None)


def jobs_sorted_by_release(jobs: Iterable[Job]) -> list[Job]:
    """Return ``jobs`` sorted by (release date, job id)."""
    return sorted(jobs, key=lambda job: (job.release, job.job_id))


def renumber_jobs(jobs: Iterable[Job]) -> JobSet:
    """Renumber jobs 0..n-1 in release-date order.

    The paper assumes jobs are indexed by increasing release date; this
    helper normalizes arbitrarily numbered collections into that convention.
    """
    ordered = jobs_sorted_by_release(jobs)
    return JobSet(job.with_id(idx) for idx, job in enumerate(ordered))
