"""Platform model: machines, clusters, databanks and capability classes.

The target platform is a federation of *sites* (clusters).  Each site hosts a
homogeneous set of processors and a local copy of some of the protein
databanks.  A request targeting databank *d* may only execute on processors
whose site hosts *d* -- this is the *restricted availability* constraint of
the paper, which turns the uniform-machines problem into a special case of
unrelated machines.

Speeds are expressed as *cycle times* :math:`p_i` (seconds per unit of work),
so that the processing time of job :math:`J_j` of size :math:`W_j` on machine
:math:`M_i` is :math:`p_{i,j} = W_j\\,p_i` -- exactly the uniform model of
Section 2.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.errors import ModelError
from repro.utils.validation import require_positive

__all__ = ["Machine", "Cluster", "CapabilityClass", "Platform"]


@dataclass(frozen=True)
class Machine:
    """A single processor.

    Parameters
    ----------
    machine_id:
        Unique non-negative integer identifier (platform-wide).
    cycle_time:
        :math:`p_i`, in seconds per unit of work (strictly positive).
    cluster_id:
        Identifier of the site this machine belongs to.
    databanks:
        The databanks locally available to this machine.  An empty set means
        the machine can only serve jobs with no data dependence.
    name:
        Optional human-readable label.
    """

    machine_id: int
    cycle_time: float
    cluster_id: int = 0
    databanks: frozenset[str] = frozenset()
    name: str = ""

    def __post_init__(self) -> None:
        if self.machine_id < 0:
            raise ModelError(f"machine_id must be non-negative, got {self.machine_id}")
        try:
            require_positive(self.cycle_time, "cycle_time")
        except ValueError as exc:
            raise ModelError(str(exc)) from exc
        if not isinstance(self.databanks, frozenset):
            object.__setattr__(self, "databanks", frozenset(self.databanks))

    @property
    def speed(self) -> float:
        """Work units processed per second (:math:`1/p_i`)."""
        return 1.0 / self.cycle_time

    def hosts(self, databank: str | None) -> bool:
        """True when this machine may process a job targeting ``databank``."""
        if databank is None:
            return True
        return databank in self.databanks

    @property
    def label(self) -> str:
        """A short display label (name if set, otherwise ``M<id>``)."""
        return self.name or f"M{self.machine_id}"


@dataclass(frozen=True)
class Cluster:
    """A site: a group of identical machines sharing the same databanks."""

    cluster_id: int
    machines: tuple[Machine, ...]

    def __post_init__(self) -> None:
        if not self.machines:
            raise ModelError("a Cluster must contain at least one machine")
        banks = {m.databanks for m in self.machines}
        if len(banks) != 1:
            raise ModelError("all machines of a cluster must host the same databanks")
        cycle_times = {m.cycle_time for m in self.machines}
        if len(cycle_times) != 1:
            raise ModelError("all machines of a cluster must have the same cycle time")
        wrong = [m for m in self.machines if m.cluster_id != self.cluster_id]
        if wrong:
            raise ModelError(
                f"machines {[m.machine_id for m in wrong]} carry a cluster_id "
                f"different from {self.cluster_id}"
            )

    @property
    def databanks(self) -> frozenset[str]:
        return self.machines[0].databanks

    @property
    def cycle_time(self) -> float:
        return self.machines[0].cycle_time

    @property
    def aggregate_speed(self) -> float:
        """Sum of the speeds of the cluster's machines."""
        return sum(m.speed for m in self.machines)

    def __len__(self) -> int:
        return len(self.machines)


@dataclass(frozen=True)
class CapabilityClass:
    """A maximal group of machines hosting exactly the same databank set.

    Because the divisible-load model has no per-job parallelism bound, any
    allocation of work to such a group can be split across its members
    proportionally to their speed without changing feasibility (see
    DESIGN.md, "Machine aggregation by capability class").  The LP-based
    schedulers therefore work on capability classes rather than individual
    machines, which keeps linear programs small.
    """

    databanks: frozenset[str]
    machine_ids: tuple[int, ...]
    aggregate_speed: float

    def __post_init__(self) -> None:
        if not self.machine_ids:
            raise ModelError("a CapabilityClass must contain at least one machine")
        if self.aggregate_speed <= 0:
            raise ModelError(
                f"a CapabilityClass must have positive aggregate speed, got {self.aggregate_speed}"
            )

    @property
    def cycle_time(self) -> float:
        """Equivalent cycle time of the aggregated class (:math:`1/\\sum 1/p_i`)."""
        return 1.0 / self.aggregate_speed

    def hosts(self, databank: str | None) -> bool:
        if databank is None:
            return True
        return databank in self.databanks


class Platform(Sequence[Machine]):
    """An immutable collection of machines forming the target platform."""

    __slots__ = ("_machines", "_by_id", "_clusters")

    def __init__(self, machines: Iterable[Machine]):
        machines = tuple(machines)
        if not machines:
            raise ModelError("a Platform must contain at least one machine")
        by_id: dict[int, Machine] = {}
        for machine in machines:
            if not isinstance(machine, Machine):
                raise ModelError(f"Platform expects Machine instances, got {type(machine)!r}")
            if machine.machine_id in by_id:
                raise ModelError(f"duplicate machine_id {machine.machine_id}")
            by_id[machine.machine_id] = machine
        self._machines = machines
        self._by_id = by_id
        self._clusters: tuple[Cluster, ...] | None = None

    # -- constructors ------------------------------------------------------
    @classmethod
    def single_machine(cls, cycle_time: float = 1.0, databanks: Iterable[str] = ()) -> "Platform":
        """A single-processor platform (the uni-processor model of Section 4)."""
        return cls([Machine(0, cycle_time, 0, frozenset(databanks))])

    @classmethod
    def uniform(cls, cycle_times: Sequence[float], databanks: Iterable[str] = ()) -> "Platform":
        """A fully uniform platform: every machine hosts every databank."""
        banks = frozenset(databanks)
        return cls(
            Machine(i, ct, i, banks) for i, ct in enumerate(cycle_times)
        )

    @classmethod
    def from_clusters(
        cls,
        cluster_specs: Sequence[tuple[int, float, Iterable[str]]],
    ) -> "Platform":
        """Build a platform from ``(num_processors, cycle_time, databanks)`` tuples.

        Each tuple describes one site: its processor count, the per-processor
        cycle time and the databanks replicated on that site.
        """
        machines: list[Machine] = []
        machine_id = 0
        for cluster_id, (count, cycle_time, banks) in enumerate(cluster_specs):
            if count <= 0:
                raise ModelError(f"cluster {cluster_id} must have at least one processor")
            bankset = frozenset(banks)
            for _ in range(count):
                machines.append(Machine(machine_id, cycle_time, cluster_id, bankset))
                machine_id += 1
        return cls(machines)

    # -- Sequence protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._machines)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return Platform(self._machines[index])
        return self._machines[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Platform):
            return self._machines == other._machines
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._machines)

    def __repr__(self) -> str:
        return f"Platform({len(self._machines)} machines, {len(self.clusters())} clusters)"

    # -- lookups --------------------------------------------------------------
    def by_id(self, machine_id: int) -> Machine:
        """Return the machine with identifier ``machine_id``."""
        return self._by_id[machine_id]

    def ids(self) -> tuple[int, ...]:
        return tuple(m.machine_id for m in self._machines)

    def clusters(self) -> tuple[Cluster, ...]:
        """Group machines by ``cluster_id`` (cached)."""
        if self._clusters is None:
            grouped: dict[int, list[Machine]] = {}
            for machine in self._machines:
                grouped.setdefault(machine.cluster_id, []).append(machine)
            self._clusters = tuple(
                Cluster(cid, tuple(ms)) for cid, ms in sorted(grouped.items())
            )
        return self._clusters

    def databanks(self) -> frozenset[str]:
        """All databanks hosted somewhere on the platform."""
        banks: set[str] = set()
        for machine in self._machines:
            banks.update(machine.databanks)
        return frozenset(banks)

    def machines_hosting(self, databank: str | None) -> tuple[Machine, ...]:
        """All machines able to process a job targeting ``databank``."""
        return tuple(m for m in self._machines if m.hosts(databank))

    def aggregate_speed(self, databank: str | None = None) -> float:
        """Total speed (work per second) available to jobs targeting ``databank``.

        This is the power of the *equivalent processor* of Lemma 1:
        :math:`1/p_\\mathrm{equiv} = \\sum_i 1/p_i` over eligible machines.
        """
        speeds = [m.speed for m in self._machines if m.hosts(databank)]
        return float(sum(speeds))

    def is_uniform_for(self, databanks: Iterable[str | None]) -> bool:
        """True when every machine hosts every databank in ``databanks``.

        In that case the restricted-availability constraint is vacuous and
        Lemma 1 applies directly: the platform behaves like a single
        preemptive processor of speed :meth:`aggregate_speed`.
        """
        for bank in databanks:
            if bank is None:
                continue
            if any(not m.hosts(bank) for m in self._machines):
                return False
        return True

    def capability_classes(self) -> tuple[CapabilityClass, ...]:
        """Group machines by identical databank sets.

        Classes are returned in deterministic order (sorted by databank set),
        each carrying its aggregated speed and the member machine ids sorted
        by decreasing speed (the order used when splitting work back onto
        physical machines).
        """
        grouped: dict[frozenset[str], list[Machine]] = {}
        for machine in self._machines:
            grouped.setdefault(machine.databanks, []).append(machine)
        classes: list[CapabilityClass] = []
        for banks in sorted(grouped, key=lambda b: (len(b), sorted(b))):
            members = sorted(grouped[banks], key=lambda m: (-m.speed, m.machine_id))
            classes.append(
                CapabilityClass(
                    databanks=banks,
                    machine_ids=tuple(m.machine_id for m in members),
                    aggregate_speed=float(sum(m.speed for m in members)),
                )
            )
        return tuple(classes)

    def restrict_to(self, machine_ids: Iterable[int]) -> "Platform":
        """A sub-platform containing only the given machines."""
        wanted = set(machine_ids)
        return Platform(m for m in self._machines if m.machine_id in wanted)

    def describe(self) -> str:
        """A human-readable multi-line description of the platform."""
        lines = [f"Platform: {len(self)} machines in {len(self.clusters())} clusters"]
        for cluster in self.clusters():
            banks = ", ".join(sorted(cluster.databanks)) or "(none)"
            lines.append(
                f"  cluster {cluster.cluster_id}: {len(cluster)} procs, "
                f"cycle_time={cluster.cycle_time:.4g}s/unit, databanks: {banks}"
            )
        return "\n".join(lines)
