"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "ScheduleError",
    "InfeasibleError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ModelError(ReproError):
    """An instance, platform or job definition is inconsistent."""


class ScheduleError(ReproError):
    """A schedule violates the model constraints (overlap, capacity, ...)."""


class InfeasibleError(ReproError):
    """A feasibility problem (e.g. deadline scheduling) has no solution."""


class SolverError(ReproError):
    """The underlying LP solver failed unexpectedly.

    Besides the message, the error can carry structured context about the
    failing probe -- which backend and method were tried, how many attempts
    the retry chain burned, and the content signature of the LP problem --
    so campaign ``failed`` records and logs can say *what* died without
    parsing strings.  All context is optional: plain ``SolverError("msg")``
    raises (and pickles across worker processes) exactly as before.
    """

    def __init__(
        self,
        message: str = "",
        *,
        backend: str | None = None,
        method: str | None = None,
        status: int | None = None,
        attempts: int | None = None,
        probe_signature: object | None = None,
    ):
        super().__init__(message)
        self.backend = backend
        self.method = method
        self.status = status
        self.attempts = attempts
        self.probe_signature = probe_signature

    def context(self) -> dict[str, object]:
        """The non-``None`` structured fields, for logging/record payloads."""
        fields = {
            "backend": self.backend,
            "method": self.method,
            "status": self.status,
            "attempts": self.attempts,
            "probe_signature": self.probe_signature,
        }
        return {key: value for key, value in fields.items() if value is not None}

    def __str__(self) -> str:
        base = super().__str__()
        context = self.context()
        if not context:
            return base
        signature = context.pop("probe_signature", None)
        if signature is not None:
            # Signatures are long content tuples; show a stable digest only.
            try:
                context["probe_signature"] = f"<sig {hash(signature) & 0xFFFFFFFF:08x}>"
            except TypeError:  # pragma: no cover - unhashable custom payloads
                context["probe_signature"] = "<sig>"
        detail = ", ".join(f"{key}={value}" for key, value in context.items())
        return f"{base} [{detail}]"
