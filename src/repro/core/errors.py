"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "ScheduleError",
    "InfeasibleError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ModelError(ReproError):
    """An instance, platform or job definition is inconsistent."""


class ScheduleError(ReproError):
    """A schedule violates the model constraints (overlap, capacity, ...)."""


class InfeasibleError(ReproError):
    """A feasibility problem (e.g. deadline scheduling) has no solution."""


class SolverError(ReproError):
    """The underlying LP solver failed unexpectedly."""
