"""Problem instances: a set of jobs to schedule on a platform.

An :class:`Instance` couples a :class:`~repro.core.job.JobSet` with a
:class:`~repro.core.platform.Platform` and exposes the derived quantities the
schedulers need:

* per-(machine, job) processing times :math:`p_{i,j} = W_j\\,p_i` (infinite
  when the machine does not host the job's databank),
* the set of machines eligible for a job,
* the *ideal time* of a job (time to process it alone on all its eligible
  machines), which is the normalisation constant of the stretch metric,
* the job-size ratio Δ used by the Bender heuristics and by the theoretical
  bounds.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.errors import ModelError
from repro.core.job import Job, JobSet
from repro.core.platform import CapabilityClass, Machine, Platform

__all__ = ["Instance", "LiveInstance"]


class Instance:
    """An immutable scheduling problem instance.

    Parameters
    ----------
    jobs:
        The requests to schedule.  Any iterable of :class:`Job`; stored as a
        :class:`JobSet` sorted by release date (the paper's convention).
    platform:
        The target platform.
    require_feasible:
        When True (default), building an instance containing a job whose
        databank is hosted nowhere raises :class:`ModelError` -- such a job
        could never be executed.
    """

    __slots__ = ("_jobs", "_platform", "_ideal_times", "_eligible_cache")

    def __init__(
        self,
        jobs: Iterable[Job],
        platform: Platform,
        *,
        require_feasible: bool = True,
    ):
        if not isinstance(platform, Platform):
            raise ModelError(f"platform must be a Platform, got {type(platform)!r}")
        jobset = jobs if isinstance(jobs, JobSet) else JobSet(jobs)
        jobset = jobset.sorted_by_release()
        self._jobs = jobset
        self._platform = platform
        self._eligible_cache: dict[int, tuple[Machine, ...]] = {}
        if require_feasible:
            for job in jobset:
                if not platform.machines_hosting(job.databank):
                    raise ModelError(
                        f"job {job.job_id} targets databank {job.databank!r} "
                        f"which is hosted on no machine"
                    )
        self._ideal_times: dict[int, float] = {}

    # -- basic accessors ----------------------------------------------------
    @property
    def jobs(self) -> JobSet:
        """The jobs, sorted by release date."""
        return self._jobs

    @property
    def platform(self) -> Platform:
        """The target platform."""
        return self._platform

    @property
    def n_jobs(self) -> int:
        return len(self._jobs)

    @property
    def n_machines(self) -> int:
        return len(self._platform)

    def job(self, job_id: int) -> Job:
        """The job with identifier ``job_id``."""
        return self._jobs.by_id(job_id)

    def machine(self, machine_id: int) -> Machine:
        """The machine with identifier ``machine_id``."""
        return self._platform.by_id(machine_id)

    def __repr__(self) -> str:
        return f"Instance({self.n_jobs} jobs, {self.n_machines} machines)"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._jobs == other._jobs and self._platform == other._platform
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._jobs, self._platform))

    # -- derived quantities ----------------------------------------------------
    def processing_time(self, machine_id: int, job_id: int) -> float:
        """:math:`p_{i,j} = W_j p_i`, or ``inf`` if the machine is not eligible."""
        job = self.job(job_id)
        machine = self.machine(machine_id)
        if not machine.hosts(job.databank):
            return math.inf
        return job.size * machine.cycle_time

    def eligible_machines(self, job_id: int) -> tuple[Machine, ...]:
        """Machines that host the databank required by job ``job_id``."""
        cached = self._eligible_cache.get(job_id)
        if cached is None:
            job = self.job(job_id)
            cached = self._platform.machines_hosting(job.databank)
            self._eligible_cache[job_id] = cached
        return cached

    def eligible_machine_ids(self, job_id: int) -> tuple[int, ...]:
        """Identifiers of the machines eligible for job ``job_id``."""
        return tuple(m.machine_id for m in self.eligible_machines(job_id))

    def eligible_classes(self, job_id: int) -> tuple[CapabilityClass, ...]:
        """Capability classes whose machines may process job ``job_id``."""
        job = self.job(job_id)
        return tuple(
            cls for cls in self._platform.capability_classes() if cls.hosts(job.databank)
        )

    def aggregate_speed(self, job_id: int) -> float:
        """Total speed available to job ``job_id`` (its equivalent processor)."""
        return float(sum(m.speed for m in self.eligible_machines(job_id)))

    def ideal_time(self, job_id: int) -> float:
        """Time to process job ``job_id`` alone, using all its eligible machines.

        This is the denominator of the stretch: a job alone in the system can
        complete in exactly this time (divisibility, no communication cost),
        so its stretch is 1.
        """
        cached = self._ideal_times.get(job_id)
        if cached is None:
            speed = self.aggregate_speed(job_id)
            if speed <= 0:
                raise ModelError(f"job {job_id} has no eligible machine")
            cached = self.job(job_id).size / speed
            self._ideal_times[job_id] = cached
        return cached

    def stretch_weight(self, job_id: int) -> float:
        """The weight :math:`w_j` turning weighted flow into stretch.

        Defined as :math:`1/t^*_j` where :math:`t^*_j` is :meth:`ideal_time`,
        so that :math:`w_j F_j = F_j / t^*_j = S_j`.  On a fully uniform
        platform this is proportional to the paper's :math:`1/W_j`.
        """
        return 1.0 / self.ideal_time(job_id)

    def weight(self, job_id: int) -> float:
        """The effective weight of a job: its explicit weight or the stretch weight."""
        job = self.job(job_id)
        if job.weight is not None:
            return job.weight
        return self.stretch_weight(job_id)

    def delta(self) -> float:
        """Δ: ratio of the largest to the smallest job size."""
        return self._jobs.size_ratio()

    def is_uniform(self) -> bool:
        """True when every job may execute on every machine.

        In that case Lemma 1 applies and the instance is equivalent to a
        single preemptive processor (see :mod:`repro.core.transform`).
        """
        banks = {job.databank for job in self._jobs}
        return self._platform.is_uniform_for(banks)

    # -- restrictions / projections -------------------------------------------
    def restrict_jobs(self, job_ids: Iterable[int]) -> "Instance":
        """A sub-instance containing only the given jobs (platform unchanged)."""
        wanted = set(job_ids)
        return Instance(
            (j for j in self._jobs if j.job_id in wanted),
            self._platform,
            require_feasible=False,
        )

    def released_before(self, time: float, *, inclusive: bool = True) -> "Instance":
        """The sub-instance of jobs released up to ``time``."""
        return Instance(
            self._jobs.released_before(time, inclusive=inclusive),
            self._platform,
            require_feasible=False,
        )

    def with_jobs(self, jobs: Iterable[Job]) -> "Instance":
        """A new instance with the same platform and different jobs."""
        return Instance(jobs, self._platform)

    def with_platform(self, platform: Platform) -> "Instance":
        """A new instance with the same jobs on a different platform."""
        return Instance(self._jobs, platform)

    # -- summaries ---------------------------------------------------------------
    def lower_bound_makespan(self) -> float:
        """A trivial lower bound on the makespan (load / total speed, from last release)."""
        if self.n_jobs == 0:
            return 0.0
        total_work = self._jobs.total_work()
        return max(
            total_work / self._platform.aggregate_speed(),
            max(job.release + self.ideal_time(job.job_id) for job in self._jobs),
        )

    def describe(self) -> str:
        """Human-readable description used by the CLI and examples."""
        lines = [repr(self), self._platform.describe(), "Jobs:"]
        for job in self._jobs:
            bank = job.databank or "-"
            lines.append(
                f"  {job.label}: release={job.release:.3f}s size={job.size:.3f} "
                f"databank={bank} ideal={self.ideal_time(job.job_id):.3f}s"
            )
        return "\n".join(lines)


class LiveInstance(Instance):
    """An instance that grows as submissions are accepted (service mode).

    The batch engine materializes every job up front; the streaming daemon
    only learns about a job when it is submitted.  :class:`LiveInstance`
    supports that by allowing jobs to be *admitted* after construction, under
    one invariant that keeps it interchangeable with a batch
    :class:`Instance`: admissions must come in non-decreasing
    ``(release, job_id)`` order, so :attr:`jobs` is at all times exactly what
    ``Instance(jobs_so_far, platform)`` would hold.  Everything downstream
    that pins an order to the job sequence (LP column order, the replan
    :class:`~repro.lp.problem.JobTable`) therefore sees the same order
    whether the instance was materialized or grown.

    The per-job caches of :class:`Instance` are keyed by job id, so admitting
    new jobs never invalidates them.  A :class:`LiveInstance` is mutable and
    must not be used as a dictionary key.
    """

    __slots__ = ()

    def __init__(self, platform: Platform, jobs: Iterable[Job] = ()):
        super().__init__(jobs, platform)

    def admit(self, job: Job) -> Job:
        """Append ``job`` to the instance (validating feasibility and order)."""
        if not self._platform.machines_hosting(job.databank):
            raise ModelError(
                f"job {job.job_id} targets databank {job.databank!r} "
                f"which is hosted on no machine"
            )
        jobs = self._jobs
        if len(jobs):
            last = jobs[len(jobs) - 1]
            if (job.release, job.job_id) < (last.release, last.job_id):
                raise ModelError(
                    f"job {job.job_id} admitted out of order: "
                    f"(release={job.release}, id={job.job_id}) sorts before "
                    f"(release={last.release}, id={last.job_id})"
                )
        self._jobs = JobSet(tuple(jobs) + (job,))
        return job
