"""Schedule representation and validation.

A schedule is a set of :class:`WorkSlice` records.  Each slice states that a
machine was dedicated to one job during a time interval and processed a given
amount of that job's work.  Because the model is divisible with negligible
communication, this representation is lossless: any feasible execution of the
system can be described as such a set of slices, and completion times follow
directly.

:meth:`Schedule.validate` checks every constraint of the model:

* slices start no earlier than the job's release date,
* machines only process jobs whose databank they host,
* the work done in a slice never exceeds the machine's capacity over the
  slice duration,
* slices on the same machine do not overlap,
* (optionally) each job's slices sum to exactly its size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.utils.validation import ABS_TOL

__all__ = ["WorkSlice", "Schedule"]


@dataclass(frozen=True)
class WorkSlice:
    """A contiguous dedication of one machine to one job.

    Parameters
    ----------
    job_id, machine_id:
        The job processed and the machine processing it.
    start, end:
        Interval bounds in seconds, with ``end > start``.
    work:
        Amount of the job's work (same unit as :attr:`Job.size`) completed in
        the slice.  For a machine fully dedicated to the job during the slice
        this equals ``(end - start) * machine.speed``; it may be smaller when
        the machine idles part of the slice (e.g. LP leftovers).
    """

    job_id: int
    machine_id: int
    start: float
    end: float
    work: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ScheduleError(
                f"slice for job {self.job_id} on machine {self.machine_id} has "
                f"non-positive duration [{self.start}, {self.end}]"
            )
        if self.work <= 0:
            raise ScheduleError(
                f"slice for job {self.job_id} on machine {self.machine_id} has "
                f"non-positive work {self.work}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class Schedule:
    """An immutable set of work slices with derived metrics.

    Instances are typically produced by the simulation engine
    (:mod:`repro.simulation.engine`) or by the off-line LP scheduler.
    """

    __slots__ = ("_slices", "_completion_cache")

    def __init__(self, slices: Iterable[WorkSlice]):
        self._slices: tuple[WorkSlice, ...] = tuple(
            sorted(slices, key=lambda s: (s.start, s.machine_id, s.job_id))
        )
        self._completion_cache: dict[int, float] | None = None

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._slices)

    def __iter__(self) -> Iterator[WorkSlice]:
        return iter(self._slices)

    def __repr__(self) -> str:
        return f"Schedule({len(self._slices)} slices)"

    @property
    def slices(self) -> tuple[WorkSlice, ...]:
        return self._slices

    def slices_for_job(self, job_id: int) -> tuple[WorkSlice, ...]:
        return tuple(s for s in self._slices if s.job_id == job_id)

    def slices_on_machine(self, machine_id: int) -> tuple[WorkSlice, ...]:
        return tuple(s for s in self._slices if s.machine_id == machine_id)

    def job_ids(self) -> frozenset[int]:
        return frozenset(s.job_id for s in self._slices)

    def machine_ids(self) -> frozenset[int]:
        return frozenset(s.machine_id for s in self._slices)

    # -- derived quantities ------------------------------------------------------
    def completion_times(self) -> dict[int, float]:
        """Completion time of each job appearing in the schedule."""
        if self._completion_cache is None:
            completions: dict[int, float] = {}
            for s in self._slices:
                completions[s.job_id] = max(completions.get(s.job_id, -math.inf), s.end)
            self._completion_cache = completions
        return dict(self._completion_cache)

    def completion_time(self, job_id: int) -> float:
        """Completion time of one job (KeyError if the job never executes)."""
        return self.completion_times()[job_id]

    def makespan(self) -> float:
        """Largest slice end time (0 for an empty schedule)."""
        if not self._slices:
            return 0.0
        return max(s.end for s in self._slices)

    def start_time(self, job_id: int) -> float:
        """First time the job receives service."""
        slices = self.slices_for_job(job_id)
        if not slices:
            raise KeyError(job_id)
        return min(s.start for s in slices)

    def work_done(self, job_id: int) -> float:
        """Total work executed for the job across all machines."""
        return float(sum(s.work for s in self._slices if s.job_id == job_id))

    def busy_time(self, machine_id: int) -> float:
        """Total time the machine spends inside slices."""
        return float(sum(s.duration for s in self._slices if s.machine_id == machine_id))

    def machine_utilization(self, instance: Instance) -> dict[int, float]:
        """Per-machine busy-time fraction over the schedule makespan."""
        horizon = self.makespan()
        if horizon <= 0:
            return {m.machine_id: 0.0 for m in instance.platform}
        return {
            m.machine_id: self.busy_time(m.machine_id) / horizon
            for m in instance.platform
        }

    def preemption_count(self) -> int:
        """Number of times a job is resumed after having been interrupted.

        Computed per (job, machine) pair as the number of maximal service
        intervals minus one, summed with cross-machine migrations ignored
        (migration is free in this model).
        """
        count = 0
        by_job: dict[int, list[WorkSlice]] = {}
        for s in self._slices:
            by_job.setdefault(s.job_id, []).append(s)
        for job_id, slices in by_job.items():
            slices = sorted(slices, key=lambda s: s.start)
            # Merge slices that touch (possibly on different machines) into
            # contiguous service periods.
            periods = 0
            current_end = -math.inf
            for s in slices:
                if s.start > current_end + ABS_TOL:
                    periods += 1
                    current_end = s.end
                else:
                    current_end = max(current_end, s.end)
            count += max(0, periods - 1)
        return count

    # -- validation -----------------------------------------------------------------
    def validate(
        self,
        instance: Instance,
        *,
        require_complete: bool = True,
        tol: float = 1e-6,
    ) -> None:
        """Raise :class:`ScheduleError` if the schedule violates the model.

        Parameters
        ----------
        instance:
            The instance this schedule is supposed to solve.
        require_complete:
            When True, also check that every job of the instance is fully
            processed (total work equals the job size).
        tol:
            Absolute/relative tolerance used for floating-point comparisons;
            LP-produced schedules accumulate roundoff of this order.
        """
        violations = self.violations(instance, require_complete=require_complete, tol=tol)
        if violations:
            raise ScheduleError("; ".join(violations))

    def violations(
        self,
        instance: Instance,
        *,
        require_complete: bool = True,
        tol: float = 1e-6,
    ) -> list[str]:
        """Return a list of human-readable constraint violations (empty if valid)."""
        problems: list[str] = []
        known_jobs = set(instance.jobs.ids())
        known_machines = set(instance.platform.ids())

        for s in self._slices:
            if s.job_id not in known_jobs:
                problems.append(f"slice references unknown job {s.job_id}")
                continue
            if s.machine_id not in known_machines:
                problems.append(f"slice references unknown machine {s.machine_id}")
                continue
            job = instance.job(s.job_id)
            machine = instance.machine(s.machine_id)
            if s.start < job.release - tol:
                problems.append(
                    f"job {s.job_id} starts at {s.start:.6f} before its release {job.release:.6f}"
                )
            if not machine.hosts(job.databank):
                problems.append(
                    f"job {s.job_id} (databank {job.databank!r}) scheduled on machine "
                    f"{s.machine_id} which does not host it"
                )
            capacity = s.duration * machine.speed
            if s.work > capacity * (1 + tol) + tol:
                problems.append(
                    f"slice of job {s.job_id} on machine {s.machine_id} does "
                    f"{s.work:.6f} work but capacity is {capacity:.6f}"
                )

        # Machine overlap check.
        by_machine: dict[int, list[WorkSlice]] = {}
        for s in self._slices:
            by_machine.setdefault(s.machine_id, []).append(s)
        for machine_id, slices in by_machine.items():
            slices = sorted(slices, key=lambda s: s.start)
            for prev, nxt in zip(slices, slices[1:]):
                if nxt.start < prev.end - tol:
                    problems.append(
                        f"machine {machine_id} overlaps: job {prev.job_id} until "
                        f"{prev.end:.6f} vs job {nxt.job_id} from {nxt.start:.6f}"
                    )

        # Completeness check.
        if require_complete:
            for job in instance.jobs:
                done = self.work_done(job.job_id)
                if not math.isclose(done, job.size, rel_tol=tol, abs_tol=tol * max(1.0, job.size)):
                    problems.append(
                        f"job {job.job_id} executed {done:.6f} work out of {job.size:.6f}"
                    )
        return problems

    # -- rendering ---------------------------------------------------------------------
    def gantt(self, instance: Instance, *, width: int = 72) -> str:
        """A coarse ASCII Gantt chart (one line per machine).

        Intended for examples and debugging, not for precise inspection: each
        character cell covers ``makespan / width`` seconds and shows the job
        that received the most service in that cell.
        """
        horizon = self.makespan()
        if horizon <= 0:
            return "(empty schedule)"
        lines = []
        cell = horizon / width
        for machine in instance.platform:
            row = []
            slices = self.slices_on_machine(machine.machine_id)
            for c in range(width):
                t0, t1 = c * cell, (c + 1) * cell
                best_job, best_overlap = None, 0.0
                for s in slices:
                    overlap = min(s.end, t1) - max(s.start, t0)
                    if overlap > best_overlap:
                        best_overlap, best_job = overlap, s.job_id
                row.append("." if best_job is None else _job_char(best_job))
            lines.append(f"{machine.label:>6} |{''.join(row)}|")
        lines.append(f"{'':>6}  0{'':<{width - 10}}{horizon:9.2f}s")
        return "\n".join(lines)

    # -- composition ---------------------------------------------------------------------
    def merged_with(self, other: "Schedule") -> "Schedule":
        """Union of two schedules (no validity check)."""
        return Schedule(list(self._slices) + list(other.slices))


def _job_char(job_id: int) -> str:
    """Map a job id to a printable character for the ASCII Gantt chart."""
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return alphabet[job_id % len(alphabet)]
