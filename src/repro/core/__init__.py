"""Core model: jobs, platforms, instances, schedules, metrics, Lemma 1."""

from repro.core.errors import (
    InfeasibleError,
    ModelError,
    ReproError,
    ScheduleError,
    SolverError,
)
from repro.core.job import Job, JobSet, jobs_sorted_by_release, renumber_jobs
from repro.core.platform import CapabilityClass, Cluster, Machine, Platform
from repro.core.instance import Instance
from repro.core.schedule import Schedule, WorkSlice
from repro.core import metrics
from repro.core.transform import (
    divisible_schedule_to_uniprocessor,
    equivalent_uniprocessor_instance,
    uniprocessor_schedule_to_divisible,
)

__all__ = [
    "ReproError",
    "ModelError",
    "ScheduleError",
    "InfeasibleError",
    "SolverError",
    "Job",
    "JobSet",
    "jobs_sorted_by_release",
    "renumber_jobs",
    "Machine",
    "Cluster",
    "CapabilityClass",
    "Platform",
    "Instance",
    "Schedule",
    "WorkSlice",
    "metrics",
    "equivalent_uniprocessor_instance",
    "uniprocessor_schedule_to_divisible",
    "divisible_schedule_to_uniprocessor",
]
