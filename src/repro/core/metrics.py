"""Objective functions of Section 3 of the paper.

All metrics are computed from a mapping ``job_id -> completion time`` plus
the :class:`~repro.core.instance.Instance` that defines release dates, sizes
and (for the stretch) ideal processing times.

Definitions
-----------

================  =============================================================
makespan          :math:`\\max_j C_j`
flow time         :math:`F_j = C_j - r_j` (also called response time)
sum-flow          :math:`\\sum_j F_j`
max-flow          :math:`\\max_j F_j`
weighted flow     :math:`w_j F_j` for arbitrary positive weights
stretch           :math:`S_j = F_j / t^*_j` where :math:`t^*_j` is the time the
                  platform needs to process :math:`J_j` alone (ideal time)
sum-stretch       :math:`\\sum_j S_j`
max-stretch       :math:`\\max_j S_j`
================  =============================================================

The degradation helpers implement the normalisation used throughout Section
5: for each instance, a heuristic's metric value is divided by the best value
achieved by any heuristic on that same instance, and the per-configuration
tables report the mean, standard deviation and maximum of these factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import ModelError
from repro.core.instance import Instance

__all__ = [
    "flow_times",
    "stretches",
    "weighted_flows",
    "makespan",
    "sum_flow",
    "max_flow",
    "mean_flow",
    "sum_stretch",
    "max_stretch",
    "mean_stretch",
    "sum_weighted_flow",
    "max_weighted_flow",
    "MetricsReport",
    "evaluate",
    "degradations",
    "normalize_by_best",
]


def _check_completions(instance: Instance, completions: Mapping[int, float]) -> None:
    missing = [j.job_id for j in instance.jobs if j.job_id not in completions]
    if missing:
        raise ModelError(f"completion times missing for jobs {missing}")
    for job in instance.jobs:
        c = completions[job.job_id]
        if c < job.release - 1e-9:
            raise ModelError(
                f"job {job.job_id} completes at {c} before its release {job.release}"
            )


def flow_times(instance: Instance, completions: Mapping[int, float]) -> dict[int, float]:
    """Per-job flow (response) times :math:`F_j = C_j - r_j`."""
    _check_completions(instance, completions)
    return {
        job.job_id: completions[job.job_id] - job.release for job in instance.jobs
    }


def stretches(instance: Instance, completions: Mapping[int, float]) -> dict[int, float]:
    """Per-job stretches :math:`S_j = F_j / t^*_j`.

    :math:`t^*_j` is the job's ideal time on its eligible machines; a job
    alone in an empty system therefore has stretch exactly 1.
    """
    flows = flow_times(instance, completions)
    return {
        job_id: flow / instance.ideal_time(job_id) for job_id, flow in flows.items()
    }


def weighted_flows(
    instance: Instance,
    completions: Mapping[int, float],
    weights: Mapping[int, float] | None = None,
) -> dict[int, float]:
    """Per-job weighted flows :math:`w_j F_j`.

    ``weights`` defaults to each job's effective weight
    (:meth:`Instance.weight`): the explicit job weight if set, otherwise the
    stretch weight.
    """
    flows = flow_times(instance, completions)
    if weights is None:
        weights = {job.job_id: instance.weight(job.job_id) for job in instance.jobs}
    return {job_id: weights[job_id] * flow for job_id, flow in flows.items()}


# -- scalar metrics -------------------------------------------------------------


def makespan(instance: Instance, completions: Mapping[int, float]) -> float:
    """:math:`\\max_j C_j`."""
    _check_completions(instance, completions)
    return max(completions[j.job_id] for j in instance.jobs)


def sum_flow(instance: Instance, completions: Mapping[int, float]) -> float:
    """:math:`\\sum_j F_j`."""
    return float(sum(flow_times(instance, completions).values()))


def max_flow(instance: Instance, completions: Mapping[int, float]) -> float:
    """:math:`\\max_j F_j`."""
    return max(flow_times(instance, completions).values())


def mean_flow(instance: Instance, completions: Mapping[int, float]) -> float:
    """Average flow time."""
    flows = flow_times(instance, completions)
    return float(sum(flows.values()) / len(flows))


def sum_stretch(instance: Instance, completions: Mapping[int, float]) -> float:
    """:math:`\\sum_j S_j`."""
    return float(sum(stretches(instance, completions).values()))


def max_stretch(instance: Instance, completions: Mapping[int, float]) -> float:
    """:math:`\\max_j S_j`."""
    return max(stretches(instance, completions).values())


def mean_stretch(instance: Instance, completions: Mapping[int, float]) -> float:
    """Average stretch."""
    vals = stretches(instance, completions)
    return float(sum(vals.values()) / len(vals))


def sum_weighted_flow(
    instance: Instance,
    completions: Mapping[int, float],
    weights: Mapping[int, float] | None = None,
) -> float:
    """:math:`\\sum_j w_j F_j`."""
    return float(sum(weighted_flows(instance, completions, weights).values()))


def max_weighted_flow(
    instance: Instance,
    completions: Mapping[int, float],
    weights: Mapping[int, float] | None = None,
) -> float:
    """:math:`\\max_j w_j F_j`."""
    return max(weighted_flows(instance, completions, weights).values())


# -- aggregate report ----------------------------------------------------------


@dataclass(frozen=True)
class MetricsReport:
    """All scalar metrics of one schedule on one instance."""

    makespan: float
    sum_flow: float
    max_flow: float
    mean_flow: float
    sum_stretch: float
    max_stretch: float
    mean_stretch: float
    n_jobs: int

    def as_dict(self) -> dict[str, float]:
        """The report as a plain dictionary (used by the experiment runner)."""
        return {
            "makespan": self.makespan,
            "sum_flow": self.sum_flow,
            "max_flow": self.max_flow,
            "mean_flow": self.mean_flow,
            "sum_stretch": self.sum_stretch,
            "max_stretch": self.max_stretch,
            "mean_stretch": self.mean_stretch,
            "n_jobs": float(self.n_jobs),
        }


def evaluate(instance: Instance, completions: Mapping[int, float]) -> MetricsReport:
    """Compute the full :class:`MetricsReport` for one run."""
    flows = flow_times(instance, completions)
    strs = stretches(instance, completions)
    return MetricsReport(
        makespan=max(completions[j.job_id] for j in instance.jobs),
        sum_flow=float(sum(flows.values())),
        max_flow=max(flows.values()),
        mean_flow=float(sum(flows.values()) / len(flows)),
        sum_stretch=float(sum(strs.values())),
        max_stretch=max(strs.values()),
        mean_stretch=float(sum(strs.values()) / len(strs)),
        n_jobs=instance.n_jobs,
    )


# -- normalisation helpers (Section 5) --------------------------------------------


def normalize_by_best(values: Mapping[str, float]) -> dict[str, float]:
    """Divide every value by the smallest one (degradation factors >= 1).

    The paper normalizes each heuristic's metric by the best value observed
    on the same instance; the best heuristic therefore scores exactly 1.0.
    """
    if not values:
        return {}
    finite = [v for v in values.values() if math.isfinite(v)]
    if not finite:
        raise ModelError("cannot normalize: no finite metric value")
    best = min(finite)
    if best <= 0:
        raise ModelError(f"cannot normalize by a non-positive best value {best}")
    return {name: value / best for name, value in values.items()}


def degradations(
    per_scheduler: Mapping[str, float],
    reference: float | None = None,
) -> dict[str, float]:
    """Degradation of each scheduler w.r.t. ``reference`` (or the best observed).

    Parameters
    ----------
    per_scheduler:
        Metric value achieved by each scheduler on one instance.
    reference:
        Optional explicit reference value (e.g. the off-line optimal
        max-stretch).  When omitted, the best observed value is used, which
        is the paper's convention for the sum-stretch columns.
    """
    if reference is None:
        return normalize_by_best(per_scheduler)
    if reference <= 0:
        raise ModelError(f"reference value must be positive, got {reference}")
    return {name: value / reference for name, value in per_scheduler.items()}
