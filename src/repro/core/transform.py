"""Lemma 1: equivalence of uniform-divisible and uniprocessor-preemptive models.

The paper's Lemma 1 states that an instance of ``n`` jobs on ``m`` uniform
machines under the divisible-load model (no communication cost) is equivalent
to an instance of the same ``n`` jobs on a single preemptive processor whose
speed is the sum of the machines' speeds
(:math:`1/p_\\mathrm{equiv} = \\sum_i 1/p_i`):

* any divisible schedule maps to a uniprocessor preemptive schedule with
  completion times that are **no larger** (forward transformation), and
* any uniprocessor preemptive schedule maps back to a divisible schedule with
  exactly the same completion times, by spreading each service interval over
  all machines proportionally to their speed (reverse transformation).

This module implements both directions.  They are used by the uni-processor
heuristics of Section 4 (which are analysed on the equivalent processor) and
extensively exercised by property-based tests: for random uniform instances,
round-tripping a schedule must preserve completion times, and the forward
direction must never increase any completion time.
"""

from __future__ import annotations


from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.platform import Machine, Platform
from repro.core.schedule import Schedule, WorkSlice

__all__ = [
    "equivalent_uniprocessor_instance",
    "uniprocessor_schedule_to_divisible",
    "divisible_schedule_to_uniprocessor",
]


def equivalent_uniprocessor_instance(instance: Instance) -> Instance:
    """Build the single-processor instance :math:`J^{(1)}` of Lemma 1.

    Only defined for *uniform* instances (no restricted availability among
    the jobs actually submitted); raises :class:`ModelError` otherwise.

    The equivalent machine keeps every databank of the original platform and
    has cycle time :math:`p_\\mathrm{equiv} = 1/\\sum_i 1/p_i`; the jobs are
    unchanged, so :math:`p^{(1)}_j = W_j\\,p_\\mathrm{equiv}` as in the paper.
    """
    if not instance.is_uniform():
        raise ModelError(
            "Lemma 1 only applies to uniform instances "
            "(every job must be executable on every machine)"
        )
    total_speed = instance.platform.aggregate_speed()
    machine = Machine(
        machine_id=0,
        cycle_time=1.0 / total_speed,
        cluster_id=0,
        databanks=instance.platform.databanks(),
        name="Pequiv",
    )
    return Instance(instance.jobs, Platform([machine]))


def uniprocessor_schedule_to_divisible(
    schedule: Schedule,
    instance: Instance,
) -> Schedule:
    """Reverse transformation: spread a uniprocessor schedule over all machines.

    Every slice of the single-processor schedule is replicated on each
    machine of ``instance.platform`` over the *same* time interval, with the
    work split proportionally to machine speed.  Completion times are
    preserved exactly.

    Parameters
    ----------
    schedule:
        A schedule on the equivalent uniprocessor (machine ids are ignored;
        only the time intervals and work amounts matter).
    instance:
        The original uniform multi-machine instance.
    """
    if not instance.is_uniform():
        raise ModelError("the reverse transformation requires a uniform instance")
    total_speed = instance.platform.aggregate_speed()
    slices: list[WorkSlice] = []
    for s in schedule:
        for machine in instance.platform:
            share = machine.speed / total_speed
            work = s.work * share
            if work <= 0:
                continue
            slices.append(
                WorkSlice(
                    job_id=s.job_id,
                    machine_id=machine.machine_id,
                    start=s.start,
                    end=s.end,
                    work=work,
                )
            )
    return Schedule(slices)


def divisible_schedule_to_uniprocessor(
    schedule: Schedule,
    instance: Instance,
    *,
    uniprocessor_machine_id: int = 0,
) -> Schedule:
    """Forward transformation of Lemma 1.

    Cut time at every *preemption point* (slice start or end) of the
    divisible schedule.  Inside each elementary interval, the total work
    performed on each job across all machines fits -- by the capacity
    argument of Lemma 1 -- within the interval on the equivalent processor,
    so the jobs can be serialized inside the interval in any order.  We
    serialize them in increasing job id and pack them from the start of the
    interval, which can only *decrease* completion times (the paper's
    statement: "completion times can only be decreased").

    Returns a schedule for the equivalent uniprocessor instance produced by
    :func:`equivalent_uniprocessor_instance`.
    """
    if not instance.is_uniform():
        raise ModelError("Lemma 1 only applies to uniform instances")
    total_speed = instance.platform.aggregate_speed()

    # Preemption points: all slice boundaries.
    points = sorted({s.start for s in schedule} | {s.end for s in schedule})
    slices_out: list[WorkSlice] = []
    for t0, t1 in zip(points, points[1:]):
        if t1 <= t0:
            continue
        # Work per job inside [t0, t1), pro-rated for slices that span the cut.
        work_per_job: dict[int, float] = {}
        for s in schedule:
            overlap = min(s.end, t1) - max(s.start, t0)
            if overlap <= 0:
                continue
            work = s.work * overlap / s.duration
            work_per_job[s.job_id] = work_per_job.get(s.job_id, 0.0) + work
        if not work_per_job:
            continue
        # Serialize inside the interval on the equivalent processor.
        cursor = t0
        for job_id in sorted(work_per_job):
            work = work_per_job[job_id]
            duration = work / total_speed
            end = cursor + duration
            # Numerical safety: the capacity argument guarantees end <= t1 up
            # to roundoff; clamp tiny overshoots so validation stays clean.
            if end > t1:
                if end > t1 * (1 + 1e-9) + 1e-9:
                    raise ModelError(
                        "interval capacity exceeded during Lemma 1 transformation; "
                        "the input schedule is not a valid divisible schedule"
                    )
                end = t1
            slices_out.append(
                WorkSlice(
                    job_id=job_id,
                    machine_id=uniprocessor_machine_id,
                    start=cursor,
                    end=end,
                    work=work,
                )
            )
            cursor = end
    return Schedule(slices_out)
