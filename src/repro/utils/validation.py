"""Validation helpers shared across the library.

These are deliberately tiny functions; they exist so that model classes can
raise uniform, informative error messages and so that floating-point
comparisons throughout the scheduler/LP code share a single tolerance
convention.
"""

from __future__ import annotations

import math

__all__ = [
    "ABS_TOL",
    "REL_TOL",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "almost_equal",
    "almost_leq",
    "almost_geq",
]

#: Absolute tolerance used for schedule validation and LP post-processing.
ABS_TOL = 1e-7
#: Relative tolerance used when comparing quantities that scale with job size.
REL_TOL = 1e-6


def require_positive(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is strictly positive and finite."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is finite and >= 0."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return float(value)


def almost_equal(a: float, b: float, *, abs_tol: float = ABS_TOL, rel_tol: float = REL_TOL) -> bool:
    """Floating point equality with the library-wide tolerances."""
    return math.isclose(a, b, abs_tol=abs_tol, rel_tol=rel_tol)


def almost_leq(a: float, b: float, *, abs_tol: float = ABS_TOL, rel_tol: float = REL_TOL) -> bool:
    """Return True when ``a <= b`` up to the library-wide tolerances."""
    return a <= b or almost_equal(a, b, abs_tol=abs_tol, rel_tol=rel_tol)


def almost_geq(a: float, b: float, *, abs_tol: float = ABS_TOL, rel_tol: float = REL_TOL) -> bool:
    """Return True when ``a >= b`` up to the library-wide tolerances."""
    return a >= b or almost_equal(a, b, abs_tol=abs_tol, rel_tol=rel_tol)
