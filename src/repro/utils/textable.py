"""Minimal fixed-width text table renderer.

Used by :mod:`repro.experiments.tables`, the CLI and the benchmark harness to
print result tables that mirror the layout of the tables in the paper
(heuristic name, then Mean/SD/Max for max-stretch and sum-stretch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["TextTable"]


@dataclass
class TextTable:
    """A small helper accumulating rows of cells and rendering them aligned.

    Parameters
    ----------
    headers:
        Column headers.
    float_format:
        ``format`` spec applied to float cells (default four decimals, like
        the tables of the paper).
    """

    headers: Sequence[str]
    float_format: str = ".4f"
    rows: list[list[str]] = field(default_factory=list)
    title: str | None = None

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; floats are formatted with :attr:`float_format`."""
        formatted: list[str] = []
        for cell in cells:
            if isinstance(cell, float):
                formatted.append(format(cell, self.float_format))
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def render(self) -> str:
        """Render the table as a fixed-width string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                             for i, cell in enumerate(cells))

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header_line = fmt_row(list(self.headers))
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in self.rows:
            lines.append(fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
