"""Deterministic random number generation helpers.

Every stochastic component of the library (workload generation, platform
generation, experiment replication) draws its randomness from a
:class:`numpy.random.Generator` obtained through this module, so that a
single integer seed reproduces an entire experimental campaign
bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["spawn_rng", "derive_seed", "spawn_children"]


def spawn_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer for a reproducible stream, or an
        existing generator (returned unchanged so callers can accept either).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *components: int | str) -> int:
    """Derive a child seed from ``base_seed`` and a tuple of components.

    The derivation uses :class:`numpy.random.SeedSequence` so that distinct
    component tuples yield statistically independent streams.  String
    components are hashed into stable 64-bit integers (Python's ``hash`` is
    salted per-process, so we use a simple FNV-1a instead).
    """
    ints: list[int] = [int(base_seed)]
    for comp in components:
        if isinstance(comp, str):
            ints.append(_fnv1a(comp))
        else:
            ints.append(int(comp))
    seq = np.random.SeedSequence(ints)
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def spawn_children(seed: int, count: int) -> list[int]:
    """Return ``count`` independent child seeds derived from ``seed``."""
    seq = np.random.SeedSequence(int(seed))
    return [int(s) for s in seq.generate_state(count, dtype=np.uint64)]


def _fnv1a(text: str) -> int:
    """Stable 64-bit FNV-1a hash of ``text`` (process-independent)."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def _as_int_list(values: Iterable[int]) -> Sequence[int]:
    return [int(v) for v in values]
