"""Small shared utilities: seeding, validation helpers, text tables."""

from repro.utils.seeding import spawn_rng, derive_seed
from repro.utils.validation import (
    require_positive,
    require_non_negative,
    require_in_range,
    almost_equal,
    almost_leq,
)
from repro.utils.textable import TextTable

__all__ = [
    "spawn_rng",
    "derive_seed",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "almost_equal",
    "almost_leq",
    "TextTable",
]
