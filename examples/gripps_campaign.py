#!/usr/bin/env python
"""A scaled-down version of the paper's simulation campaign (Section 5).

Generates random GriPPS-like platforms and workloads from the paper's
factorial design (platform size x number of databanks x availability x
workload density), runs the Table 1 heuristics on every instance, and prints
the aggregate degradation table plus one per-density breakdown -- i.e. a
miniature of Tables 1 and 5-10.

Run with::

    python examples/gripps_campaign.py            # quick (~1-2 minutes)
    python examples/gripps_campaign.py --full     # larger workloads (slower)
"""

from __future__ import annotations

import argparse

from repro.api import run_campaign
from repro.experiments import (
    paper_configurations,
    save_records_csv,
    table1,
    tables_by_density,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use larger workloads")
    parser.add_argument("--replicates", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--csv", type=str, default=None, help="save raw records to CSV")
    args = parser.parse_args()

    # A reduced design (one platform size, two densities) keeps this example
    # fast; the full design of the paper is available through
    # `paper_configurations()` with its default arguments.
    configs = paper_configurations(
        sites=(3,) if not args.full else (3, 10),
        databanks=(3,),
        availabilities=(0.3, 0.9),
        densities=(0.75, 2.0) if not args.full else (0.75, 1.5, 3.0),
        window=20.0 if not args.full else 60.0,
        max_jobs=15 if not args.full else 40,
    )
    scheduler_keys = ["offline", "online", "online-edf", "online-egdf",
                      "swrpt", "srpt", "spt", "bender02", "mct-div", "mct"]

    print(f"Running {len(configs)} configurations x {args.replicates} replicates ...")
    results = run_campaign(
        configs,
        scheduler_keys=scheduler_keys,
        replicates=args.replicates,
        n_workers=args.workers,
    )
    if args.csv:
        path = save_records_csv(results, args.csv)
        print(f"raw records written to {path}")

    print()
    print(table1(results).render())
    for table in tables_by_density(results).values():
        print()
        print(table.render())


if __name__ == "__main__":
    main()
