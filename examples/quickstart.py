#!/usr/bin/env python
"""Quickstart: build a tiny instance by hand and compare schedulers.

This example constructs the kind of scenario the paper's introduction
motivates: a small grid of heterogeneous clusters hosting protein databanks,
receiving a handful of motif-comparison requests, and shows how the choice of
scheduler changes the stretch experienced by each request.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Instance, Job, Machine, Platform
from repro.api import simulate
from repro.utils.textable import TextTable


def build_platform() -> Platform:
    """Two sites: a fast 2-processor cluster with both databanks, and a slower
    3-processor cluster hosting only the large databank."""
    machines = [
        Machine(0, cycle_time=0.02, cluster_id=0, databanks=frozenset({"swissprot", "pdb"})),
        Machine(1, cycle_time=0.02, cluster_id=0, databanks=frozenset({"swissprot", "pdb"})),
        Machine(2, cycle_time=0.05, cluster_id=1, databanks=frozenset({"swissprot"})),
        Machine(3, cycle_time=0.05, cluster_id=1, databanks=frozenset({"swissprot"})),
        Machine(4, cycle_time=0.05, cluster_id=1, databanks=frozenset({"swissprot"})),
    ]
    return Platform(machines)


def build_jobs() -> list[Job]:
    """A large scan of SwissProt arrives first; small PDB queries follow."""
    return [
        Job(0, release=0.0, size=800.0, databank="swissprot", name="full-scan"),
        Job(1, release=2.0, size=40.0, databank="pdb", name="motif-A"),
        Job(2, release=3.0, size=60.0, databank="pdb", name="motif-B"),
        Job(3, release=4.5, size=25.0, databank="swissprot", name="motif-C"),
        Job(4, release=6.0, size=120.0, databank="swissprot", name="motif-D"),
    ]


def main() -> None:
    platform = build_platform()
    instance = Instance(build_jobs(), platform)
    print(platform.describe())
    print()
    print(instance.describe())
    print()

    table = TextTable(
        headers=["Scheduler", "max-stretch", "sum-stretch", "max-flow (s)", "makespan (s)"]
    )
    for key in ["mct", "mct-div", "fcfs", "srpt", "swrpt", "offline", "online"]:
        result = simulate(instance, key)
        result.schedule.validate(instance)
        report = result.report()
        table.add_row(
            [result.scheduler_name, report.max_stretch, report.sum_stretch,
             report.max_flow, report.makespan]
        )
    print(table.render())
    print()

    # Show what the LP-based on-line heuristic actually does over time.
    result = simulate(instance, "online", record_events=True)
    print("Event trace of the Online heuristic:")
    for line in result.trace_lines():
        print(" ", line)
    print()
    print("Gantt chart (one line per machine, one character per time cell):")
    print(result.schedule.gantt(instance))


if __name__ == "__main__":
    main()
