#!/usr/bin/env python
"""Numerical demonstrations of Theorem 1 and Theorem 2.

Theorem 1: no algorithm can be simultaneously competitive for sum-stretch and
max-stretch.  We build the proof's instance (one job of size Delta followed
by a train of unit jobs) and watch SRPT/SWRPT starve the large job while
max-stretch-oriented algorithms (Offline, Online) keep it bounded.

Theorem 2: SWRPT is not (2 - epsilon)-competitive for sum-stretch.  We build
the Appendix A instance for several epsilons and check that the simulated
SWRPT/SRPT sum-stretch ratio approaches 2 - epsilon as the train of unit jobs
grows, matching the closed-form predictions of the proof.

Run with::

    python examples/theory_demonstrations.py
"""

from __future__ import annotations

from repro.theory import starvation_analysis, swrpt_competitive_gap
from repro.utils.textable import TextTable


def demonstrate_theorem1() -> None:
    print("=" * 72)
    print("Theorem 1 - starvation under sum-oriented scheduling")
    print("=" * 72)
    delta = 16.0
    for k in (16, 64, 256):
        report = starvation_analysis(delta, k, ["srpt", "swrpt", "fcfs", "online"])
        print(f"\nDelta = {delta:g}, k = {k} unit jobs")
        table = TextTable(headers=["Scheduler", "max-stretch", "sum-stretch"])
        table.add_row(["(sum-friendly ref.)", report.sum_friendly_max_stretch,
                       report.sum_friendly_sum_stretch])
        table.add_row(["(max-friendly ref.)", report.max_friendly_max_stretch,
                       report.max_friendly_sum_stretch])
        for name, (max_s, sum_s) in report.measured.items():
            table.add_row([name, max_s, sum_s])
        print(table.render())
    print(
        "\nAs k grows, SRPT/SWRPT max-stretch grows like 1 + k/Delta (the large job\n"
        "starves), while the max-stretch-oriented strategies stay near 1 + Delta."
    )


def demonstrate_theorem2() -> None:
    print()
    print("=" * 72)
    print("Theorem 2 - SWRPT is not (2 - eps)-competitive for sum-stretch")
    print("=" * 72)
    table = TextTable(
        headers=["epsilon", "l", "SRPT sum-S", "SWRPT sum-S", "ratio", "target 2-eps"]
    )
    for epsilon, n_unit in [(0.5, 50), (0.5, 400), (0.3, 400), (0.2, 800)]:
        report = swrpt_competitive_gap(epsilon, n_unit)
        table.add_row(
            [epsilon, n_unit, report.srpt_sum_stretch, report.swrpt_sum_stretch,
             report.ratio, report.target]
        )
    print(table.render())
    print(
        "\nThe ratio climbs towards 2 - epsilon as the unit-job train lengthens,\n"
        "matching the closed-form analysis of Appendix A."
    )


if __name__ == "__main__":
    demonstrate_theorem1()
    demonstrate_theorem2()
