#!/usr/bin/env python
"""Lemma 1 in action: uniform divisible platforms behave like one big processor.

We generate a random uniform instance (every machine hosts every databank),
run SWRPT both

* directly on the heterogeneous multi-machine platform (using the greedy
  distribution rule of Section 3), and
* on the *equivalent uniprocessor* of Lemma 1, mapping the schedule back to
  the original machines with the reverse transformation,

and check that per-job completion times coincide.  We also apply the forward
transformation to the multi-machine schedule and verify that completion times
never increase, which is exactly the statement of Lemma 1.

Run with::

    python examples/lemma1_equivalence.py
"""

from __future__ import annotations

import numpy as np

from repro import Instance, Job, Platform, make_scheduler, simulate
from repro.core.transform import (
    divisible_schedule_to_uniprocessor,
    equivalent_uniprocessor_instance,
    uniprocessor_schedule_to_divisible,
)
from repro.utils.textable import TextTable


def build_uniform_instance(seed: int = 11) -> Instance:
    rng = np.random.default_rng(seed)
    platform = Platform.uniform([0.02, 0.03, 0.05, 0.08], databanks=["bank"])
    jobs = []
    t = 0.0
    for i in range(10):
        t += float(rng.exponential(0.6))
        jobs.append(Job(i, release=t, size=float(rng.uniform(20, 300)), databank="bank"))
    return Instance(jobs, platform)


def main() -> None:
    instance = build_uniform_instance()
    equivalent = equivalent_uniprocessor_instance(instance)
    print(instance.platform.describe())
    print(
        f"Equivalent processor cycle time: "
        f"{equivalent.platform[0].cycle_time:.5f} s/MB "
        f"(aggregate speed {instance.platform.aggregate_speed():.1f} MB/s)"
    )
    print()

    multi = simulate(instance, make_scheduler("swrpt"))
    uni = simulate(equivalent, make_scheduler("swrpt"))

    table = TextTable(
        headers=["Job", "C_j on platform", "C_j on equivalent processor", "difference"]
    )
    for job in instance.jobs:
        c_multi = multi.completions[job.job_id]
        c_uni = uni.completions[job.job_id]
        table.add_row([job.label, c_multi, c_uni, abs(c_multi - c_uni)])
    print(table.render())
    print()

    # Reverse transformation: lift the uniprocessor schedule onto the platform.
    lifted = uniprocessor_schedule_to_divisible(uni.schedule, instance)
    lifted.validate(instance)
    print("Reverse transformation produces a valid divisible schedule "
          "with identical completion times:",
          all(
              abs(lifted.completion_time(j.job_id) - uni.completions[j.job_id]) < 1e-6
              for j in instance.jobs
          ))

    # Forward transformation: completion times can only decrease (Lemma 1).
    projected = divisible_schedule_to_uniprocessor(multi.schedule, instance)
    projected.validate(equivalent)
    decreased = all(
        projected.completion_time(j.job_id) <= multi.completions[j.job_id] + 1e-6
        for j in instance.jobs
    )
    print("Forward transformation never increases completion times:", decreased)


if __name__ == "__main__":
    main()
