#!/usr/bin/env python
"""Operating a bioinformatics portal: production policy vs stretch-aware policy.

The GriPPS portal of the paper served motif-comparison requests with a simple
minimum-completion-time policy (MCT).  Section 5.3 shows why this is a poor
choice: small requests arriving behind a long scan are stretched enormously,
and automatic submission scripts (long trains of small jobs) can starve
interactive users.  This example replays such an operational scenario --
a long automated scan followed by a burst of small interactive queries --
and compares:

* ``MCT``        the production policy,
* ``SWRPT``      the best sum-stretch heuristic (but starvation-prone),
* ``Online``     the paper's LP-based max-stretch heuristic.

It prints the per-job stretch of every request under each policy, then the
tail of the stretch distribution, which is what an interactive user actually
experiences.

Run with::

    python examples/online_portal.py
"""

from __future__ import annotations

import numpy as np

from repro import Instance, Job, Platform
from repro.api import simulate
from repro.core.platform import Machine
from repro.utils.textable import TextTable


def build_scenario(seed: int = 7) -> Instance:
    """One fast site with the 'nr' databank, one slower site with both."""
    rng = np.random.default_rng(seed)
    machines = []
    mid = 0
    for cluster, (count, cycle, banks) in enumerate(
        [(6, 0.02, {"nr"}), (4, 0.035, {"nr", "uniprot"})]
    ):
        for _ in range(count):
            machines.append(Machine(mid, cycle, cluster, frozenset(banks)))
            mid += 1
    platform = Platform(machines)

    jobs = []
    job_id = 0
    # An automated pipeline submits a train of large scans of 'nr'.
    t = 0.0
    for _ in range(4):
        jobs.append(Job(job_id, release=t, size=600.0, databank="nr", name=f"pipeline-{job_id}"))
        job_id += 1
        t += float(rng.exponential(3.0))
    # Interactive users submit small 'uniprot' queries during the same window.
    t = 1.0
    for _ in range(12):
        size = float(rng.uniform(10.0, 60.0))
        jobs.append(Job(job_id, release=t, size=size, databank="uniprot", name=f"user-{job_id}"))
        job_id += 1
        t += float(rng.exponential(1.5))
    return Instance(jobs, platform)


def main() -> None:
    instance = build_scenario()
    print(instance.platform.describe())
    print(f"{instance.n_jobs} requests, size ratio Delta = {instance.delta():.1f}")
    print()

    policies = ["mct", "swrpt", "online"]
    per_job: dict[str, dict[int, float]] = {}
    summary = TextTable(
        headers=["Policy", "max-stretch", "mean-stretch", "95th pct stretch", "sum-stretch"]
    )
    for key in policies:
        result = simulate(instance, key)
        stretches = result.stretches()
        per_job[result.scheduler_name] = stretches
        values = np.array(sorted(stretches.values()))
        summary.add_row(
            [
                result.scheduler_name,
                float(values.max()),
                float(values.mean()),
                float(np.percentile(values, 95)),
                float(values.sum()),
            ]
        )
    print(summary.render())
    print()

    detail = TextTable(headers=["Request", "databank", "size (MB)"] + list(per_job))
    for job in instance.jobs:
        detail.add_row(
            [job.label, job.databank, job.size]
            + [per_job[name][job.job_id] for name in per_job]
        )
    print(detail.render())
    print()
    print(
        "The Online policy keeps the worst-case (interactive) stretch close to the\n"
        "optimum while remaining within a few percent of SWRPT's sum-stretch;\n"
        "MCT lets small interactive queries queue behind the pipeline scans."
    )


if __name__ == "__main__":
    main()
