"""Compatibility shim: allows `python setup.py develop` / legacy editable installs
on environments without the `wheel` package (PEP 660 editable installs require
it).  All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
