"""Unit tests for :mod:`repro.core.metrics`."""

from __future__ import annotations

import math

import pytest

from repro.core import metrics
from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform


@pytest.fixture
def instance() -> Instance:
    platform = Platform.uniform([1.0], databanks=["db"])
    jobs = [
        Job(0, release=0.0, size=4.0, databank="db"),
        Job(1, release=2.0, size=1.0, databank="db"),
    ]
    return Instance(jobs, platform)


@pytest.fixture
def completions() -> dict[int, float]:
    # Job 0 runs [0, 4]; job 1 runs [4, 5].
    return {0: 4.0, 1: 5.0}


class TestPerJobMetrics:
    def test_flow_times(self, instance, completions):
        flows = metrics.flow_times(instance, completions)
        assert flows == {0: pytest.approx(4.0), 1: pytest.approx(3.0)}

    def test_stretches(self, instance, completions):
        stretches = metrics.stretches(instance, completions)
        assert stretches[0] == pytest.approx(1.0)
        assert stretches[1] == pytest.approx(3.0)

    def test_weighted_flows_default_weights(self, instance, completions):
        weighted = metrics.weighted_flows(instance, completions)
        # Default weights are stretch weights, so values equal the stretches.
        assert weighted[1] == pytest.approx(3.0)

    def test_weighted_flows_custom_weights(self, instance, completions):
        weighted = metrics.weighted_flows(instance, completions, weights={0: 2.0, 1: 10.0})
        assert weighted[0] == pytest.approx(8.0)
        assert weighted[1] == pytest.approx(30.0)

    def test_missing_completion_rejected(self, instance):
        with pytest.raises(ModelError):
            metrics.flow_times(instance, {0: 4.0})

    def test_completion_before_release_rejected(self, instance):
        with pytest.raises(ModelError):
            metrics.flow_times(instance, {0: 4.0, 1: 1.0})


class TestScalarMetrics:
    def test_makespan(self, instance, completions):
        assert metrics.makespan(instance, completions) == pytest.approx(5.0)

    def test_sums_and_maxima(self, instance, completions):
        assert metrics.sum_flow(instance, completions) == pytest.approx(7.0)
        assert metrics.max_flow(instance, completions) == pytest.approx(4.0)
        assert metrics.mean_flow(instance, completions) == pytest.approx(3.5)
        assert metrics.sum_stretch(instance, completions) == pytest.approx(4.0)
        assert metrics.max_stretch(instance, completions) == pytest.approx(3.0)
        assert metrics.mean_stretch(instance, completions) == pytest.approx(2.0)
        assert metrics.sum_weighted_flow(instance, completions) == pytest.approx(4.0)
        assert metrics.max_weighted_flow(instance, completions) == pytest.approx(3.0)

    def test_evaluate_report(self, instance, completions):
        report = metrics.evaluate(instance, completions)
        assert report.makespan == pytest.approx(5.0)
        assert report.sum_stretch == pytest.approx(4.0)
        assert report.max_stretch == pytest.approx(3.0)
        assert report.n_jobs == 2
        as_dict = report.as_dict()
        assert set(as_dict) >= {"makespan", "sum_stretch", "max_stretch", "n_jobs"}


class TestNormalization:
    def test_normalize_by_best(self):
        values = {"a": 2.0, "b": 4.0, "c": 3.0}
        normalized = metrics.normalize_by_best(values)
        assert normalized == {"a": 1.0, "b": 2.0, "c": 1.5}

    def test_normalize_empty(self):
        assert metrics.normalize_by_best({}) == {}

    def test_normalize_rejects_non_positive_best(self):
        with pytest.raises(ModelError):
            metrics.normalize_by_best({"a": 0.0})

    def test_normalize_rejects_all_infinite(self):
        with pytest.raises(ModelError):
            metrics.normalize_by_best({"a": math.inf})

    def test_degradations_with_reference(self):
        result = metrics.degradations({"a": 2.0, "b": 3.0}, reference=2.0)
        assert result == {"a": 1.0, "b": 1.5}

    def test_degradations_without_reference_uses_best(self):
        result = metrics.degradations({"a": 2.0, "b": 3.0})
        assert result == {"a": 1.0, "b": 1.5}

    def test_degradations_rejects_bad_reference(self):
        with pytest.raises(ModelError):
            metrics.degradations({"a": 1.0}, reference=0.0)


class TestStretchDefinition:
    def test_stretch_is_one_for_lonely_job_on_full_platform(self):
        platform = Platform.uniform([1.0, 0.5], databanks=["db"])
        instance = Instance([Job(0, release=3.0, size=6.0, databank="db")], platform)
        # Aggregate speed is 3, ideal time is 2 -> completing at release + 2 gives stretch 1.
        stretches = metrics.stretches(instance, {0: 5.0})
        assert stretches[0] == pytest.approx(1.0)

    def test_stretch_accounts_for_restricted_availability(self):
        from repro.core.platform import Machine

        platform = Platform(
            [
                Machine(0, 1.0, 0, frozenset({"a"})),
                Machine(1, 1.0, 1, frozenset({"b"})),
            ]
        )
        instance = Instance([Job(0, release=0.0, size=2.0, databank="a")], platform)
        # Only machine 0 (speed 1) can serve the job: ideal time is 2 seconds.
        assert metrics.stretches(instance, {0: 2.0})[0] == pytest.approx(1.0)
