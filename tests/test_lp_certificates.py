"""Tests for the certificate-guided parametric milestone search.

Three families of guarantees:

* **Soundness of the parametric bound** -- within its own milestone
  interval's structure a dual-ray bound is exact: it refutes the whole
  probed range (``bound >= f_high``).  Beyond that interval the structure is
  stale and the bound may overshoot the optimum, which is why the search
  treats bounds as probe-order hints only; the *search* never excludes a
  feasible milestone -- acceptance always requires the interior-optimum
  proof or a solved infeasible probe directly below (the equivalence tests
  below pin that down, including a regression instance whose rays overshoot
  ``F*`` by ~25%).
* **Result equivalence** -- the certificate search returns the same
  :math:`S^*` and allocations as the legacy gallop, across seeds, backends
  and whole replan sequences (bit-identical on the stateless scipy backend,
  within solver tolerance on persistent HiGHS).
* **Graceful degradation** -- backends without dual-ray support (scipy) run
  the same search without certificates: no bounds, no skips from jumps, and
  still-correct results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.backends import highs_available, make_backend, record_lp_probes
from repro.lp.incremental import ReplanContext
from repro.lp.maxstretch import (
    MilestoneSearchReport,
    ProbeOutcome,
    SearchCertificate,
    minimize_max_weighted_flow,
    solve_on_objective_range,
)
from repro.lp.problem import problem_from_instance
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

requires_highs = pytest.mark.skipif(
    not highs_available(),
    reason="neither highspy nor scipy-vendored HiGHS bindings are available",
)

SEEDS = [0, 7, 11, 2006]


def _problem(seed: int, *, max_jobs: int = 18, density: float = 1.5):
    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=4, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(density=density, window=30.0, max_jobs=max_jobs)
    instance = generate_instance(platform_spec, workload_spec, rng=seed)
    return instance, problem_from_instance(instance)


# -- soundness of the parametric bound ----------------------------------------------


def _milestone_boundaries(problem):
    from repro.lp.milestones import enumerate_milestones

    f_lb = problem.objective_lower_bound()
    f_ub = problem.objective_upper_bound()
    return [f_lb] + enumerate_milestones(problem, lower=f_lb, upper=f_ub) + [f_ub]


@requires_highs
@pytest.mark.parametrize("seed", SEEDS)
class TestDualRayBoundSoundness:
    def test_bound_refutes_its_own_milestone_interval(self, seed):
        """Property: within the probed milestone interval the bound is exact.

        The certificate's affine combination ``g(F) = A + B F`` must be
        negative on the *whole* probed interval (that structure is valid
        there), i.e. the bound -- the zero crossing of ``g`` -- lies at or
        above the interval's upper end.  This is the guarantee the search's
        upward jump relies on; never excluding a feasible milestone is then
        enforced structurally (see the equivalence tests).
        """
        _instance, problem = _problem(seed)
        best = minimize_max_weighted_flow(problem)
        boundaries = _milestone_boundaries(problem)
        # Probe infeasible milestone intervals below the optimum, as the
        # search does (one structure per interval).
        import bisect

        first_feasible = bisect.bisect_right(boundaries, best.objective * (1 - 1e-9)) - 1
        probed = 0
        backend = make_backend("highs")
        try:
            for i in range(0, max(1, first_feasible), max(1, first_feasible // 5)):
                outcome = ProbeOutcome()
                result = solve_on_objective_range(
                    problem,
                    boundaries[i],
                    boundaries[i + 1],
                    backend=backend,
                    outcome=outcome,
                )
                if result is not None:
                    continue
                probed += 1
                if outcome.certificate_bound is None:
                    continue  # F-insensitive ray: rejected by the guard
                assert outcome.certificate_bound >= boundaries[i + 1] * (1 - 1e-9), (
                    f"bound {outcome.certificate_bound} fails to refute its own "
                    f"probed interval [{boundaries[i]}, {boundaries[i + 1]}]"
                )
        finally:
            backend.close()
        assert probed > 0, "no infeasible milestone interval below the optimum"

    def test_reevaluated_bound_matches_affine_form(self, seed):
        """``bound_for`` reproduces ``-A/B`` from the carried components."""
        _instance, problem = _problem(seed)
        boundaries = _milestone_boundaries(problem)
        backend = make_backend("highs")
        outcome = ProbeOutcome()
        try:
            result = solve_on_objective_range(
                problem, boundaries[0], boundaries[1], backend=backend, outcome=outcome
            )
        finally:
            backend.close()
        if result is not None or outcome.certificate is None:
            pytest.skip("first milestone interval produced no certificate")
        certificate = outcome.certificate
        works = {job.job_id: job.remaining_work for job in problem.jobs}
        assert certificate.bound_for(works) == pytest.approx(
            outcome.certificate_bound, rel=1e-12
        )


# -- certificate-vs-gallop equality ----------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
class TestSearchEquivalence:
    def test_scipy_results_bit_identical(self, seed):
        _instance, problem = _problem(seed)
        gallop = minimize_max_weighted_flow(problem, search="gallop")
        certificate = minimize_max_weighted_flow(problem, search="certificate")
        assert certificate.objective == gallop.objective
        assert certificate.allocations == gallop.allocations

    @requires_highs
    def test_highs_results_within_solver_tolerance(self, seed):
        _instance, problem = _problem(seed)
        backend_g = make_backend("highs")
        backend_c = make_backend("highs")
        try:
            gallop = minimize_max_weighted_flow(problem, backend=backend_g, search="gallop")
            certificate = minimize_max_weighted_flow(
                problem, backend=backend_c, search="certificate"
            )
        finally:
            backend_g.close()
            backend_c.close()
        assert certificate.objective == pytest.approx(gallop.objective, rel=1e-9)
        for job in problem.jobs:
            assert certificate.work_for_job(job.job_id) == pytest.approx(
                job.remaining_work, rel=1e-6
            )

    def test_warm_started_searches_agree(self, seed):
        """Warm starts (any index) only reorder probes, never change results."""
        _instance, problem = _problem(seed)
        reference = minimize_max_weighted_flow(problem, search="gallop")
        for warm in (None, 1.0, reference.objective, 10.0 * reference.objective):
            warmed = minimize_max_weighted_flow(
                problem, warm_start=warm, search="certificate"
            )
            assert warmed.objective == reference.objective


@requires_highs
def test_overshooting_certificates_regression():
    """Rays whose bounds overshoot F* must not mislead the search.

    Regression instance (from the campaign A/B gate): the dual rays of the
    low-availability 2-cluster workload produce bounds ~25% above the true
    optimum; an earlier draft of the downward phase let such a bound advance
    the sound floor and accepted S* = 12.23 instead of 10.17.  Acceptance
    must come from solved probes (or the interior proof) only.
    """
    from repro.experiments.config import ExperimentConfig
    from repro.utils.seeding import derive_seed

    config = ExperimentConfig(
        name="bench-low",
        n_clusters=2,
        n_databanks=2,
        availability=0.6,
        density=1.0,
        processors_per_cluster=5,
        window=60.0,
        max_jobs=30,
    )
    seed = derive_seed(2006, "bench-low", 3)
    instance = generate_instance(config.platform_spec(), config.workload_spec(), rng=seed)
    problem = problem_from_instance(instance)
    reference = minimize_max_weighted_flow(problem, search="gallop")
    backend = make_backend("highs")
    try:
        certified = minimize_max_weighted_flow(
            problem, backend=backend, search="certificate"
        )
    finally:
        backend.close()
    assert certified.objective == pytest.approx(reference.objective, rel=1e-9)


@pytest.mark.parametrize("backend_name", ["scipy", pytest.param("highs", marks=requires_highs)])
def test_replan_sequence_equivalence(backend_name):
    """Certificate-guided contexts track gallop contexts over whole replan runs."""
    instance, _problem_unused = _problem(5, max_jobs=20, density=2.0)
    ctx_gallop = ReplanContext(
        instance, solver_backend=backend_name, milestone_search="gallop"
    )
    ctx_cert = ReplanContext(
        instance, solver_backend=backend_name, milestone_search="certificate"
    )
    remaining = {job.job_id: job.size for job in instance.jobs}
    try:
        for now in (0.0, 4.0, 9.0):
            active = dict(remaining)
            p_gallop = ctx_gallop.build_problem(now, active)
            p_cert = ctx_cert.build_problem(now, active)
            s_gallop = ctx_gallop.solve_max_stretch(p_gallop)
            s_cert = ctx_cert.solve_max_stretch(p_cert)
            assert s_cert.objective == pytest.approx(s_gallop.objective, rel=1e-9)
            remaining = {j: 0.6 * r for j, r in remaining.items()}
    finally:
        ctx_gallop.close()
        ctx_cert.close()
    # The certificate context never solves more probes than the gallop one.
    assert ctx_cert.n_probes_solved <= ctx_gallop.n_probes_solved


# -- graceful no-certificate fallback -------------------------------------------------


class TestScipyFallback:
    def test_no_certificate_on_scipy(self):
        _instance, problem = _problem(3)
        best = minimize_max_weighted_flow(problem)
        lo = problem.objective_lower_bound()
        target = lo + 0.5 * (best.objective - lo)
        if target <= lo:
            pytest.skip("degenerate instance: optimum equals the lower bound")
        outcome = ProbeOutcome()
        probe = solve_on_objective_range(problem, lo, target, outcome=outcome)
        assert probe is None
        assert outcome.certificate is None
        assert outcome.certificate_bound is None

    def test_search_report_has_no_certificate_carry(self):
        _instance, problem = _problem(3)
        report = MilestoneSearchReport()
        minimize_max_weighted_flow(problem, search="certificate", report=report)
        assert report.certificate is None
        assert report.n_solved > 0

    def test_interior_exit_still_prunes_on_scipy(self):
        """The interior-optimum re-check needs no certificate support."""
        _instance, problem = _problem(7)
        reference = minimize_max_weighted_flow(problem, search="gallop")
        report = MilestoneSearchReport()
        warmed = minimize_max_weighted_flow(
            problem,
            warm_start=reference.objective,
            search="certificate",
            report=report,
        )
        assert warmed.objective == reference.objective
        if report.interior_exit:
            assert report.n_solved == 1  # the winning probe proved itself optimal


class TestUnknownSearchMode:
    def test_rejected(self):
        _instance, problem = _problem(0, max_jobs=6)
        with pytest.raises(ValueError, match="unknown milestone search"):
            minimize_max_weighted_flow(problem, search="bogus")


# -- cross-replan certificate carry ---------------------------------------------------


class TestSearchCertificateCarry:
    def test_bound_for_drops_missing_jobs(self):
        certificate = SearchCertificate(
            capacity_const=-10.0, capacity_coef=2.0, v_by_job={1: 1.0, 2: 3.0}
        )
        full = certificate.bound_for({1: 2.0, 2: 1.0})
        assert full == pytest.approx(-(-10.0 + 2.0 + 3.0) / 2.0)
        partial = certificate.bound_for({1: 2.0})
        assert partial == pytest.approx(-(-10.0 + 2.0) / 2.0)

    def test_bound_for_degenerate_coefficient(self):
        certificate = SearchCertificate(
            capacity_const=-10.0, capacity_coef=0.0, v_by_job={}
        )
        assert certificate.bound_for({}) is None

    @requires_highs
    def test_context_carries_certificates_across_replans(self):
        instance, _problem_unused = _problem(5, max_jobs=20, density=2.0)
        context = ReplanContext(instance, solver_backend="highs")
        remaining = {job.job_id: job.size for job in instance.jobs}
        try:
            context.solve_max_stretch(context.build_problem(0.0, remaining))
            carried = context.last_certificate
            if carried is not None:
                # The next replan's warm hint folds the re-evaluated bound in.
                problem = context.build_problem(1.0, remaining)
                hint = context._warm_hint(problem)
                assert hint is not None
                assert hint >= context.last_objective - 1e-12
            second = context.solve_max_stretch(context.build_problem(1.0, remaining))
            reference = minimize_max_weighted_flow(problem_from_instance(instance, now=1.0))
            assert second.objective == pytest.approx(reference.objective, rel=1e-8)
        finally:
            context.close()


# -- probe accounting -----------------------------------------------------------------


class TestProbeHistogram:
    def test_record_lp_probes_collects_searches(self):
        _instance, problem = _problem(0)
        with record_lp_probes() as stats:
            minimize_max_weighted_flow(problem, search="certificate")
        assert len(stats.searches) == 1
        solved, skipped = stats.searches[0]
        assert solved >= 1
        assert stats.n_certificate_skipped == skipped
        histogram = stats.histogram()
        assert histogram["solved"] == stats.n_probes
        assert set(histogram) == {
            "solved",
            "certificate_skipped",
            "basis_reused",
            "interior_exits",
            "bank_hits",
            "bank_misses",
            "primal_reuses",
            "spec_hits",
            "spec_misses",
        }
        # The new per-phase timing split is live alongside the counters.
        assert stats.assembly_seconds > 0.0
        assert stats.search_seconds >= stats.assembly_seconds

    @requires_highs
    def test_certificate_search_solves_fewer_lps(self):
        _instance, problem = _problem(7, max_jobs=24, density=2.0)
        counts = {}
        for mode in ("gallop", "certificate"):
            backend = make_backend("highs")
            try:
                with record_lp_probes() as stats:
                    minimize_max_weighted_flow(problem, backend=backend, search=mode)
            finally:
                backend.close()
            counts[mode] = stats.n_probes
        assert counts["certificate"] < counts["gallop"]

    @requires_highs
    def test_basis_reuse_counted(self):
        _instance, problem = _problem(7, max_jobs=20, density=2.0)
        backend = make_backend("highs")
        try:
            with record_lp_probes() as stats:
                minimize_max_weighted_flow(problem, backend=backend)
        finally:
            backend.close()
        assert stats.n_basis_reused >= 1

    def test_simulation_result_carries_probe_stats(self):
        from repro.schedulers.registry import make_scheduler
        from repro.simulation.engine import simulate

        instance, _problem_unused = _problem(1, max_jobs=8)
        result = simulate(instance, make_scheduler("online"))
        assert result.lp_probes.n_probes > 0
        result_lp_free = simulate(instance, make_scheduler("swrpt"))
        assert result_lp_free.lp_probes.n_probes == 0


# -- dual-ray sanity against raw numpy ------------------------------------------------


@requires_highs
def test_dual_ray_sign_convention():
    """The normalized ray certifies min-over-box LHS > RHS on the raw arrays."""
    from scipy import sparse

    from repro.lp.solver import LinearProgramBuilder

    builder = LinearProgramBuilder()
    x = builder.add_variable(upper=1.0)
    y = builder.add_variable(upper=1.0)
    builder.add_eq([(x, 1.0), (y, 1.0)], 5.0)  # infeasible: x + y <= 2 < 5
    backend = make_backend("highs")
    try:
        result = builder.solve(backend=backend, key="ray-probe", warm=None)
    finally:
        backend.close()
    assert not result.feasible
    if result.dual_ray is None:
        pytest.skip("bindings produced no dual ray for this solve")
    spec = builder.spec()
    ray = result.dual_ray
    matrix = sparse.coo_matrix(
        (list(spec.eq_vals), (list(spec.eq_rows), list(spec.eq_cols))),
        shape=(len(spec.eq_rhs), spec.n_vars),
    ).toarray()
    reduced = ray @ matrix
    rhs = float(ray @ np.asarray(spec.eq_rhs))
    lower = reduced * np.asarray(spec.lower)
    upper = reduced * np.asarray(spec.upper)
    box_min = float(np.where(reduced > 0, lower, upper).sum())
    assert box_min > rhs  # the aggregated constraint is violated over the box
