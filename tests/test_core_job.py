"""Unit tests for :mod:`repro.core.job`."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.core.job import Job, JobSet, jobs_sorted_by_release, renumber_jobs


class TestJob:
    def test_basic_construction(self):
        job = Job(3, release=1.5, size=10.0, databank="db", name="scan")
        assert job.job_id == 3
        assert job.release == 1.5
        assert job.size == 10.0
        assert job.databank == "db"
        assert job.label == "scan"

    def test_default_label_uses_id(self):
        assert Job(7, release=0.0, size=1.0).label == "J7"

    def test_negative_id_rejected(self):
        with pytest.raises(ModelError):
            Job(-1, release=0.0, size=1.0)

    def test_negative_release_rejected(self):
        with pytest.raises(ModelError):
            Job(0, release=-1.0, size=1.0)

    def test_zero_size_rejected(self):
        with pytest.raises(ModelError):
            Job(0, release=0.0, size=0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ModelError):
            Job(0, release=0.0, size=1.0, weight=-2.0)

    def test_infinite_size_rejected(self):
        with pytest.raises(ModelError):
            Job(0, release=0.0, size=float("inf"))

    def test_with_release_returns_copy(self):
        job = Job(0, release=0.0, size=1.0)
        shifted = job.with_release(4.0)
        assert shifted.release == 4.0
        assert job.release == 0.0
        assert shifted.job_id == job.job_id

    def test_with_size_and_with_id(self):
        job = Job(0, release=0.0, size=1.0)
        assert job.with_size(3.0).size == 3.0
        assert job.with_id(9).job_id == 9

    def test_jobs_are_hashable_and_frozen(self):
        job = Job(0, release=0.0, size=1.0)
        assert hash(job) == hash(Job(0, release=0.0, size=1.0))
        with pytest.raises(AttributeError):
            job.size = 2.0  # type: ignore[misc]


class TestJobSet:
    def make(self):
        return JobSet(
            [
                Job(2, release=3.0, size=1.0),
                Job(0, release=0.0, size=4.0),
                Job(1, release=1.0, size=2.0),
            ]
        )

    def test_len_and_iteration(self):
        jobs = self.make()
        assert len(jobs) == 3
        assert {j.job_id for j in jobs} == {0, 1, 2}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ModelError):
            JobSet([Job(0, release=0.0, size=1.0), Job(0, release=1.0, size=1.0)])

    def test_non_job_rejected(self):
        with pytest.raises(ModelError):
            JobSet([object()])  # type: ignore[list-item]

    def test_by_id(self):
        jobs = self.make()
        assert jobs.by_id(1).release == 1.0
        with pytest.raises(KeyError):
            jobs.by_id(42)

    def test_sorted_by_release(self):
        jobs = self.make().sorted_by_release()
        assert [j.job_id for j in jobs] == [0, 1, 2]

    def test_released_before(self):
        jobs = self.make()
        assert jobs.released_before(1.0).ids() == (1, 0) or set(
            jobs.released_before(1.0).ids()
        ) == {0, 1}
        assert set(jobs.released_before(1.0, inclusive=False).ids()) == {0}
        assert len(jobs.released_before(100.0)) == 3

    def test_total_work_and_size_ratio(self):
        jobs = self.make()
        assert jobs.total_work() == pytest.approx(7.0)
        assert jobs.size_ratio() == pytest.approx(4.0)

    def test_size_ratio_empty_raises(self):
        with pytest.raises(ModelError):
            JobSet([]).size_ratio()

    def test_databanks(self):
        jobs = JobSet(
            [
                Job(0, release=0.0, size=1.0, databank="a"),
                Job(1, release=0.0, size=1.0, databank="b"),
                Job(2, release=0.0, size=1.0),
            ]
        )
        assert jobs.databanks() == frozenset({"a", "b"})

    def test_contains_and_equality(self):
        jobs = self.make()
        assert Job(0, release=0.0, size=4.0) in jobs
        assert Job(0, release=0.0, size=5.0) not in jobs
        assert jobs == JobSet(list(jobs))
        assert jobs != JobSet([Job(0, release=0.0, size=4.0)])

    def test_slicing_returns_jobset(self):
        jobs = self.make()
        subset = jobs[:2]
        assert isinstance(subset, JobSet)
        assert len(subset) == 2

    def test_ids_order_preserved(self):
        jobs = self.make()
        assert jobs.ids() == (2, 0, 1)


class TestHelpers:
    def test_jobs_sorted_by_release_tie_broken_by_id(self):
        jobs = [Job(5, release=1.0, size=1.0), Job(2, release=1.0, size=1.0)]
        assert [j.job_id for j in jobs_sorted_by_release(jobs)] == [2, 5]

    def test_renumber_jobs(self):
        jobs = [
            Job(10, release=5.0, size=1.0),
            Job(20, release=0.0, size=2.0),
            Job(30, release=2.0, size=3.0),
        ]
        renumbered = renumber_jobs(jobs)
        assert [j.job_id for j in renumbered] == [0, 1, 2]
        assert [j.release for j in renumbered] == [0.0, 2.0, 5.0]
        assert [j.size for j in renumbered] == [2.0, 3.0, 1.0]
