"""Tests of the stable ``repro.api`` facade and its top-level re-exports."""

from __future__ import annotations

import json
import urllib.request

import pytest

import repro
from repro import api
from repro.core.errors import ReproError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.experiments.config import small_configurations
from repro.schedulers.registry import make_scheduler


def tiny_instance() -> Instance:
    platform = Platform.uniform([1.0, 0.5], databanks=["db"])
    jobs = [
        Job(0, release=0.0, size=4.0, databank="db"),
        Job(1, release=1.0, size=1.0, databank="db"),
    ]
    return Instance(jobs, platform)


class TestReExports:
    def test_facade_is_the_top_level_surface(self):
        for name in ("simulate", "run_campaign", "merge", "report", "serve",
                     "CampaignReport", "ExperimentConfig", "ExperimentResults",
                     "MergeReport", "api"):
            assert hasattr(repro, name), name
        assert repro.simulate is api.simulate
        assert repro.serve is api.serve

    def test_facade_functions_carry_reference_docstrings(self):
        for fn in (api.simulate, api.run_campaign, api.merge, api.report,
                   api.serve):
            assert fn.__doc__ and "Returns" in fn.__doc__


class TestSimulate:
    def test_accepts_registry_key(self):
        result = api.simulate(tiny_instance(), "srpt")
        assert sorted(result.completions) == [0, 1]

    def test_accepts_scheduler_instance(self):
        result = api.simulate(tiny_instance(), make_scheduler("srpt"))
        assert result.scheduler_name == "SRPT"

    def test_key_and_options(self):
        result = api.simulate(
            tiny_instance(), "online", scheduler_options={"policy": "batched:1"}
        )
        assert sorted(result.completions) == [0, 1]

    def test_options_with_instance_is_an_error(self):
        with pytest.raises(TypeError, match="registry key"):
            api.simulate(
                tiny_instance(), make_scheduler("srpt"),
                scheduler_options={"policy": "on-arrival"},
            )

    def test_matches_engine_simulate_exactly(self):
        from repro.simulation.engine import simulate as engine_simulate

        via_api = api.simulate(tiny_instance(), "swrpt")
        via_engine = engine_simulate(tiny_instance(), make_scheduler("swrpt"))
        assert via_api.completions == via_engine.completions


class TestCampaignPipeline:
    def test_run_merge_report_round_trip(self, tmp_path):
        configs = [small_configurations(window=30.0, max_jobs=6)[0]]
        journal = tmp_path / "run.jsonl"
        results = api.run_campaign(
            configs, scheduler_keys=["fcfs", "srpt"], replicates=1,
            checkpoint=journal,
        )
        assert len(results) == 2
        merged = api.merge([journal], output=tmp_path / "merged.jsonl")
        assert merged.complete
        assert (tmp_path / "merged.jsonl").exists()
        outcome = api.report(tmp_path / "merged.jsonl", tmp_path / "report")
        assert (tmp_path / "report" / "CAMPAIGN_summary.json").exists()
        assert outcome.summary["n_records"] == 2
        assert outcome.output_dir == tmp_path / "report"

    def test_report_accepts_a_merge_report(self, tmp_path):
        configs = [small_configurations(window=30.0, max_jobs=6)[0]]
        journal = tmp_path / "run.jsonl"
        api.run_campaign(configs, scheduler_keys=["fcfs"], replicates=1,
                         checkpoint=journal)
        merged = api.merge([journal])
        outcome = api.report(merged, tmp_path / "report")
        assert outcome.merged is merged

    def test_report_refuses_gaps(self, tmp_path):
        configs = [small_configurations(window=30.0, max_jobs=6)[0]]
        journal = tmp_path / "run.jsonl"
        api.run_campaign(configs, scheduler_keys=["fcfs", "srpt"], replicates=2,
                         shard="1/2", checkpoint=journal)
        with pytest.raises(ReproError, match="does not cover the full design"):
            api.report(journal, tmp_path / "report")
        outcome = api.report(journal, tmp_path / "report", allow_gaps=True)
        assert not outcome.merged.complete


class TestServe:
    def test_serve_boots_and_drains(self, tmp_path):
        platform = Platform.uniform([1.0, 1.0], databanks=["db"])
        journal = tmp_path / "svc.jsonl"
        server = api.serve(
            platform, scheduler="srpt", journal=journal, time_scale=0.0
        )
        try:
            body = json.dumps({"size": 2.0, "databank": "db"}).encode()
            request = urllib.request.Request(
                f"{server.url}/submit", data=body, method="POST"
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert json.loads(response.read())["job_id"] == 0
            request = urllib.request.Request(
                f"{server.url}/drain", data=b"", method="POST"
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert json.loads(response.read())["n_jobs"] == 1
        finally:
            server.shutdown()
        from repro.service import read_trace, verify_replay

        assert verify_replay(read_trace(journal)).identical

    def test_serve_rejects_clairvoyant_scheduler(self):
        platform = Platform.uniform([1.0], databanks=["db"])
        with pytest.raises(ReproError, match="not service-safe"):
            api.serve(platform, scheduler="offline")
