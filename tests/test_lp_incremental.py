"""Tests for the incremental replanning subsystem (:mod:`repro.lp.incremental`).

The contract under test is strong: the warm-started, cache-carrying path
must produce *identical* objectives, allocations and simulated completion
times to the from-scratch path -- warm-starting only reorders the probes of
a monotone feasibility search, and the cached constraint skeletons pin the
exact variable order of the historical LP builder.
"""

from __future__ import annotations

import pytest

import repro.lp.maxstretch as maxstretch_module
from repro.lp.incremental import ReplanContext
from repro.lp.maxstretch import minimize_max_weighted_flow, solve_on_objective_range
from repro.lp.problem import problem_from_instance
from repro.schedulers.online_lp import OnlineLPScheduler
from repro.simulation.engine import simulate
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

from test_sched_offline_online import random_restricted_instance


def _gripps_instance(seed: int, *, max_jobs: int = 14, density: float = 1.5):
    platform = PlatformSpec(
        n_clusters=3, processors_per_cluster=4, n_databanks=3, availability=0.6
    )
    workload = WorkloadSpec(density=density, window=30.0, max_jobs=max_jobs)
    return generate_instance(platform, workload, rng=seed)


class _ProbeCounter:
    """Counts System (1) LP probes by wrapping solve_on_objective_range."""

    def __init__(self, monkeypatch):
        self.count = 0
        original = solve_on_objective_range

        def counting(*args, **kwargs):
            self.count += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(maxstretch_module, "solve_on_objective_range", counting)


class TestReplanContextProblems:
    def test_build_problem_identical_to_from_scratch(self):
        for seed in range(3):
            instance = random_restricted_instance(seed, n_jobs=8)
            context = ReplanContext(instance)
            remaining = {j.job_id: j.size * 0.7 for j in instance.jobs}
            now = float(sorted(j.release for j in instance.jobs)[4])
            active = {k: v for k, v in remaining.items()
                      if instance.job(k).release <= now}
            expected = problem_from_instance(instance, now=now, remaining=active)
            assert context.build_problem(now, active) == expected

    def test_resources_cached_once(self):
        instance = random_restricted_instance(1, n_jobs=5)
        context = ReplanContext(instance)
        first = context.resources
        context.build_problem(0.0, {0: 1.0})
        assert context.resources is first


class TestWarmStartEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_objective_and_allocations(self, seed):
        instance = random_restricted_instance(seed, n_jobs=8)
        problem = problem_from_instance(instance)
        cold = minimize_max_weighted_flow(problem)
        for warm in (
            cold.objective,            # exact
            cold.objective * 0.5,      # undershoot
            cold.objective * 3.0,      # overshoot
            1e-6,                      # far below the bracket
            1e9,                       # far above the bracket
        ):
            warmed = minimize_max_weighted_flow(
                problem, warm_start=warm, skeleton_cache={}
            )
            assert warmed.objective == cold.objective
            assert warmed.allocations == cold.allocations

    def test_warm_start_reduces_probe_count(self, monkeypatch):
        instance = _gripps_instance(11, max_jobs=20, density=2.0)
        problem = problem_from_instance(instance)
        counter = _ProbeCounter(monkeypatch)
        cold = minimize_max_weighted_flow(problem)
        cold_probes = counter.count
        counter.count = 0
        minimize_max_weighted_flow(problem, warm_start=cold.objective)
        assert counter.count <= cold_probes
        assert counter.count <= 3  # bracket probe + floor confirmation


class TestIncrementalSchedulerEquivalence:
    @pytest.mark.parametrize("variant", ["online", "online-edf", "online-egdf", "online-nonopt"])
    def test_identical_completions_and_objective(self, variant):
        instance = _gripps_instance(7, max_jobs=14)
        scratch_sched = OnlineLPScheduler(variant=variant, incremental=False)
        scratch = simulate(instance, scratch_sched)
        incremental_sched = OnlineLPScheduler(variant=variant, incremental=True)
        incremental = simulate(instance, incremental_sched)
        assert incremental_sched.last_objective == scratch_sched.last_objective
        assert incremental_sched.n_resolutions == scratch_sched.n_resolutions
        for job_id, completion in scratch.completions.items():
            assert incremental.completions[job_id] == pytest.approx(
                completion, abs=1e-6
            )

    def test_incremental_uses_fewer_probes(self, monkeypatch):
        instance = _gripps_instance(11, max_jobs=25, density=2.0)
        counter = _ProbeCounter(monkeypatch)
        simulate(instance, OnlineLPScheduler(variant="online", incremental=False))
        scratch_probes = counter.count
        counter.count = 0
        simulate(instance, OnlineLPScheduler(variant="online", incremental=True))
        assert counter.count <= scratch_probes

    def test_context_records_replans(self):
        instance = random_restricted_instance(2, n_jobs=6)
        scheduler = OnlineLPScheduler(variant="online", incremental=True)
        simulate(instance, scheduler)
        assert scheduler._context is not None
        assert scheduler._context.n_replans == scheduler.n_resolutions
        assert scheduler._context.last_objective == scheduler.last_objective


class TestSkeletonCache:
    def test_cache_populated_and_hit(self):
        instance = random_restricted_instance(0, n_jobs=6)
        problem = problem_from_instance(instance)
        cache: dict = {}
        first = minimize_max_weighted_flow(problem, skeleton_cache=cache)
        assert cache  # skeletons were stored
        size = len(cache)
        again = minimize_max_weighted_flow(
            problem, warm_start=first.objective, skeleton_cache=cache
        )
        assert again.objective == first.objective
        assert len(cache) == size  # same structures, no new entries

    def test_context_cache_is_bounded(self):
        instance = _gripps_instance(3, max_jobs=20)
        scheduler = OnlineLPScheduler(variant="online", incremental=True)
        simulate(instance, scheduler)
        from repro.lp.incremental import _MAX_SKELETONS

        assert len(scheduler._context._skeletons) <= _MAX_SKELETONS
