"""Unit tests for :mod:`repro.core.instance`."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform


@pytest.fixture
def platform() -> Platform:
    return Platform(
        [
            Machine(0, 1.0, 0, frozenset({"a"})),
            Machine(1, 0.5, 1, frozenset({"a", "b"})),
            Machine(2, 2.0, 2, frozenset({"b"})),
        ]
    )


@pytest.fixture
def instance(platform) -> Instance:
    jobs = [
        Job(0, release=0.0, size=4.0, databank="a"),
        Job(1, release=1.0, size=2.0, databank="b"),
        Job(2, release=0.5, size=8.0, databank="a"),
    ]
    return Instance(jobs, platform)


class TestConstruction:
    def test_jobs_sorted_by_release(self, instance):
        assert [j.job_id for j in instance.jobs] == [0, 2, 1]

    def test_counts(self, instance):
        assert instance.n_jobs == 3
        assert instance.n_machines == 3

    def test_unhostable_job_rejected(self, platform):
        with pytest.raises(ModelError):
            Instance([Job(0, release=0.0, size=1.0, databank="zzz")], platform)

    def test_unhostable_job_allowed_when_not_required(self, platform):
        inst = Instance(
            [Job(0, release=0.0, size=1.0, databank="zzz")], platform, require_feasible=False
        )
        assert inst.n_jobs == 1

    def test_platform_type_checked(self):
        with pytest.raises(ModelError):
            Instance([], platform="not a platform")  # type: ignore[arg-type]

    def test_equality_and_hash(self, instance, platform):
        clone = Instance(list(instance.jobs), platform)
        assert clone == instance
        assert hash(clone) == hash(instance)


class TestDerivedQuantities:
    def test_processing_time_uniform_formula(self, instance):
        # p_{i,j} = W_j * p_i
        assert instance.processing_time(0, 0) == pytest.approx(4.0)
        assert instance.processing_time(1, 0) == pytest.approx(2.0)

    def test_processing_time_infinite_when_not_hosted(self, instance):
        assert math.isinf(instance.processing_time(2, 0))  # machine 2 has only "b"
        assert math.isinf(instance.processing_time(0, 1))  # machine 0 has only "a"

    def test_eligible_machines(self, instance):
        assert [m.machine_id for m in instance.eligible_machines(0)] == [0, 1]
        assert instance.eligible_machine_ids(1) == (1, 2)

    def test_eligible_classes(self, instance):
        classes = instance.eligible_classes(1)
        banks = {cls.databanks for cls in classes}
        assert frozenset({"b"}) in banks
        assert frozenset({"a", "b"}) in banks

    def test_aggregate_speed_and_ideal_time(self, instance):
        # Job 0 (databank a): machines 0 (speed 1) and 1 (speed 2) -> 3.
        assert instance.aggregate_speed(0) == pytest.approx(3.0)
        assert instance.ideal_time(0) == pytest.approx(4.0 / 3.0)
        # Job 1 (databank b): machines 1 (speed 2) and 2 (speed 0.5) -> 2.5.
        assert instance.ideal_time(1) == pytest.approx(2.0 / 2.5)

    def test_stretch_weight_is_inverse_ideal_time(self, instance):
        assert instance.stretch_weight(0) == pytest.approx(1.0 / instance.ideal_time(0))

    def test_weight_prefers_explicit_weight(self, platform):
        inst = Instance([Job(0, release=0.0, size=2.0, databank="a", weight=5.0)], platform)
        assert inst.weight(0) == pytest.approx(5.0)

    def test_delta(self, instance):
        assert instance.delta() == pytest.approx(8.0 / 2.0)

    def test_is_uniform(self, instance):
        assert not instance.is_uniform()
        uniform = Instance(
            [Job(0, release=0.0, size=1.0, databank="a")],
            Platform.uniform([1.0, 2.0], databanks=["a"]),
        )
        assert uniform.is_uniform()

    def test_lower_bound_makespan(self, instance):
        bound = instance.lower_bound_makespan()
        total_work = sum(j.size for j in instance.jobs)
        assert bound >= total_work / instance.platform.aggregate_speed() - 1e-12
        assert bound >= max(
            j.release + instance.ideal_time(j.job_id) for j in instance.jobs
        ) - 1e-12

    def test_describe_contains_jobs(self, instance):
        text = instance.describe()
        assert "J0" in text and "databank" in text


class TestProjections:
    def test_restrict_jobs(self, instance):
        sub = instance.restrict_jobs([0, 1])
        assert sub.n_jobs == 2
        assert set(sub.jobs.ids()) == {0, 1}
        assert sub.platform == instance.platform

    def test_released_before(self, instance):
        assert set(instance.released_before(0.5).jobs.ids()) == {0, 2}
        assert set(instance.released_before(0.5, inclusive=False).jobs.ids()) == {0}

    def test_with_jobs_and_with_platform(self, instance, platform):
        new = instance.with_jobs([Job(9, release=0.0, size=1.0, databank="b")])
        assert new.n_jobs == 1
        smaller = instance.with_platform(platform.restrict_to([1]))
        assert smaller.n_machines == 1
