"""Unit tests for :mod:`repro.lp.intervals` and :mod:`repro.lp.milestones`."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.lp.intervals import build_interval_structure
from repro.lp.milestones import enumerate_milestones
from repro.lp.problem import LPJob, MaxStretchProblem, Resource


def two_job_problem() -> MaxStretchProblem:
    """Two unit-weight jobs on a single unit-speed resource."""
    resources = (Resource(0, speed=1.0, machine_ids=(0,)),)
    jobs = (
        LPJob(0, earliest_start=0.0, remaining_work=4.0, release=0.0,
              flow_factor=4.0, resources=(0,)),
        LPJob(1, earliest_start=2.0, remaining_work=1.0, release=2.0,
              flow_factor=1.0, resources=(0,)),
    )
    return MaxStretchProblem(resources=resources, jobs=jobs)


class TestIntervalStructure:
    def test_boundaries_sorted_at_probe(self):
        problem = two_job_problem()
        structure = build_interval_structure(problem, probe=1.0)
        values = [b.at(1.0) for b in structure.boundaries]
        assert values == sorted(values)
        # Boundaries: starts at 0 and 2, deadlines at 0 + 4F and 2 + F.
        assert len(structure.boundaries) == 4
        assert structure.n_intervals == 3

    def test_job_windows(self):
        problem = two_job_problem()
        structure = build_interval_structure(problem, probe=1.0)
        # At F=1: job 0 window is [0, 4], job 1 window is [2, 3].
        intervals_0 = list(structure.job_intervals(0))
        intervals_1 = list(structure.job_intervals(1))
        bounds = structure.bounds_at(1.0)
        assert bounds[intervals_0[0]][0] == pytest.approx(0.0)
        assert bounds[intervals_0[-1]][1] == pytest.approx(4.0)
        assert bounds[intervals_1[0]][0] == pytest.approx(2.0)
        assert bounds[intervals_1[-1]][1] == pytest.approx(3.0)

    def test_interval_length_affine(self):
        problem = two_job_problem()
        structure = build_interval_structure(problem, probe=1.0)
        for t in range(structure.n_intervals):
            length = structure.interval_length(t)
            lo, hi = structure.interval(t)
            assert length.at(1.0) == pytest.approx(hi.at(1.0) - lo.at(1.0))

    def test_ordering_changes_across_milestone(self):
        problem = two_job_problem()
        # d_1(F) = 2 + F and d_0(F) = 4F cross at F = 2/3.
        low = build_interval_structure(problem, probe=0.5)
        high = build_interval_structure(problem, probe=1.0)
        order_low = [(b.const, b.coef) for b in low.boundaries]
        order_high = [(b.const, b.coef) for b in high.boundaries]
        assert order_low != order_high

    def test_duplicate_boundaries_merged(self):
        resources = (Resource(0, speed=1.0, machine_ids=(0,)),)
        jobs = (
            LPJob(0, earliest_start=1.0, remaining_work=1.0, release=1.0,
                  flow_factor=1.0, resources=(0,)),
            LPJob(1, earliest_start=1.0, remaining_work=2.0, release=1.0,
                  flow_factor=1.0, resources=(0,)),
        )
        problem = MaxStretchProblem(resources=resources, jobs=jobs)
        structure = build_interval_structure(problem, probe=1.0)
        # Both starts coincide and both deadlines coincide -> 2 boundaries.
        assert len(structure.boundaries) == 2

    def test_negative_probe_rejected(self):
        with pytest.raises(ModelError):
            build_interval_structure(two_job_problem(), probe=-1.0)


class TestMilestones:
    def test_two_job_milestones(self):
        problem = two_job_problem()
        milestones = enumerate_milestones(problem)
        # Crossings: d_0(F) = e_1 -> 4F = 2 -> F = 0.5;
        #            d_0(F) = d_1(F) -> 4F = 2 + F -> F = 2/3;
        #            d_1(F) = e_0 -> 2 + F = 0 -> negative, discarded.
        assert pytest.approx(0.5) in milestones
        assert any(abs(m - 2.0 / 3.0) < 1e-9 for m in milestones)
        assert all(m > 0 for m in milestones)

    def test_milestones_sorted_unique(self):
        problem = two_job_problem()
        milestones = enumerate_milestones(problem)
        assert milestones == sorted(milestones)
        assert len(milestones) == len(set(milestones))

    def test_range_filtering(self):
        problem = two_job_problem()
        assert enumerate_milestones(problem, lower=0.6, upper=0.65) == []
        limited = enumerate_milestones(problem, lower=0.55)
        assert all(m > 0.55 for m in limited)

    def test_empty_problem(self):
        problem = MaxStretchProblem(resources=(), jobs=())
        assert enumerate_milestones(problem) == []

    def test_identical_jobs_have_no_deadline_crossings(self):
        resources = (Resource(0, speed=1.0, machine_ids=(0,)),)
        jobs = tuple(
            LPJob(i, earliest_start=0.0, remaining_work=1.0, release=0.0,
                  flow_factor=1.0, resources=(0,))
            for i in range(3)
        )
        problem = MaxStretchProblem(resources=resources, jobs=jobs)
        # All deadlines coincide for every F and all starts are 0 -> no
        # positive crossing values.
        assert enumerate_milestones(problem) == []

    def test_count_is_quadratically_bounded(self):
        resources = (Resource(0, speed=1.0, machine_ids=(0,)),)
        jobs = tuple(
            LPJob(i, earliest_start=float(i), remaining_work=1.0 + i, release=float(i),
                  flow_factor=1.0 + i, resources=(0,))
            for i in range(8)
        )
        problem = MaxStretchProblem(resources=resources, jobs=jobs)
        milestones = enumerate_milestones(problem)
        n = len(jobs)
        assert len(milestones) <= n * (n - 1)
