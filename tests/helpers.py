"""Plain (non-fixture) helpers shared across test modules.

Kept outside ``conftest.py`` so that test modules can import them by module
name: importing from ``conftest`` relies on the rootdir-relative package
layout and breaks collection when the tests directory is not a package
(``from .conftest import ...`` fails with "attempted relative import with no
known parent package").
"""

from __future__ import annotations

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform

__all__ = ["make_uniform_instance"]


def make_uniform_instance(
    sizes: list[float],
    releases: list[float],
    cycle_times: list[float] = (1.0,),
    databank: str = "db",
) -> Instance:
    """Build a small uniform instance from per-job sizes and release dates."""
    platform = Platform.uniform(list(cycle_times), databanks=[databank])
    jobs = [
        Job(i, release=float(r), size=float(s), databank=databank)
        for i, (s, r) in enumerate(zip(sizes, releases))
    ]
    return Instance(jobs, platform)
