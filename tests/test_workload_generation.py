"""Tests for the synthetic GriPPS workload generators (:mod:`repro.workload`)."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.workload.arrival import poisson_arrival_times
from repro.workload.databanks import generate_databanks
from repro.workload.generator import (
    PlatformSpec,
    WorkloadSpec,
    generate_instance,
    generate_platform,
    generate_workload,
)
from repro.workload.gripps import (
    DEFAULT_PROCESSORS_PER_CLUSTER,
    MAX_DATABANK_MB,
    MIN_DATABANK_MB,
    REFERENCE_CYCLE_TIMES,
    SUBMISSION_WINDOW_SECONDS,
)


class TestGrippsConstants:
    def test_reference_machines(self):
        assert len(REFERENCE_CYCLE_TIMES) == 6
        assert all(t > 0 for t in REFERENCE_CYCLE_TIMES)
        # Heterogeneity of the same order as the original study (a few x).
        assert 2.0 <= max(REFERENCE_CYCLE_TIMES) / min(REFERENCE_CYCLE_TIMES) <= 6.0

    def test_databank_range_and_window(self):
        assert MIN_DATABANK_MB == 10.0
        assert MAX_DATABANK_MB == pytest.approx(1024.0)
        assert DEFAULT_PROCESSORS_PER_CLUSTER == 10
        assert SUBMISSION_WINDOW_SECONDS == pytest.approx(900.0)

    def test_job_durations_in_paper_range(self):
        """A single request should take on the order of 3-60 s on one processor."""
        fastest = min(REFERENCE_CYCLE_TIMES) * MIN_DATABANK_MB
        slowest = max(REFERENCE_CYCLE_TIMES) * MAX_DATABANK_MB
        assert fastest < 3.0 < slowest
        assert slowest < 120.0


class TestPoissonArrivals:
    def test_arrivals_within_window(self):
        times = poisson_arrival_times(rate=2.0, window=30.0, rng=0)
        assert all(0.0 < t <= 30.0 for t in times)
        assert times == sorted(times)

    def test_mean_rate_approximately_respected(self):
        times = poisson_arrival_times(rate=5.0, window=200.0, rng=1)
        assert len(times) == pytest.approx(1000, rel=0.15)

    def test_start_offset(self):
        times = poisson_arrival_times(rate=1.0, window=10.0, rng=2, start=100.0)
        assert all(100.0 < t <= 110.0 for t in times)

    def test_max_count_cap(self):
        times = poisson_arrival_times(rate=100.0, window=10.0, rng=3, max_count=7)
        assert len(times) == 7

    def test_invalid_rate(self):
        with pytest.raises(ModelError):
            poisson_arrival_times(rate=0.0, window=1.0)

    def test_reproducibility(self):
        assert poisson_arrival_times(1.0, 50.0, rng=7) == poisson_arrival_times(1.0, 50.0, rng=7)


class TestDatabankCatalog:
    def test_sizes_within_range(self):
        catalog = generate_databanks(5, 4, availability=0.5, rng=0)
        assert len(catalog) == 5
        for name in catalog.names():
            assert MIN_DATABANK_MB <= catalog.size_of(name) <= MAX_DATABANK_MB

    def test_every_databank_hosted_somewhere(self):
        for seed in range(5):
            catalog = generate_databanks(6, 3, availability=0.1, rng=seed)
            for name in catalog.names():
                assert len(catalog.clusters_hosting(name)) >= 1

    def test_full_availability_replicates_everywhere(self):
        catalog = generate_databanks(4, 3, availability=1.0, rng=0)
        for name in catalog.names():
            assert set(catalog.clusters_hosting(name)) == {0, 1, 2}

    def test_databanks_of_cluster_inverse_mapping(self):
        catalog = generate_databanks(4, 3, availability=0.6, rng=1)
        for cluster in range(3):
            for name in catalog.databanks_of_cluster(cluster):
                assert cluster in catalog.clusters_hosting(name)

    def test_replication_factor(self):
        catalog = generate_databanks(3, 5, availability=0.9, rng=2)
        for name in catalog.names():
            assert 1 <= catalog.replication_factor(name) <= 5

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            generate_databanks(0, 3, 0.5)
        with pytest.raises(ModelError):
            generate_databanks(3, 0, 0.5)
        with pytest.raises(ModelError):
            generate_databanks(3, 3, 0.0)
        with pytest.raises(ModelError):
            generate_databanks(3, 3, 1.5)


class TestPlatformGeneration:
    def test_shape(self):
        spec = PlatformSpec(n_clusters=4, processors_per_cluster=5, n_databanks=3, availability=0.6)
        platform, catalog = generate_platform(spec, rng=0)
        assert len(platform) == 20
        assert len(platform.clusters()) == 4
        assert len(catalog) == 3

    def test_cluster_homogeneity_and_reference_speeds(self):
        spec = PlatformSpec(n_clusters=3, processors_per_cluster=4, n_databanks=2, availability=0.5)
        platform, _ = generate_platform(spec, rng=1)
        for cluster in platform.clusters():
            assert cluster.cycle_time in REFERENCE_CYCLE_TIMES

    def test_machines_host_their_clusters_databanks(self):
        spec = PlatformSpec(n_clusters=3, processors_per_cluster=2, n_databanks=4, availability=0.7)
        platform, catalog = generate_platform(spec, rng=2)
        for machine in platform:
            assert machine.databanks == catalog.databanks_of_cluster(machine.cluster_id)

    def test_spec_validation(self):
        with pytest.raises(ModelError):
            PlatformSpec(n_clusters=0)
        with pytest.raises(ModelError):
            PlatformSpec(availability=0.0)
        with pytest.raises(ModelError):
            PlatformSpec(reference_cycle_times=())


class TestWorkloadGeneration:
    def test_density_controls_load(self):
        spec = PlatformSpec(n_clusters=2, processors_per_cluster=5, n_databanks=2, availability=1.0)
        platform, catalog = generate_platform(spec, rng=3)
        low = generate_workload(platform, catalog, WorkloadSpec(density=0.5, window=300.0), rng=3)
        high = generate_workload(platform, catalog, WorkloadSpec(density=2.0, window=300.0), rng=3)
        assert len(high) > len(low)

    def test_density_definition_matches_paper(self):
        """Arriving work per second for a databank ~= density x hosting capacity."""
        spec = PlatformSpec(n_clusters=2, processors_per_cluster=5, n_databanks=1, availability=1.0)
        platform, catalog = generate_platform(spec, rng=4)
        density, window = 1.5, 2000.0
        jobs = generate_workload(
            platform, catalog, WorkloadSpec(density=density, window=window), rng=4
        )
        name = catalog.names()[0]
        arriving_work_per_second = sum(j.size for j in jobs) / window
        expected = density * platform.aggregate_speed(name)
        assert arriving_work_per_second == pytest.approx(expected, rel=0.15)

    def test_jobs_sorted_and_renumbered(self):
        spec = PlatformSpec(n_clusters=2, processors_per_cluster=3, n_databanks=3, availability=0.8)
        platform, catalog = generate_platform(spec, rng=5)
        jobs = generate_workload(platform, catalog, WorkloadSpec(density=1.0, window=60.0), rng=5)
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)
        assert [j.job_id for j in jobs] == list(range(len(jobs)))

    def test_job_sizes_equal_databank_sizes(self):
        spec = PlatformSpec(n_clusters=2, processors_per_cluster=3, n_databanks=2, availability=1.0)
        platform, catalog = generate_platform(spec, rng=6)
        jobs = generate_workload(platform, catalog, WorkloadSpec(density=1.0, window=120.0), rng=6)
        sizes = {catalog.size_of(name) for name in catalog.names()}
        assert all(any(abs(j.size - s) < 1e-9 for s in sizes) for j in jobs)

    def test_max_jobs_cap(self):
        spec = PlatformSpec(
            n_clusters=3, processors_per_cluster=10, n_databanks=3, availability=0.9
        )
        platform, catalog = generate_platform(spec, rng=7)
        jobs = generate_workload(
            platform, catalog, WorkloadSpec(density=2.0, window=600.0, max_jobs=25), rng=7
        )
        assert len(jobs) <= 25

    def test_workload_spec_validation(self):
        with pytest.raises(ModelError):
            WorkloadSpec(density=0.0)
        with pytest.raises(ModelError):
            WorkloadSpec(window=0.0)
        with pytest.raises(ModelError):
            WorkloadSpec(max_jobs=0)


class TestInstanceGeneration:
    def test_generate_instance_is_feasible_and_reproducible(self):
        spec_p = PlatformSpec(
            n_clusters=2, processors_per_cluster=4, n_databanks=2, availability=0.5
        )
        spec_w = WorkloadSpec(density=1.0, window=60.0, max_jobs=20)
        a = generate_instance(spec_p, spec_w, rng=11)
        b = generate_instance(spec_p, spec_w, rng=11)
        assert a.n_jobs == b.n_jobs
        assert [j.release for j in a.jobs] == [j.release for j in b.jobs]
        for job in a.jobs:
            assert a.eligible_machines(job.job_id)

    def test_generated_instances_are_schedulable(self):
        from repro.schedulers.priority import SWRPTScheduler
        from repro.simulation.engine import simulate

        spec_p = PlatformSpec(
            n_clusters=2, processors_per_cluster=3, n_databanks=2, availability=0.6
        )
        spec_w = WorkloadSpec(density=0.8, window=40.0, max_jobs=15)
        instance = generate_instance(spec_p, spec_w, rng=13)
        result = simulate(instance, SWRPTScheduler())
        result.schedule.validate(instance)
