"""Unit tests for :mod:`repro.simulation.state` and events/result objects."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.schedule import Schedule, WorkSlice
from repro.simulation.events import ArrivalEvent, CompletionEvent, DecisionEvent
from repro.simulation.result import SimulationResult
from repro.simulation.state import Assignment, JobRuntime, SchedulerState


@pytest.fixture
def instance() -> Instance:
    platform = Platform.uniform([1.0, 1.0], databanks=["db"])
    jobs = [
        Job(0, release=0.0, size=4.0, databank="db"),
        Job(1, release=1.0, size=2.0, databank="db"),
    ]
    return Instance(jobs, platform)


class TestJobRuntime:
    def test_processed_and_finished(self, instance):
        runtime = JobRuntime(job=instance.job(0), remaining=4.0)
        assert runtime.processed == 0.0
        runtime.remaining = 1.0
        assert runtime.processed == pytest.approx(3.0)
        assert not runtime.is_finished()
        runtime.remaining = 1e-12
        assert runtime.is_finished()


class TestAssignment:
    def test_lookups(self):
        assignment = Assignment(mapping={0: 7, 1: 7, 2: 9})
        assert sorted(assignment.machines_of(7)) == [0, 1]
        assert assignment.job_ids() == {7, 9}

    def test_idle(self):
        idle = Assignment.idle(valid_until=3.0)
        assert idle.mapping == {}
        assert idle.valid_until == 3.0


class TestSchedulerState:
    def test_release_and_complete_lifecycle(self, instance):
        state = SchedulerState(instance)
        runtime = state.release(instance.job(0))
        assert state.is_active(0)
        assert not state.is_completed(0)
        assert state.remaining_work(0) == 4.0
        assert state.n_active() == 1
        assert [j.job_id for j in state.released_jobs()] == [0]

        runtime.remaining = 0.0
        state.complete(0, time=4.0)
        assert not state.is_active(0)
        assert state.is_completed(0)
        assert state.remaining_work(0) == 0.0
        assert state.completions[0] == 4.0

    def test_double_release_rejected(self, instance):
        state = SchedulerState(instance)
        state.release(instance.job(0))
        with pytest.raises(ModelError):
            state.release(instance.job(0))

    def test_complete_inactive_rejected(self, instance):
        state = SchedulerState(instance)
        with pytest.raises(ModelError):
            state.complete(0, time=1.0)

    def test_remaining_of_unreleased_rejected(self, instance):
        state = SchedulerState(instance)
        with pytest.raises(ModelError):
            state.remaining_work(1)

    def test_remaining_map_and_active_jobs(self, instance):
        state = SchedulerState(instance)
        state.release(instance.job(0))
        state.release(instance.job(1))
        assert state.remaining_map() == {0: 4.0, 1: 2.0}
        assert [rt.job_id for rt in state.active_jobs()] == [0, 1]


class TestEventsAndResult:
    def test_event_formatting(self):
        assert "arrival" in str(ArrivalEvent(time=1.0, job_id=3, size=2.0))
        assert "completion" in str(CompletionEvent(time=2.0, job_id=3, flow=1.0, stretch=1.5))
        assert "decision" in str(DecisionEvent(time=0.5, assignment=((0, 1),), n_active=1))
        assert "(all idle)" in str(DecisionEvent(time=0.5, assignment=(), n_active=0))

    def test_result_metrics_and_summary(self, instance):
        schedule = Schedule(
            [
                WorkSlice(0, 0, 0.0, 2.0, 2.0),
                WorkSlice(0, 1, 0.0, 2.0, 2.0),
                WorkSlice(1, 0, 2.0, 4.0, 2.0),
            ]
        )
        result = SimulationResult(
            instance=instance,
            scheduler_name="test",
            schedule=schedule,
            completions={0: 2.0, 1: 4.0},
            scheduler_time=0.01,
            n_decisions=3,
        )
        assert result.max_stretch == pytest.approx(3.0)
        assert result.makespan == pytest.approx(4.0)
        assert result.sum_flow == pytest.approx(5.0)
        assert result.stretches()[0] == pytest.approx(1.0)
        assert "max-stretch" in result.summary()
        assert result.trace_lines() == []
