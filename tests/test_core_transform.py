"""Unit tests for the Lemma 1 transformations (:mod:`repro.core.transform`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.core.schedule import Schedule, WorkSlice
from repro.core.transform import (
    divisible_schedule_to_uniprocessor,
    equivalent_uniprocessor_instance,
    uniprocessor_schedule_to_divisible,
)
from repro.schedulers.priority import SRPTScheduler, SWRPTScheduler
from repro.simulation.engine import simulate


@pytest.fixture
def uniform_instance() -> Instance:
    platform = Platform.uniform([1.0, 0.5, 0.25], databanks=["db"])
    jobs = [
        Job(0, release=0.0, size=7.0, databank="db"),
        Job(1, release=1.0, size=2.0, databank="db"),
        Job(2, release=1.5, size=4.0, databank="db"),
    ]
    return Instance(jobs, platform)


class TestEquivalentInstance:
    def test_equivalent_speed_is_sum_of_speeds(self, uniform_instance):
        equivalent = equivalent_uniprocessor_instance(uniform_instance)
        assert equivalent.n_machines == 1
        expected_speed = uniform_instance.platform.aggregate_speed()
        assert equivalent.platform[0].speed == pytest.approx(expected_speed)

    def test_jobs_preserved(self, uniform_instance):
        equivalent = equivalent_uniprocessor_instance(uniform_instance)
        assert equivalent.jobs == uniform_instance.jobs

    def test_processing_times_match_paper_formula(self, uniform_instance):
        # p^(1)_j = W_j / (sum_i 1/p_i)
        equivalent = equivalent_uniprocessor_instance(uniform_instance)
        total_speed = uniform_instance.platform.aggregate_speed()
        for job in uniform_instance.jobs:
            assert equivalent.processing_time(0, job.job_id) == pytest.approx(
                job.size / total_speed
            )

    def test_rejects_restricted_availability(self):
        platform = Platform(
            [Machine(0, 1.0, 0, frozenset({"a"})), Machine(1, 1.0, 1, frozenset({"b"}))]
        )
        instance = Instance([Job(0, release=0.0, size=1.0, databank="a")], platform)
        with pytest.raises(ModelError):
            equivalent_uniprocessor_instance(instance)


class TestReverseTransformation:
    def test_round_trip_preserves_completion_times(self, uniform_instance):
        equivalent = equivalent_uniprocessor_instance(uniform_instance)
        uni_result = simulate(equivalent, SRPTScheduler())
        lifted = uniprocessor_schedule_to_divisible(uni_result.schedule, uniform_instance)
        lifted.validate(uniform_instance)
        for job in uniform_instance.jobs:
            assert lifted.completion_time(job.job_id) == pytest.approx(
                uni_result.completions[job.job_id]
            )

    def test_work_split_proportional_to_speed(self, uniform_instance):
        schedule = Schedule([WorkSlice(0, 0, 0.0, 1.0, 1.75)])
        lifted = uniprocessor_schedule_to_divisible(schedule, uniform_instance)
        works = {s.machine_id: s.work for s in lifted}
        # Speeds are 1, 2, 4 (total 7) -> shares 1/7, 2/7, 4/7 of 1.75.
        assert works[0] == pytest.approx(1.75 / 7.0)
        assert works[1] == pytest.approx(1.75 * 2.0 / 7.0)
        assert works[2] == pytest.approx(1.75 * 4.0 / 7.0)

    def test_rejects_restricted_availability(self):
        platform = Platform(
            [Machine(0, 1.0, 0, frozenset({"a"})), Machine(1, 1.0, 1, frozenset({"b"}))]
        )
        instance = Instance([Job(0, release=0.0, size=1.0, databank="a")], platform)
        with pytest.raises(ModelError):
            uniprocessor_schedule_to_divisible(Schedule([]), instance)


class TestForwardTransformation:
    def test_lemma1_completion_times_never_increase(self, uniform_instance):
        multi = simulate(uniform_instance, SWRPTScheduler())
        equivalent = equivalent_uniprocessor_instance(uniform_instance)
        projected = divisible_schedule_to_uniprocessor(multi.schedule, uniform_instance)
        projected.validate(equivalent)
        for job in uniform_instance.jobs:
            assert (
                projected.completion_time(job.job_id)
                <= multi.completions[job.job_id] + 1e-9
            )

    def test_projected_schedule_complete(self, uniform_instance):
        multi = simulate(uniform_instance, SRPTScheduler())
        projected = divisible_schedule_to_uniprocessor(multi.schedule, uniform_instance)
        for job in uniform_instance.jobs:
            assert projected.work_done(job.job_id) == pytest.approx(job.size, rel=1e-6)

    def test_random_round_trips(self):
        rng = np.random.default_rng(5)
        for trial in range(5):
            n_machines = int(rng.integers(2, 5))
            platform = Platform.uniform(
                list(rng.uniform(0.2, 2.0, size=n_machines)), databanks=["db"]
            )
            jobs = []
            t = 0.0
            for i in range(int(rng.integers(3, 8))):
                t += float(rng.exponential(1.0))
                jobs.append(Job(i, release=t, size=float(rng.uniform(0.5, 6.0)), databank="db"))
            instance = Instance(jobs, platform)
            equivalent = equivalent_uniprocessor_instance(instance)
            uni = simulate(equivalent, SRPTScheduler())
            lifted = uniprocessor_schedule_to_divisible(uni.schedule, instance)
            lifted.validate(instance)
            projected = divisible_schedule_to_uniprocessor(lifted, instance)
            for job in instance.jobs:
                assert projected.completion_time(job.job_id) <= uni.completions[
                    job.job_id
                ] + 1e-9
