"""Tests for the campaign execution engine: sharding, checkpoint/resume, A/B.

The hard invariant of the engine is that the record set is *bit-identical*
(order-independent, timing measurements excluded) regardless of the number
of workers -- per-run solver state never leaks across the tasks sharing a
worker.  The checkpoint layer must survive a kill at any byte offset and a
resume must recompute exactly the missing (config, replicate, scheduler)
triples, no duplicates, none skipped.
"""

from __future__ import annotations

import json
import math

import pytest

import repro.experiments.runner as runner_mod
from repro.core.errors import ReproError
from repro.experiments.ab import compare_record_sets, run_backend_ab
from repro.experiments.config import ExperimentConfig
from repro.experiments.io import (
    CampaignCheckpoint,
    load_records_json,
    save_records_json,
)
from repro.experiments.runner import (
    CampaignProgress,
    ExperimentResults,
    RunRecord,
    campaign_tasks,
    run_campaign,
)
from repro.lp.backends import resolve_backend_name

#: A design small enough for CI but crossing configs, replicates and both
#: LP and list schedulers (so the worker-resident backend path is exercised).
CONFIGS = [
    ExperimentConfig(
        name="eng-a", n_clusters=2, n_databanks=2, availability=0.6,
        density=1.0, processors_per_cluster=3, window=18.0, max_jobs=8,
    ),
    ExperimentConfig(
        name="eng-b", n_clusters=3, n_databanks=3, availability=0.9,
        density=1.5, processors_per_cluster=3, window=18.0, max_jobs=8,
    ),
]
KEYS = ("online", "offline", "swrpt", "mct")
REPLICATES = 2
SEED = 17


@pytest.fixture(scope="module")
def serial_results() -> ExperimentResults:
    return run_campaign(
        CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED
    )


class TestSharding:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_sharded_bit_identical_to_serial(self, serial_results, n_workers):
        sharded = run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            n_workers=n_workers,
        )
        # Exact equality on every non-timing field, order-independent.
        assert sharded.result_set() == serial_results.result_set()

    def test_records_in_canonical_task_order(self, serial_results):
        triples = [(r.config, r.replicate) for r in serial_results]
        expected = [
            (config.name, replicate)
            for config in CONFIGS
            for replicate in range(REPLICATES)
            for _ in KEYS
        ]
        assert triples == expected

    def test_task_list_is_scheduler_innermost(self):
        tasks = campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)
        assert len(tasks) == len(CONFIGS) * REPLICATES * len(KEYS)
        # The tasks of one realized instance are adjacent and share the seed.
        first = tasks[: len(KEYS)]
        assert {t.triple[:2] for t in first} == {(CONFIGS[0].name, 0)}
        assert len({t.seed for t in first}) == 1
        assert [t.scheduler_key for t in first] == list(KEYS)

    def test_progress_reports_eta_and_counts(self):
        events: list[CampaignProgress] = []
        run_campaign(
            [CONFIGS[0]], scheduler_keys=("swrpt", "mct"), replicates=2,
            base_seed=SEED, progress=events.append,
        )
        assert len(events) == 4
        assert [e.completed for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)
        assert events[-1].eta_seconds == 0.0
        assert "[1/4]" in str(events[0])

    def test_worker_instance_cache_generates_each_instance_once(self):
        state = runner_mod._WorkerState()
        tasks = campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)
        for task in tasks:
            state.instance_for(task.config, task.seed)
        assert state.n_instance_builds == len(CONFIGS) * REPLICATES
        assert state.n_instance_hits == len(tasks) - state.n_instance_builds

    def test_instance_cache_never_aliases_same_named_configs(self):
        # Two campaigns run in one process may reuse a configuration name
        # with different instance-shaping parameters; the cache keys on the
        # platform/workload specs, so the second one must not see the first
        # one's instance.
        import dataclasses

        state = runner_mod._WorkerState()
        small = CONFIGS[0]
        big = dataclasses.replace(small, window=60.0, max_jobs=20)
        seed = campaign_tasks([small], KEYS, 1, SEED)[0].seed
        first = state.instance_for(small, seed)
        second = state.instance_for(big, seed)
        assert state.n_instance_builds == 2
        assert second.n_jobs != first.n_jobs


class TestCheckpoint:
    def _run(self, checkpoint=None, resume=False, n_workers=1, progress=None):
        return run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            checkpoint=checkpoint, resume=resume, n_workers=n_workers,
            progress=progress,
        )

    def test_checkpoint_streams_all_records(self, serial_results, tmp_path):
        path = tmp_path / "ck.jsonl"
        results = self._run(checkpoint=path)
        assert results.result_set() == serial_results.result_set()
        done = CampaignCheckpoint(path).load()
        expected = {t.triple for t in campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)}
        assert set(done) == expected  # every triple exactly once

    def test_kill_and_resume_recomputes_only_missing_triples(
        self, serial_results, tmp_path
    ):
        full = tmp_path / "full.jsonl"
        self._run(checkpoint=full)
        lines = full.read_text().splitlines()
        # Simulate a kill mid-write: keep the header + 5 records and a
        # truncated sixth line with no trailing newline.
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(lines[:6]) + "\n" + lines[6][: len(lines[6]) // 2])

        recomputed: list[CampaignProgress] = []
        resumed = self._run(checkpoint=partial, resume=True, n_workers=2,
                            progress=recomputed.append)
        # The record set is complete and identical to the uninterrupted run...
        assert resumed.result_set() == serial_results.result_set()
        # ...only the missing triples were recomputed (the truncated line
        # does not count as completed)...
        total = len(CONFIGS) * REPLICATES * len(KEYS)
        assert len(recomputed) == total - 5
        # ...and the journal now holds every triple exactly once.
        done = CampaignCheckpoint(partial).load()
        assert len(done) == total
        entries = []
        for line in partial.read_text().splitlines():
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # the sealed truncated fragment
        triples = [tuple(entry["task"]) for entry in entries if "task" in entry]
        assert len(triples) == len(set(triples)) == total

    def test_existing_checkpoint_without_resume_is_an_error(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        self._run(checkpoint=path)
        with pytest.raises(ReproError, match="resume"):
            self._run(checkpoint=path)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ReproError, match="checkpoint"):
            self._run(resume=True)

    def test_foreign_checkpoint_is_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        self._run(checkpoint=path)
        with pytest.raises(ReproError, match="different campaign"):
            run_campaign(
                CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES,
                base_seed=SEED + 1, checkpoint=path, resume=True,
            )

    def test_same_names_different_design_is_rejected(self, tmp_path):
        # The header records the full design: same config names with a
        # different window/max_jobs (records computed on different
        # instances) must not be silently mixed in on resume.
        import dataclasses

        path = tmp_path / "ck.jsonl"
        self._run(checkpoint=path)
        rescaled = [
            dataclasses.replace(config, window=12.0, max_jobs=5)
            for config in CONFIGS
        ]
        with pytest.raises(ReproError, match="different campaign"):
            run_campaign(
                rescaled, scheduler_keys=KEYS, replicates=REPLICATES,
                base_seed=SEED, checkpoint=path, resume=True,
            )

    def test_non_checkpoint_file_is_rejected(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"some": "other json file"}\n')
        with pytest.raises(ReproError, match="not a campaign checkpoint"):
            CampaignCheckpoint(path).load()

    def test_unrelated_existing_file_is_never_truncated(self, tmp_path):
        # A user pointing --checkpoint at some pre-existing non-JSONL file
        # (more than one truncated-header-like line) must get an error, not
        # a silently erased file.
        path = tmp_path / "results.csv"
        content = "config,replicate\nold-a,0\n"
        path.write_text(content)
        ck = CampaignCheckpoint(path)
        assert not ck.effectively_empty()
        with pytest.raises(ReproError):
            self._run(checkpoint=path)
        with pytest.raises(ReproError, match="not a campaign checkpoint"):
            self._run(checkpoint=path, resume=True)
        assert path.read_text() == content

    def test_kill_during_header_write_is_recoverable(
        self, serial_results, tmp_path
    ):
        # A kill landing inside the very first (header) write leaves one
        # truncated, unparseable line: nothing is restorable, so the journal
        # restarts cleanly instead of dead-ending on a header error.
        path = tmp_path / "ck.jsonl"
        path.write_text('{"kind": "repro-campaign-chec')
        ck = CampaignCheckpoint(path)
        assert ck.effectively_empty()
        assert ck.load() == {}
        resumed = self._run(checkpoint=path, resume=True)
        assert resumed.result_set() == serial_results.result_set()
        total = len(CONFIGS) * REPLICATES * len(KEYS)
        assert len(CampaignCheckpoint(path).load()) == total
        # The same recovery works without the resume flag (nothing to lose).
        path2 = tmp_path / "ck2.jsonl"
        path2.write_text('{"kind')
        fresh = self._run(checkpoint=path2)
        assert fresh.result_set() == serial_results.result_set()


class TestGroupDispatch:
    """PR-8 group-batched dispatch: packed transport, stage profile, batching.

    ``dispatch="group"`` is the default, so TestSharding above already proves
    group-dispatch bit-identity at 1/2/4 workers with the solver bank on
    (and ``test_state_bank.py`` at 2/4 workers, on and off); this class adds
    the bank-off worker sweep, the per-task escape hatch, the packed-payload
    round trip, the stage profile and the kill-mid-group durability story.
    """

    @pytest.fixture(scope="class")
    def bank_off_configs(self):
        import dataclasses

        return [dataclasses.replace(c, state_bank=False) for c in CONFIGS]

    @pytest.fixture(scope="class")
    def serial_bank_off(self, bank_off_configs) -> ExperimentResults:
        return run_campaign(
            bank_off_configs, scheduler_keys=KEYS, replicates=REPLICATES,
            base_seed=SEED,
        )

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_bank_off_bit_identical_across_workers(
        self, bank_off_configs, serial_bank_off, n_workers
    ):
        sharded = run_campaign(
            bank_off_configs, scheduler_keys=KEYS, replicates=REPLICATES,
            base_seed=SEED, n_workers=n_workers,
        )
        assert sharded.result_set() == serial_bank_off.result_set()

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_per_task_dispatch_matches_group(self, serial_results, n_workers):
        per_task = run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            n_workers=n_workers, dispatch="task",
        )
        assert per_task.result_set() == serial_results.result_set()

    def test_unknown_dispatch_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown dispatch mode"):
            run_campaign(
                CONFIGS, scheduler_keys=KEYS, replicates=1, base_seed=SEED,
                dispatch="batch",
            )

    def test_packed_round_trip_is_bit_exact(self):
        records = [TestJsonNaN.OK, TestJsonNaN.FAILED]
        packed = RunRecord.to_packed(records)
        assert len(packed) == 2
        restored = RunRecord.from_packed(packed)
        # Failed NaN metrics survive the columnar hop (compare normalized,
        # exactly like the pool-transport consumer does)...
        assert [r.result_dict() for r in restored] == [
            r.result_dict() for r in records
        ]
        # ...and the non-NaN record round-trips to full dataclass equality.
        assert restored[0] == records[0]
        assert restored[1].failed and math.isnan(restored[1].max_stretch)
        assert math.isnan(restored[1].scheduler_time)

    def test_packed_rejects_empty_group(self):
        with pytest.raises(ValueError, match="empty"):
            RunRecord.to_packed([])

    def test_stage_seconds_cover_the_pipeline(self):
        events: list[CampaignProgress] = []
        results = run_campaign(
            [CONFIGS[0]], scheduler_keys=("swrpt", "mct"), replicates=2,
            base_seed=SEED, progress=events.append,
        )
        assert set(results.stage_seconds) == {
            "dispatch", "compute", "serialize", "journal",
        }
        assert results.stage_seconds["compute"] > 0.0
        # Progress events carry the running profile (the CLI's live view).
        assert all(e.stage_seconds is not None for e in events)
        assert (
            events[-1].stage_seconds["compute"] == results.stage_seconds["compute"]
        )

    def test_kill_mid_group_resumes_exactly_once(self, serial_results, tmp_path):
        full = tmp_path / "full.jsonl"
        run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            checkpoint=full, n_workers=2,
        )
        lines = full.read_text().splitlines()
        # Simulate a kill landing inside a group's batched write: the header,
        # the first two records of the first (config, replicate) group, and
        # half of its third record with no trailing newline.
        partial = tmp_path / "partial.jsonl"
        partial.write_text(
            "\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2]
        )

        recomputed: list[CampaignProgress] = []
        resumed = run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            checkpoint=partial, resume=True, n_workers=2,
            progress=recomputed.append,
        )
        # The record set is complete and identical to the uninterrupted
        # run...
        assert resumed.result_set() == serial_results.result_set()
        # ...only the 14 missing triples were recomputed (the interrupted
        # group resumes as a shorter group covering its missing schedulers;
        # the sealed truncated record does not count as completed)...
        total = len(CONFIGS) * REPLICATES * len(KEYS)
        assert len(recomputed) == total - 2
        # ...and the journal now holds every triple exactly once.
        entries = []
        for line in partial.read_text().splitlines():
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # the sealed truncated fragment
        triples = [tuple(entry["task"]) for entry in entries if "task" in entry]
        assert len(triples) == len(set(triples)) == total


class TestJsonNaN:
    FAILED = RunRecord(
        config="c", replicate=0, scheduler="broken", n_jobs=3, n_clusters=1,
        n_databanks=1, availability=0.5, density=1.0, max_stretch=math.nan,
        sum_stretch=math.nan, max_flow=math.nan, sum_flow=math.nan,
        makespan=math.nan, scheduler_time=math.nan, failed=True,
    )
    OK = RunRecord(
        config="c", replicate=0, scheduler="ok", n_jobs=3, n_clusters=1,
        n_databanks=1, availability=0.5, density=1.0, max_stretch=2.0,
        sum_stretch=3.0, max_flow=1.0, sum_flow=1.5, makespan=4.0,
        scheduler_time=0.25,
    )

    def test_failed_records_stay_bit_identical_across_pickle(self):
        # A failed record's NaN metrics survive a worker->parent pickle hop
        # as *new* float objects; NaN only compares equal by identity, so
        # result_set() must normalize them or identically-failed serial and
        # sharded runs would spuriously differ.
        import pickle

        original = ExperimentResults([self.FAILED])
        pickled = ExperimentResults([pickle.loads(pickle.dumps(self.FAILED))])
        assert original.result_set() == pickled.result_set()
        assert original.result_set()[0]["max_stretch"] is None

    def test_failed_records_serialize_as_strict_json(self, tmp_path):
        path = save_records_json([self.OK, self.FAILED], tmp_path / "records.json")
        payload = json.loads(path.read_text())  # bare NaN would raise here
        assert payload[1]["max_stretch"] is None
        assert payload[1]["failed"] is True
        assert payload[0]["max_stretch"] == 2.0
        assert "NaN" not in path.read_text()

    def test_json_round_trip_restores_nan(self, tmp_path):
        path = save_records_json([self.OK, self.FAILED], tmp_path / "records.json")
        loaded = load_records_json(path)
        assert len(loaded) == 2
        restored = {r.scheduler: r for r in loaded}
        assert restored["ok"] == self.OK
        assert restored["broken"].failed
        assert math.isnan(restored["broken"].max_stretch)
        assert math.isnan(restored["broken"].scheduler_time)

    def test_checkpoint_journals_failed_records(self, tmp_path):
        ck = CampaignCheckpoint(tmp_path / "ck.jsonl")
        ck.open_append({"base_seed": 1})
        ck.append("broken", self.FAILED)
        ck.close()
        done = ck.load(expect_meta={"base_seed": 1})
        record = done[("c", 0, "broken")]
        assert record.failed and math.isnan(record.sum_stretch)


class TestBackendAB:
    def test_ab_gate_on_mini_campaign(self):
        report, results_a, results_b = run_backend_ab(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES,
            base_seed=SEED, n_workers=2,
        )
        assert report.backend_a == "scipy"
        assert report.backend_b == resolve_backend_name("auto")
        assert report.n_records == len(results_a) == len(results_b)
        # The tie-free optimized metric agrees per record; the scheduler
        # means of the tie-broken metrics agree within the documented 10%.
        assert report.equivalent, report.render()
        assert "VERDICT: equivalent" in report.render()
        # Non-LP schedulers cannot see the backend knob: their records are
        # bitwise identical, so at least half the record set is.
        assert report.n_identical >= report.n_records // 2

    def test_compare_flags_objective_mismatch(self, serial_results):
        mutated = ExperimentResults(
            [
                RunRecord(**{**r.as_dict(), "max_stretch": r.max_stretch * 1.5})
                for r in serial_results
            ]
        )
        report = compare_record_sets(
            serial_results, mutated, backend_a="scipy", backend_b="mutant"
        )
        assert not report.equivalent
        assert report.objective_mismatches

    def test_compare_flags_nan_on_non_failed_record(self, serial_results):
        # NaN compares false with everything; it must not slip through the
        # gate as "no diff observed".
        records = list(serial_results)
        mutated = [
            RunRecord(**{**records[0].as_dict(), "sum_stretch": math.nan})
        ] + records[1:]
        report = compare_record_sets(
            serial_results, ExperimentResults(mutated),
            backend_a="scipy", backend_b="mutant",
        )
        assert not report.equivalent
        assert any(m[1] == "sum_stretch" for m in report.objective_mismatches)

    def test_compare_flags_failed_mismatch(self, serial_results):
        records = list(serial_results)
        mutated = [
            RunRecord(**{**records[0].as_dict(), "failed": True})
        ] + records[1:]
        report = compare_record_sets(
            serial_results, ExperimentResults(mutated),
            backend_a="scipy", backend_b="mutant",
        )
        assert report.n_failed_mismatch == 1
        assert not report.equivalent

    def test_compare_rejects_mismatched_designs(self, serial_results):
        smaller = ExperimentResults(list(serial_results)[:-1])
        with pytest.raises(ValueError, match="size"):
            compare_record_sets(
                serial_results, smaller, backend_a="a", backend_b="b"
            )
