"""Shared fixtures for the test suite.

Fixtures are deliberately small: LP-based schedulers are exercised on
instances of at most a dozen jobs so that the whole suite stays fast, while
property-based tests (see ``test_properties.py``) widen the coverage with
randomly generated instances of the same scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform


@pytest.fixture
def single_machine_platform() -> Platform:
    """One unit-speed machine hosting a single databank."""
    return Platform.single_machine(1.0, databanks=["db"])


@pytest.fixture
def uniform_platform() -> Platform:
    """Three machines of different speeds, all hosting the databank."""
    return Platform.uniform([1.0, 0.5, 0.25], databanks=["db"])


@pytest.fixture
def restricted_platform() -> Platform:
    """Two sites with different databank sets (restricted availability)."""
    machines = [
        Machine(0, cycle_time=1.0, cluster_id=0, databanks=frozenset({"a"})),
        Machine(1, cycle_time=1.0, cluster_id=0, databanks=frozenset({"a"})),
        Machine(2, cycle_time=0.5, cluster_id=1, databanks=frozenset({"a", "b"})),
        Machine(3, cycle_time=2.0, cluster_id=2, databanks=frozenset({"b"})),
    ]
    return Platform(machines)


@pytest.fixture
def simple_jobs() -> list[Job]:
    """Three jobs with staggered releases on databank 'db'."""
    return [
        Job(0, release=0.0, size=10.0, databank="db"),
        Job(1, release=1.0, size=2.0, databank="db"),
        Job(2, release=2.5, size=1.0, databank="db"),
    ]


@pytest.fixture
def uniprocessor_instance(single_machine_platform, simple_jobs) -> Instance:
    return Instance(simple_jobs, single_machine_platform)


@pytest.fixture
def uniform_instance(uniform_platform, simple_jobs) -> Instance:
    return Instance(simple_jobs, uniform_platform)


@pytest.fixture
def restricted_instance(restricted_platform) -> Instance:
    """Twelve jobs alternating between the two databanks of the restricted platform."""
    rng = np.random.default_rng(123)
    jobs = []
    t = 0.0
    for i in range(12):
        bank = "a" if i % 3 else "b"
        t += float(rng.exponential(0.8))
        jobs.append(Job(i, release=t, size=float(rng.uniform(0.5, 5.0)), databank=bank))
    return Instance(jobs, restricted_platform)


from helpers import make_uniform_instance  # noqa: E402,F401  (re-export for older tests)
