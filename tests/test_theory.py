"""Tests for the theory companions (Theorems 1 and 2)."""

from __future__ import annotations

import pytest

from repro.theory.bounds import (
    predicted_srpt_sum_stretch,
    predicted_swrpt_sum_stretch,
    swrpt_competitive_gap,
)
from repro.theory.starvation import starvation_analysis, starvation_reference_metrics


class TestTheorem2:
    def test_simulation_matches_closed_forms(self):
        report = swrpt_competitive_gap(0.5, 60)
        assert report.srpt_sum_stretch == pytest.approx(report.predicted_srpt, rel=1e-3)
        assert report.swrpt_sum_stretch == pytest.approx(report.predicted_swrpt, rel=1e-3)

    def test_ratio_exceeds_two_minus_epsilon_for_long_trains(self):
        # Theorem 2: for l large enough the SWRPT/SRPT ratio exceeds 2 - eps
        # (the construction converges to a limit slightly above that bound).
        epsilon = 0.5
        short = swrpt_competitive_gap(epsilon, 30)
        long = swrpt_competitive_gap(epsilon, 300)
        assert long.ratio > short.ratio
        assert long.ratio > 2.0 - epsilon

    def test_swrpt_strictly_worse_than_srpt_on_construction(self):
        report = swrpt_competitive_gap(0.4, 100)
        assert report.swrpt_sum_stretch > report.srpt_sum_stretch

    def test_predictions_monotone_in_l(self):
        assert predicted_srpt_sum_stretch(0.5, 200) > predicted_srpt_sum_stretch(0.5, 100)
        assert predicted_swrpt_sum_stretch(0.5, 200) > predicted_swrpt_sum_stretch(0.5, 100)

    def test_target_property(self):
        report = swrpt_competitive_gap(0.3, 20)
        assert report.target == pytest.approx(1.7)
        # The predicted ratio matches the simulated one and exceeds 1 (SWRPT is
        # strictly worse than SRPT on the construction even for short trains).
        assert report.predicted_ratio == pytest.approx(report.ratio, rel=1e-3)
        assert report.predicted_ratio > 1.0


class TestTheorem1:
    def test_reference_metrics_formulas(self):
        refs = starvation_reference_metrics(8.0, 16)
        assert refs["sum_friendly_max_stretch"] == pytest.approx(1 + 16 / 8)
        assert refs["sum_friendly_sum_stretch"] == pytest.approx((1 + 16 / 8) + 16)
        assert refs["max_friendly_max_stretch"] == pytest.approx(9.0)
        assert refs["max_friendly_sum_stretch"] == pytest.approx(1 + 16 * 9)

    def test_srpt_starves_the_large_job(self):
        report = starvation_analysis(8.0, 32, ["srpt", "swrpt"])
        for name in ("srpt", "swrpt"):
            max_s, sum_s = report.measured[name]
            # The sum-oriented heuristics reproduce the sum-friendly schedule:
            # the large job waits for the whole train.
            assert max_s == pytest.approx(report.sum_friendly_max_stretch)
            assert sum_s == pytest.approx(report.sum_friendly_sum_stretch)

    def test_fcfs_matches_max_friendly_schedule(self):
        report = starvation_analysis(8.0, 8, ["fcfs"])
        max_s, sum_s = report.measured["fcfs"]
        assert max_s == pytest.approx(report.max_friendly_max_stretch)

    def test_online_keeps_max_stretch_bounded(self):
        # The starvation ratio of the proof only bites when k >> Delta^2, so use
        # Delta = 4 and k = 64: SRPT starves the large job (max-stretch 17)
        # while the LP-based heuristic stays near the 1 + Delta level.
        report = starvation_analysis(4.0, 64, ["srpt", "online"])
        online_max, _ = report.measured["online"]
        srpt_max, _ = report.measured["srpt"]
        assert srpt_max == pytest.approx(1 + 64 / 4)
        assert online_max < srpt_max
        assert online_max <= 2.0 * report.max_friendly_max_stretch

    def test_blowup_grows_with_k(self):
        small = starvation_analysis(8.0, 8, ["srpt"])
        large = starvation_analysis(8.0, 64, ["srpt"])
        assert large.max_stretch_blowup > small.max_stretch_blowup
        assert large.measured["srpt"][0] > small.measured["srpt"][0]
