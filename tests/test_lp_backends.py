"""Backend-equivalence tests for the pluggable LP solver layer.

The persistent HiGHS backend must be a drop-in replacement for the one-shot
scipy path: same feasibility verdicts at every milestone probe, same System
(1) objective, and System (2) allocations of the same quality -- all within
solver tolerance.  The suite is parametrized over the available backends and
skips the HiGHS legs gracefully when neither ``highspy`` nor scipy's
vendored bindings are importable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SolverError
from repro.lp.backends import (
    BACKEND_CHOICES,
    ScipyBackend,
    default_backend,
    highs_available,
    make_backend,
    record_lp_probes,
)
from repro.lp.incremental import ReplanContext
from repro.lp.maxstretch import minimize_max_weighted_flow, solve_on_objective_range
from repro.lp.problem import problem_from_instance
from repro.lp.relaxation import reoptimize_allocation
from repro.lp.solver import LinearProgramBuilder
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

requires_highs = pytest.mark.skipif(
    not highs_available(),
    reason="neither highspy nor scipy-vendored HiGHS bindings are available",
)

#: Backend names exercised by the equivalence tests.
BACKENDS = [
    pytest.param("scipy"),
    pytest.param("highs", marks=requires_highs),
]


def _small_instance(seed: int, *, max_jobs: int = 18, density: float = 1.5):
    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=4, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(density=density, window=30.0, max_jobs=max_jobs)
    return generate_instance(platform_spec, workload_spec, rng=seed)


# -- builder-level behaviour ---------------------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestBuilderWithBackend:
    def test_simple_minimization(self, backend_name):
        builder = LinearProgramBuilder()
        x = builder.add_variable(objective=1.0)
        y = builder.add_variable(objective=1.0)
        builder.add_leq([(x, -1.0), (y, -1.0)], -1.0)
        result = builder.solve(backend=make_backend(backend_name))
        assert result.feasible
        assert result.objective == pytest.approx(1.0)
        assert result.value(x) + result.value(y) == pytest.approx(1.0)

    def test_equality_and_bounds(self, backend_name):
        builder = LinearProgramBuilder()
        x = builder.add_variable(objective=1.0)
        y = builder.add_variable(upper=1.0)
        builder.add_eq([(x, 1.0), (y, 1.0)], 3.0)
        result = builder.solve(backend=make_backend(backend_name))
        assert result.feasible
        assert result.value(x) == pytest.approx(2.0)

    def test_infeasible_returns_flag_not_exception(self, backend_name):
        builder = LinearProgramBuilder()
        x = builder.add_variable(upper=1.0)
        builder.add_eq([(x, 1.0)], 5.0)
        result = builder.solve(backend=make_backend(backend_name))
        assert not result.feasible
        assert np.isinf(result.objective)

    def test_unbounded_raises_solver_error(self, backend_name):
        builder = LinearProgramBuilder()
        builder.add_variable(objective=-1.0)  # min -x with x unbounded above
        with pytest.raises(SolverError):
            builder.solve(backend=make_backend(backend_name))

    def test_transportation_problem(self, backend_name):
        builder = LinearProgramBuilder()
        x = {}
        costs = {(0, 0): 1.0, (0, 1): 3.0, (1, 0): 3.0, (1, 1): 1.0}
        for key, cost in costs.items():
            x[key] = builder.add_variable(objective=cost)
        builder.add_leq([(x[(0, 0)], 1.0), (x[(0, 1)], 1.0)], 3.0)
        builder.add_leq([(x[(1, 0)], 1.0), (x[(1, 1)], 1.0)], 2.0)
        builder.add_eq([(x[(0, 0)], 1.0), (x[(1, 0)], 1.0)], 2.0)
        builder.add_eq([(x[(0, 1)], 1.0), (x[(1, 1)], 1.0)], 3.0)
        result = builder.solve(backend=make_backend(backend_name))
        assert result.feasible
        assert result.objective == pytest.approx(7.0)


# -- milestone search / System (2) equivalence ---------------------------------------


@requires_highs
@pytest.mark.parametrize("seed", [0, 7, 2006])
class TestMilestoneSearchEquivalence:
    def test_objectives_and_allocation_quality_agree(self, seed):
        instance = _small_instance(seed)
        problem = problem_from_instance(instance)
        reference = minimize_max_weighted_flow(problem)
        backend = make_backend("highs")
        solution = minimize_max_weighted_flow(problem, backend=backend)

        assert solution.objective == pytest.approx(reference.objective, rel=1e-8)
        # Allocations may differ between alternate optima, but both must be
        # complete and certify (close to) the same max weighted flow.
        for job in problem.jobs:
            assert solution.work_for_job(job.job_id) == pytest.approx(
                job.remaining_work, rel=1e-6
            )
        certificate = solution.max_weighted_flow_of_allocation()
        assert certificate <= solution.objective * (1 + 1e-6) + 1e-9

    def test_system2_allocations_complete_and_bounded(self, seed):
        instance = _small_instance(seed)
        problem = problem_from_instance(instance)
        reference = minimize_max_weighted_flow(problem)
        backend = make_backend("highs")
        reopt_ref = reoptimize_allocation(problem, reference.objective)
        reopt = reoptimize_allocation(
            problem, reference.objective, backend=backend
        )
        assert reopt.objective == pytest.approx(reopt_ref.objective, rel=1e-9)
        for job in problem.jobs:
            assert reopt.work_for_job(job.job_id) == pytest.approx(
                job.remaining_work, rel=1e-6
            )
        # Same System (2) objective value (mean-completion relaxation cost).
        assert _relaxation_cost(reopt) == pytest.approx(
            _relaxation_cost(reopt_ref), rel=1e-6, abs=1e-9
        )

    def test_feasibility_verdicts_agree_below_optimum(self, seed):
        instance = _small_instance(seed)
        problem = problem_from_instance(instance)
        reference = minimize_max_weighted_flow(problem)
        backend = make_backend("highs")
        lo = problem.objective_lower_bound()
        target = lo + 0.5 * (reference.objective - lo)
        if target <= lo:  # optimum == lower bound: nothing below to probe
            pytest.skip("degenerate instance: optimum equals the lower bound")
        scipy_probe = solve_on_objective_range(problem, lo, target)
        highs_probe = solve_on_objective_range(problem, lo, target, backend=backend)
        assert (scipy_probe is None) == (highs_probe is None)


def _relaxation_cost(solution) -> float:
    """The System (2) objective of a solution (sum of weighted midpoints)."""
    remaining = {job.job_id: job.remaining_work for job in solution.problem.jobs}
    total = 0.0
    for (t, _c, j), work in solution.allocations.items():
        lo, hi = solution.interval_bounds[t]
        total += 0.5 * (lo + hi) * work / remaining[j]
    return total


# -- replanning pipeline equivalence -------------------------------------------------


@requires_highs
class TestReplanContextWithHighsBackend:
    def test_context_owns_persistent_backend(self):
        instance = _small_instance(3)
        context = ReplanContext(instance, solver_backend="highs")
        assert context.backend.persistent
        remaining = {job.job_id: job.size for job in instance.jobs}
        first = context.solve_max_stretch(context.build_problem(0.0, remaining))
        reference = ReplanContext(instance).solve_max_stretch(
            ReplanContext(instance).build_problem(0.0, remaining)
        )
        assert first.objective == pytest.approx(reference.objective, rel=1e-8)
        context.close()
        assert context.backend._models == {}

    def test_two_replan_sequence_matches_scipy(self):
        instance = _small_instance(11)
        scipy_ctx = ReplanContext(instance)
        highs_ctx = ReplanContext(instance, solver_backend="highs")
        remaining = {job.job_id: job.size for job in instance.jobs}
        for now in (0.0, 5.0):
            active = {j: r for j, r in remaining.items()}
            p_scipy = scipy_ctx.build_problem(now, active)
            p_highs = highs_ctx.build_problem(now, active)
            s_scipy = scipy_ctx.solve_max_stretch(p_scipy)
            s_highs = highs_ctx.solve_max_stretch(p_highs)
            assert s_highs.objective == pytest.approx(s_scipy.objective, rel=1e-8)
            # Shrink remaining works as if a chunk executed before the replan.
            remaining = {j: 0.7 * r for j, r in remaining.items()}

    def test_end_to_end_simulation_equivalent(self):
        instance = _small_instance(5, max_jobs=25, density=2.0)
        results = {}
        for backend_name in ("scipy", "highs"):
            scheduler = make_scheduler("online", solver_backend=backend_name)
            results[backend_name] = (simulate(instance, scheduler), scheduler)
        r_scipy, s_scipy = results["scipy"]
        r_highs, s_highs = results["highs"]
        # The S* trajectory is solver-independent (unique LP optimum)...
        assert s_highs.last_objective == pytest.approx(
            s_scipy.last_objective, rel=1e-8
        )
        assert s_highs.n_resolutions == s_scipy.n_resolutions
        # ... and the realized quality matches even when degenerate alternate
        # optima lead to different (equally optimal) allocations.
        assert set(r_highs.completions) == set(r_scipy.completions)
        assert r_highs.max_stretch == pytest.approx(r_scipy.max_stretch, rel=1e-6)


# -- persistence mechanics -----------------------------------------------------------


@requires_highs
class TestPersistentMechanics:
    def test_delta_update_on_shared_key(self):
        backend = make_backend("highs")

        def solve(rhs: float, cost_y: float):
            builder = LinearProgramBuilder()
            x = builder.add_variable(objective=1.0)
            y = builder.add_variable(objective=cost_y)
            builder.add_eq([(x, 1.0), (y, 1.0)], rhs)
            return builder.solve(backend=backend, key="shared-pattern")

        first = solve(3.0, 2.0)
        second = solve(5.0, 0.5)  # same matrix; RHS and cost deltas only
        assert first.feasible and second.feasible
        assert first.objective == pytest.approx(3.0)
        assert second.objective == pytest.approx(2.5)  # y carries the load now
        assert backend.n_full_builds == 1
        assert backend.n_delta_updates == 1

    def test_model_cache_is_bounded(self):
        backend = make_backend("highs")
        assert isinstance(backend._max_models, int)
        for i in range(backend._max_models + 5):
            builder = LinearProgramBuilder()
            x = builder.add_variable(objective=1.0, lower=float(i))
            builder.add_leq([(x, 1.0)], float(i) + 10.0)
            builder.solve(backend=backend, key=("pattern", i))
        assert len(backend._models) == backend._max_models

    def test_milestone_search_transplants_bases(self):
        instance = _small_instance(7, max_jobs=20, density=2.0)
        problem = problem_from_instance(instance)
        backend = make_backend("highs")
        with record_lp_probes() as stats:
            minimize_max_weighted_flow(problem, backend=backend)
        assert stats.n_probes >= 2
        # Every probe after the first inherits the previous probe's basis.
        assert backend.n_basis_transplants >= stats.n_probes - 1

    def test_probe_stats_hook_counts_all_backends(self):
        instance = _small_instance(1, max_jobs=8)
        problem = problem_from_instance(instance)
        with record_lp_probes() as stats:
            minimize_max_weighted_flow(problem)
            minimize_max_weighted_flow(problem, backend=make_backend("highs"))
        assert stats.n_probes > 0
        assert set(stats.by_backend) == {"scipy", "highs"}
        assert stats.solve_seconds > 0
        assert stats.per_probe_seconds > 0


# -- backend selection ---------------------------------------------------------------


class TestMakeBackend:
    def test_default_is_shared_scipy(self):
        assert make_backend(None) is default_backend()
        assert make_backend("scipy") is default_backend()
        assert isinstance(default_backend(), ScipyBackend)
        assert not default_backend().persistent

    def test_instance_passthrough(self):
        backend = ScipyBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(SolverError):
            make_backend("cplex")

    def test_choices_cover_known_names(self):
        assert set(BACKEND_CHOICES) == {"scipy", "highs", "auto"}

    @requires_highs
    def test_highs_instances_are_fresh(self):
        first = make_backend("highs")
        second = make_backend("highs")
        assert first is not second  # each context owns its live models
        assert first.persistent

    @requires_highs
    def test_auto_prefers_highs(self):
        assert make_backend("auto").persistent

    def test_graceful_fallback_without_bindings(self, monkeypatch):
        import repro.lp.backends.highs as highs_mod

        monkeypatch.setattr(highs_mod, "_load_api", lambda: None)
        assert not highs_mod.highs_available()
        with pytest.raises(SolverError, match="highspy"):
            make_backend("highs")
        fallback = make_backend("auto")
        assert isinstance(fallback, ScipyBackend)
